//! Delivery-fault injection at the event-stream boundary.
//!
//! [`FaultPlan`](crate::FaultPlan) injects *client-visible* faults while
//! the simulation runs (lost acks, spurious aborts, crashed processes).
//! [`FaultSchedule`] attacks the next layer down: the **wire** between a
//! recording harness and the checker. It takes a clean [`EventLog`] and
//! produces the NDJSON a damaged transport would deliver — events
//! duplicated, delayed past their successors (reordering / replica
//! lag), dropped, torn mid-line, bit-flipped, processes crash-replaced
//! mid-stream (generalizing `crash_on_info` to the delivery layer), and
//! timestamps skewed per process.
//!
//! Everything is driven by one seed: the same schedule applied to the
//! same log yields byte-identical damage, so every fault case in the
//! differential suite is exactly reproducible. Each injected fault is
//! recorded in a [`FaultLog`] with the original event index and the
//! 1-based wire line it landed on, so tests can demand that every fault
//! was either recovered or surfaced as a positioned diagnostic.

use elle_history::{Event, EventLog, ProcessId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded, deterministic schedule of delivery faults.
///
/// Probabilities are per event (or per wire line for the byte-level
/// faults). [`FaultSchedule::none`] injects nothing and leaves the wire
/// byte-identical to [`elle_history::events_to_ndjson`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    /// RNG seed — full determinism.
    pub seed: u64,
    /// Probability an event's line is delivered twice in a row.
    pub duplicate_prob: f64,
    /// Probability an event is delayed past later events (reordering /
    /// replica lag).
    pub delay_prob: f64,
    /// Maximum number of wire positions a delayed event slips by.
    pub delay_window: usize,
    /// Probability an event is silently dropped.
    pub drop_prob: f64,
    /// Probability a wire line is torn: truncated at a random byte
    /// (a partial write the reader sees as garbage or a blank line).
    pub torn_prob: f64,
    /// Probability a wire line has one bit flipped in one byte
    /// (flips stay within ASCII so the wire remains valid UTF-8).
    pub corrupt_prob: f64,
    /// Probability, at each completion, that the process crashes: the
    /// completion is lost and the process is replaced by a fresh one
    /// for all subsequent events (crash-recovery replacement).
    pub crash_prob: f64,
    /// Maximum per-process clock skew added to `time_ns`, in
    /// nanoseconds (each process gets a deterministic offset in
    /// `0..=clock_skew_ns`).
    pub clock_skew_ns: u64,
}

impl FaultSchedule {
    /// No faults: the wire is byte-identical to the clean NDJSON.
    pub const fn none() -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay_window: 4,
            drop_prob: 0.0,
            torn_prob: 0.0,
            corrupt_prob: 0.0,
            crash_prob: 0.0,
            clock_skew_ns: 0,
        }
    }

    /// A lively mixed schedule: a few percent of each delivery fault.
    pub const fn typical(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            duplicate_prob: 0.03,
            delay_prob: 0.03,
            delay_window: 4,
            drop_prob: 0.02,
            torn_prob: 0.02,
            corrupt_prob: 0.0,
            crash_prob: 0.01,
            clock_skew_ns: 0,
        }
    }

    /// Does this schedule inject nothing?
    pub fn is_none(&self) -> bool {
        self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.drop_prob == 0.0
            && self.torn_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.crash_prob == 0.0
            && self.clock_skew_ns == 0
    }

    /// Apply the schedule to a clean event log, producing the damaged
    /// NDJSON wire and the log of every fault injected.
    pub fn apply(&self, log: &EventLog) -> (String, FaultLog) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut faults = FaultLog::default();

        // Event-level pass: crash replacement, clock skew, drop, delay,
        // duplicate. `wire` collects (event, original index) in delivery
        // order; a delayed event re-enters `pending` and is emitted
        // after `by` further deliveries.
        let mut wire: Vec<Event> = Vec::with_capacity(log.len());
        let mut pending: Vec<(usize, Event)> = Vec::new();
        let mut remap: Vec<(ProcessId, ProcessId)> = Vec::new();
        let mut next_fresh = log
            .events()
            .iter()
            .map(|e| e.process.0)
            .max()
            .map_or(0, |m| m + 1);

        let deliver = |wire: &mut Vec<Event>, pending: &mut Vec<(usize, Event)>, ev: Event| {
            wire.push(ev);
            for (by, _) in pending.iter_mut() {
                *by -= 1;
            }
            while let Some(i) = pending.iter().position(|(by, _)| *by == 0) {
                let (_, late) = pending.remove(i);
                wire.push(late);
            }
        };

        for ev in log.events() {
            let mut ev = ev.clone();
            if let Some(&(_, to)) = remap.iter().find(|(from, _)| *from == ev.process) {
                ev.process = to;
            }
            if self.clock_skew_ns > 0 {
                if let Some(t) = ev.time_ns {
                    let offset = skew_offset(self.seed, ev.process, self.clock_skew_ns);
                    if offset > 0 {
                        ev.time_ns = Some(t.saturating_add(offset));
                        faults.push(FaultKind::ClockSkew { offset_ns: offset }, ev.index, None);
                    }
                }
            }
            if ev.kind.is_completion() && self.crash_prob > 0.0 && rng.gen_bool(self.crash_prob) {
                // The process dies before its completion reaches the
                // wire; a fresh process takes over its slot.
                let from = ev.process;
                remap.retain(|(f, _)| *f != from);
                remap.push((from, ProcessId(next_fresh)));
                next_fresh += 1;
                faults.push(FaultKind::CrashRecovery, ev.index, None);
                continue;
            }
            if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
                faults.push(FaultKind::Dropped, ev.index, None);
                continue;
            }
            if self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
                let by = rng.gen_range(1..=self.delay_window.max(1));
                faults.push(FaultKind::Delayed { by }, ev.index, None);
                pending.push((by, ev));
                continue;
            }
            let dup = self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob);
            let copy = dup.then(|| ev.clone());
            deliver(&mut wire, &mut pending, ev);
            if let Some(copy) = copy {
                // The copy's wire line is wherever it lands *after* the
                // original (and any delayed events flushed behind it).
                faults.push(FaultKind::Duplicated, copy.index, Some(wire.len() + 1));
                deliver(&mut wire, &mut pending, copy);
            }
        }
        // Events still delayed at end of stream arrive last, in order.
        pending.sort_by_key(|(by, _)| *by);
        for (_, late) in pending {
            wire.push(late);
        }

        // Byte-level pass: serialize, then tear or bit-flip lines.
        let mut out = String::new();
        for (lineno0, ev) in wire.iter().enumerate() {
            let lineno = lineno0 + 1;
            let mut line = serde_json::to_string(ev).expect("event serialization is infallible");
            if self.torn_prob > 0.0 && rng.gen_bool(self.torn_prob) {
                let cut = rng.gen_range(0..line.len().max(1));
                line.truncate(cut);
                faults.push(FaultKind::Torn, ev.index, Some(lineno));
            } else if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) && !line.is_empty()
            {
                // Flip one of bits 1..=6 so ASCII stays ASCII and the
                // wire remains valid UTF-8 — corruption a text-line
                // reader can actually deliver.
                let at = rng.gen_range(0..line.len());
                let bit = rng.gen_range(1..7u8);
                let mut bytes = line.into_bytes();
                bytes[at] ^= 1 << bit;
                line = String::from_utf8(bytes).expect("ASCII bit flip stays UTF-8");
                faults.push(FaultKind::BitFlip, ev.index, Some(lineno));
            }
            out.push_str(&line);
            out.push('\n');
        }
        (out, faults)
    }
}

impl Default for FaultSchedule {
    fn default() -> FaultSchedule {
        FaultSchedule::none()
    }
}

/// Deterministic per-process clock-skew offset in `0..=max_ns`.
fn skew_offset(seed: u64, process: ProcessId, max_ns: u64) -> u64 {
    // SplitMix64 over (seed, pid): stable regardless of event order.
    let mut z = seed ^ (u64::from(process.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % (max_ns + 1)
}

/// What kind of delivery fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The event's line was delivered twice in a row.
    Duplicated,
    /// The event was delayed past `by` later deliveries.
    Delayed {
        /// How many wire positions it slipped.
        by: usize,
    },
    /// The event was silently dropped.
    Dropped,
    /// The wire line was truncated at a random byte.
    Torn,
    /// One bit of one byte of the wire line was flipped.
    BitFlip,
    /// The process crashed at a completion: the completion was lost and
    /// the process replaced by a fresh one for subsequent events.
    CrashRecovery,
    /// The event's timestamp was skewed forward.
    ClockSkew {
        /// Nanoseconds added.
        offset_ns: u64,
    },
}

/// One injected fault: what, to which original event, and (for faults
/// with a wire position) on which 1-based wire line it landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault.
    pub kind: FaultKind,
    /// The original event's index.
    pub event_index: usize,
    /// 1-based line on the damaged wire, where meaningful (duplicate
    /// copies and byte-level faults).
    pub wire_line: Option<usize>,
}

/// Every fault a schedule injected into one wire, in injection order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// The injected faults.
    pub faults: Vec<InjectedFault>,
}

impl FaultLog {
    fn push(&mut self, kind: FaultKind, event_index: usize, wire_line: Option<usize>) {
        self.faults.push(InjectedFault {
            kind,
            event_index,
            wire_line,
        });
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Were any faults injected?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Original event indices hit by faults of the given kind filter.
    pub fn indices_where(&self, mut pred: impl FnMut(FaultKind) -> bool) -> Vec<usize> {
        self.faults
            .iter()
            .filter(|f| pred(f.kind))
            .map(|f| f.event_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbConfig, IsolationLevel, ObjectKind};
    use crate::scheduler::SimDb;
    use elle_history::{events_to_ndjson, Mop, NdjsonIngestor, RecoveryPolicy, TxnStatus};

    fn sample_log(n: u64, seed: u64) -> EventLog {
        let mut i = 0u64;
        let mut source = move |_p| {
            i += 1;
            (i <= n).then(|| vec![Mop::append(i % 3, i), Mop::read(i % 3)])
        };
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(3)
            .with_seed(seed);
        SimDb::new(cfg).run(&mut source)
    }

    #[test]
    fn none_is_byte_identical() {
        let log = sample_log(30, 1);
        let (wire, faults) = FaultSchedule::none().apply(&log);
        assert!(faults.is_empty());
        assert!(FaultSchedule::none().is_none());
        assert_eq!(wire, events_to_ndjson(&log));
    }

    #[test]
    fn deterministic_per_seed() {
        let log = sample_log(40, 2);
        let s = FaultSchedule::typical(7);
        assert_eq!(s.apply(&log), s.apply(&log));
        let other = FaultSchedule::typical(8).apply(&log);
        assert_ne!(s.apply(&log).0, other.0);
    }

    #[test]
    fn duplicates_are_adjacent_and_quarantinable() {
        let log = sample_log(40, 3);
        let s = FaultSchedule {
            duplicate_prob: 0.5,
            ..FaultSchedule::none()
        };
        let (wire, faults) = s.apply(&log);
        let dups = faults.indices_where(|k| k == FaultKind::Duplicated);
        assert!(!dups.is_empty(), "expected duplicates at p=0.5");
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&wire).expect("quarantine never aborts here");
        // Every duplicate is recovered exactly: same history as clean.
        let (h, diags) = ing.finish();
        assert_eq!(&h, &log.pair().unwrap());
        assert_eq!(diags.len(), dups.len());
    }

    #[test]
    fn crash_recovery_leaves_open_invocations_and_fresh_pids() {
        let log = sample_log(60, 4);
        let s = FaultSchedule {
            crash_prob: 0.2,
            ..FaultSchedule::none()
        };
        let (wire, faults) = s.apply(&log);
        let crashes = faults.indices_where(|k| k == FaultKind::CrashRecovery);
        assert!(!crashes.is_empty(), "expected crashes at p=0.2");
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&wire).unwrap();
        let (h, _diags) = ing.finish();
        // Each crash leaves its transaction open (indeterminate, no
        // completion) — sound: the outcome was never delivered.
        let indeterminate = h
            .txns()
            .iter()
            .filter(|t| t.status == TxnStatus::Indeterminate && t.complete_index.is_none())
            .count();
        assert!(indeterminate >= crashes.len());
        // And fresh process ids appear beyond the original three.
        let max_pid = h.txns().iter().map(|t| t.process.0).max().unwrap();
        assert!(max_pid >= 3, "expected replacement pids, max {max_pid}");
    }

    #[test]
    fn torn_lines_never_survive_as_events() {
        let log = sample_log(50, 5);
        let s = FaultSchedule {
            torn_prob: 0.3,
            seed: 9,
            ..FaultSchedule::none()
        };
        let (wire, faults) = s.apply(&log);
        let torn: Vec<usize> = faults.indices_where(|k| k == FaultKind::Torn);
        assert!(!torn.is_empty());
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&wire).unwrap();
        let (h, _) = ing.finish();
        // A torn event's exact index never appears as a completion
        // index of a committed/aborted transaction *and* as its
        // invocation: the event itself was lost.
        let ingested: std::collections::HashSet<usize> = h
            .txns()
            .iter()
            .flat_map(|t| {
                std::iter::once(t.invoke_index)
                    .chain(t.complete_index)
                    .collect::<Vec<_>>()
            })
            .collect();
        for e in torn {
            // Adopted orphans reuse the completion index for both ends;
            // the torn event index itself must be gone.
            let adopted_at = h
                .txns()
                .iter()
                .any(|t| t.invoke_index == e && t.complete_index == Some(e));
            assert!(
                !ingested.contains(&e) || adopted_at,
                "torn event {e} survived"
            );
        }
    }

    #[test]
    fn clock_skew_shifts_timestamps_deterministically() {
        let mut i = 0u64;
        let mut source = move |_p| {
            i += 1;
            (i <= 20).then(|| vec![Mop::append(0, i)])
        };
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(2)
            .with_timestamps(true);
        let log = SimDb::new(cfg).run(&mut source);
        let s = FaultSchedule {
            clock_skew_ns: 1_000,
            seed: 3,
            ..FaultSchedule::none()
        };
        let (wire, faults) = s.apply(&log);
        assert!(faults
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ClockSkew { .. })));
        // The wire still parses strictly: skew damages no structure.
        let log2 = elle_history::events_from_ndjson(&wire).unwrap();
        assert_eq!(log2.len(), log.len());
        assert_ne!(events_to_ndjson(&log2), events_to_ndjson(&log));
    }

    #[test]
    fn delayed_events_degrade_to_skips_under_quarantine() {
        let log = sample_log(50, 6);
        let s = FaultSchedule {
            delay_prob: 0.3,
            delay_window: 3,
            seed: 5,
            ..FaultSchedule::none()
        };
        let (wire, faults) = s.apply(&log);
        assert!(!faults.is_empty());
        // The wire contains every event exactly once, just reordered.
        assert_eq!(wire.lines().count(), log.len());
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&wire).unwrap();
        let (h, _) = ing.finish();
        assert!(h.len() <= log.pair().unwrap().len());
    }
}
