//! # elle-dbsim
//!
//! A deterministic in-memory MVCC database simulator — the substrate the
//! paper's evaluation runs on. §7.5 describes "a history generator which
//! simulates clients interacting with an in-memory
//! serializable-snapshot-isolated database"; this crate implements that
//! simulator, generalized to five isolation levels, four object types,
//! fault injection (lost commit acknowledgements, process crashes), and
//! reproductions of the four real-world bugs from the paper's case studies
//! (§7.1–§7.4).
//!
//! Determinism: given the same [`DbConfig`] (including `seed`) and the same
//! transaction source, [`SimDb::run`] produces byte-identical histories —
//! benchmarks and tests are exactly reproducible.
//!
//! ```
//! use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind, SimDb};
//! use elle_history::{Mop, ProcessId};
//!
//! // Ten transactions appending to one key and reading it.
//! let mut n = 0u64;
//! let mut source = |_p: ProcessId| {
//!     n += 1;
//!     (n <= 10).then(|| vec![Mop::append(0, n), Mop::read(0)])
//! };
//! let cfg = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
//!     .with_processes(2)
//!     .with_seed(7);
//! let history = SimDb::new(cfg).run_history(&mut source).unwrap();
//! assert_eq!(history.len(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bugs;
mod chaos;
mod config;
mod engine;
mod faults;
mod scheduler;
mod store;
mod value;

pub use bugs::Bug;
pub use chaos::{chaos_session, delivered_lines, drive, ChaosSession, Cut};
pub use config::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
pub use faults::{FaultKind, FaultLog, FaultSchedule, InjectedFault};
pub use scheduler::{SimDb, TxnSource};
pub use store::Store;
pub use value::StoredValue;
