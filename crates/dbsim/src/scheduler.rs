//! The deterministic concurrent scheduler: interleaves logical processes at
//! micro-op granularity, records the client-observed event log, and injects
//! client-visible faults.

use crate::config::DbConfig;
use crate::engine::{Engine, TxnCtx};
use elle_history::{EventKind, EventLog, History, Mop, PairingError, ProcessId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Supplies transactions for processes to run. Returning `None` stops the
/// run (in-flight transactions still complete).
pub trait TxnSource {
    /// The next transaction for `process`, or `None` when the workload is
    /// exhausted.
    fn next_txn(&mut self, process: ProcessId) -> Option<Vec<Mop>>;
}

impl<F: FnMut(ProcessId) -> Option<Vec<Mop>>> TxnSource for F {
    fn next_txn(&mut self, process: ProcessId) -> Option<Vec<Mop>> {
        self(process)
    }
}

/// The simulated database: configuration plus a deterministic run loop.
#[derive(Debug, Clone)]
pub struct SimDb {
    cfg: DbConfig,
}

struct Slot {
    pid: ProcessId,
    running: Option<TxnCtx>,
    /// Consecutive lock-blocked attempts (read-committed mode); beyond a
    /// threshold the engine declares deadlock and aborts the transaction.
    blocked: u32,
}

/// Consecutive blocked scheduling attempts treated as a deadlock.
const DEADLOCK_THRESHOLD: u32 = 256;

impl SimDb {
    /// A simulator for the given configuration.
    pub fn new(cfg: DbConfig) -> Self {
        SimDb { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Run the workload to completion, producing the raw event log.
    pub fn run<S: TxnSource>(&self, source: &mut S) -> EventLog {
        self.run_with(source, |_| {})
    }

    /// Run the workload, invoking `on_event` with each event the moment
    /// the simulated client records it — the **live mode** hook: an
    /// incremental checker subscribes here and sees the history exactly
    /// as it grows, without waiting for the run to finish. The complete
    /// log is still returned (the callback borrows each event).
    pub fn run_with<S: TxnSource>(
        &self,
        source: &mut S,
        mut on_event: impl FnMut(&elle_history::Event),
    ) -> EventLog {
        let cfg = self.cfg;
        let mut engine = Engine::new(cfg);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut log = EventLog::new();
        let mut slots: Vec<Slot> = (0..cfg.processes)
            .map(|i| Slot {
                pid: ProcessId(i as u32),
                running: None,
                blocked: 0,
            })
            .collect();
        let mut next_pid = cfg.processes as u32;
        let mut exhausted = false;
        let mut step: u64 = 0;
        // Events already handed to `on_event`; drained at the end of
        // every scheduler step so subscribers see each event as soon as
        // the client records it.
        let mut reported = 0usize;

        loop {
            // Actionable slots: running, or idle while work remains.
            let actionable: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.running.is_some() || !exhausted)
                .map(|(i, _)| i)
                .collect();
            if actionable.is_empty() {
                break;
            }
            let slot_idx = actionable[rng.gen_range(0..actionable.len())];
            let slot = &mut slots[slot_idx];

            match &mut slot.running {
                None => match source.next_txn(slot.pid) {
                    None => exhausted = true,
                    Some(mops) => {
                        let ctx = engine.begin(mops, step, &mut rng);
                        let start_ts = cfg.expose_timestamps.then_some(ctx.read_ts);
                        log.push_at(
                            slot.pid,
                            EventKind::Invoke,
                            ctx.invocation.clone(),
                            start_ts,
                        );
                        slot.running = Some(ctx);
                    }
                },
                Some(ctx) => {
                    if ctx.pos < ctx.invocation.len() {
                        match engine.exec_next(ctx, step, &mut rng) {
                            crate::engine::StepResult::Progress => slot.blocked = 0,
                            crate::engine::StepResult::Blocked => {
                                slot.blocked += 1;
                                if slot.blocked > DEADLOCK_THRESHOLD {
                                    // Deadlock victim: the server aborts.
                                    let ctx = slot.running.take().expect("running");
                                    engine.abort(&ctx);
                                    log.push(slot.pid, EventKind::Fail, ctx.invocation.clone());
                                    slot.blocked = 0;
                                }
                            }
                        }
                    } else {
                        let mut ctx = slot.running.take().expect("checked running");
                        let server_abort = cfg.faults.server_abort_prob > 0.0
                            && rng.gen_bool(cfg.faults.server_abort_prob);
                        let committed = if server_abort {
                            engine.abort(&ctx);
                            false
                        } else {
                            let ok = engine.try_commit(&mut ctx);
                            if !ok {
                                engine.abort(&ctx);
                            }
                            ok
                        };
                        let lost_ack =
                            cfg.faults.info_prob > 0.0 && rng.gen_bool(cfg.faults.info_prob);
                        if lost_ack {
                            // Outcome stands server-side; client learns
                            // nothing.
                            log.push(slot.pid, EventKind::Info, ctx.invocation.clone());
                            if cfg.faults.crash_on_info {
                                slot.pid = ProcessId(next_pid);
                                next_pid += 1;
                            }
                        } else if committed {
                            let commit_ts = if cfg.expose_timestamps {
                                ctx.commit_ts
                            } else {
                                None
                            };
                            log.push_at(slot.pid, EventKind::Ok, ctx.resolved.clone(), commit_ts);
                        } else {
                            log.push(slot.pid, EventKind::Fail, ctx.invocation.clone());
                        }
                    }
                }
            }
            step += 1;
            while reported < log.len() {
                on_event(&log.events()[reported]);
                reported += 1;
            }
        }
        while reported < log.len() {
            on_event(&log.events()[reported]);
            reported += 1;
        }
        log
    }

    /// Run and pair into a [`History`].
    pub fn run_history<S: TxnSource>(&self, source: &mut S) -> Result<History, PairingError> {
        self.run(source).pair()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultPlan, IsolationLevel, ObjectKind};
    use elle_history::TxnStatus;

    fn counting_source(n: u64) -> impl FnMut(ProcessId) -> Option<Vec<Mop>> {
        let mut i = 0u64;
        move |_p| {
            i += 1;
            (i <= n).then(|| vec![Mop::append(i % 3, i), Mop::read(i % 3)])
        }
    }

    fn cfg(iso: IsolationLevel) -> DbConfig {
        DbConfig::new(iso, ObjectKind::ListAppend).with_processes(3)
    }

    #[test]
    fn produces_paired_history() {
        let h = SimDb::new(cfg(IsolationLevel::StrictSerializable))
            .run_history(&mut counting_source(20))
            .unwrap();
        assert_eq!(h.len(), 20);
        assert!(h.txns().iter().all(|t| t.complete_index.is_some()));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = SimDb::new(cfg(IsolationLevel::SnapshotIsolation).with_seed(5))
            .run(&mut counting_source(50));
        let b = SimDb::new(cfg(IsolationLevel::SnapshotIsolation).with_seed(5))
            .run(&mut counting_source(50));
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_interleavings() {
        let a = SimDb::new(cfg(IsolationLevel::SnapshotIsolation).with_seed(1))
            .run(&mut counting_source(50));
        let b = SimDb::new(cfg(IsolationLevel::SnapshotIsolation).with_seed(2))
            .run(&mut counting_source(50));
        assert_ne!(a, b);
    }

    #[test]
    fn single_process_is_serial() {
        let h = SimDb::new(
            cfg(IsolationLevel::StrictSerializable)
                .with_processes(1)
                .with_seed(3),
        )
        .run_history(&mut counting_source(9))
        .unwrap();
        // Every txn commits (no concurrency → no conflicts)…
        assert!(h.txns().iter().all(|t| t.status == TxnStatus::Committed));
        // …and each read of key k sees exactly the appends so far.
        let mut expect: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for t in h.txns() {
            let (k, e) = match t.mops[0] {
                Mop::Append { key, elem } => (key.0, elem.0),
                _ => unreachable!(),
            };
            expect.entry(k).or_default().push(e);
            match &t.mops[1] {
                Mop::Read { value: Some(v), .. } => {
                    let got: Vec<u64> = v.as_list().unwrap().iter().map(|e| e.0).collect();
                    assert_eq!(&got, expect.get(&k).unwrap());
                }
                other => panic!("unresolved read {other:?}"),
            }
        }
    }

    #[test]
    fn info_faults_produce_indeterminate_txns_and_crashes() {
        let c = cfg(IsolationLevel::SnapshotIsolation)
            .with_faults(FaultPlan {
                info_prob: 0.5,
                server_abort_prob: 0.0,
                crash_on_info: true,
            })
            .with_seed(11);
        let h = SimDb::new(c).run_history(&mut counting_source(60)).unwrap();
        let infos = h
            .txns()
            .iter()
            .filter(|t| t.status == TxnStatus::Indeterminate)
            .count();
        assert!(infos > 5, "expected many info txns, got {infos}");
        // Crashed processes are replaced: process ids beyond the initial 3.
        let max_pid = h.txns().iter().map(|t| t.process.0).max().unwrap();
        assert!(max_pid >= 3, "expected fresh pids, max was {max_pid}");
    }

    #[test]
    fn server_aborts_produce_failed_txns() {
        let c = cfg(IsolationLevel::SnapshotIsolation)
            .with_faults(FaultPlan {
                info_prob: 0.0,
                server_abort_prob: 0.4,
                crash_on_info: false,
            })
            .with_seed(13);
        let h = SimDb::new(c).run_history(&mut counting_source(40)).unwrap();
        assert!(h.txns().iter().any(|t| t.status == TxnStatus::Aborted));
    }

    #[test]
    fn concurrent_histories_interleave() {
        // With several processes, some transactions overlap in real time.
        let h = SimDb::new(cfg(IsolationLevel::SnapshotIsolation).with_seed(9))
            .run_history(&mut counting_source(30))
            .unwrap();
        let overlapping = h.txns().iter().any(|a| {
            h.txns().iter().any(|b| {
                a.id != b.id
                    && a.invoke_index < b.invoke_index
                    && b.invoke_index < a.complete_index.unwrap_or(usize::MAX)
            })
        });
        assert!(overlapping, "expected real-time overlap");
    }
}
