//! Stored object values for the four datatypes of Figure 1.

use crate::config::ObjectKind;
use elle_history::{Elem, Mop, ReadValue};
use std::collections::BTreeSet;

/// The materialized state of one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredValue {
    /// Append-only list.
    List(Vec<Elem>),
    /// Register (`None` = initial nil).
    Register(Option<Elem>),
    /// Counter.
    Counter(i64),
    /// Grow-only set.
    Set(BTreeSet<Elem>),
}

impl StoredValue {
    /// The initial version `x_init` for a datatype (Figure 1: `nil`, `0`,
    /// `{}`, `[]`).
    pub fn initial(kind: ObjectKind) -> StoredValue {
        match kind {
            ObjectKind::ListAppend => StoredValue::List(Vec::new()),
            ObjectKind::Register => StoredValue::Register(None),
            ObjectKind::Counter => StoredValue::Counter(0),
            ObjectKind::Set => StoredValue::Set(BTreeSet::new()),
        }
    }

    /// Apply a write micro-op (Figure 1's write semantics). Panics on a
    /// read or a kind mismatch — the engine only feeds matching writes.
    pub fn apply(&mut self, mop: &Mop) {
        match (self, mop) {
            (StoredValue::List(v), Mop::Append { elem, .. }) => v.push(*elem),
            (StoredValue::Register(r), Mop::Write { elem, .. }) => *r = Some(*elem),
            (StoredValue::Counter(c), Mop::Increment { amount, .. }) => *c += amount,
            (StoredValue::Set(s), Mop::AddToSet { elem, .. }) => {
                s.insert(*elem);
            }
            (v, m) => panic!("cannot apply {m:?} to {v:?}"),
        }
    }

    /// Undo a previously applied write, element-wise. Used by the
    /// read-uncommitted engine's abort path. `prev_register` supplies the
    /// overwritten value for registers.
    pub fn unapply(&mut self, mop: &Mop, prev_register: Option<Elem>) {
        match (self, mop) {
            (StoredValue::List(v), Mop::Append { elem, .. }) => {
                if let Some(pos) = v.iter().rposition(|e| e == elem) {
                    v.remove(pos);
                }
            }
            (StoredValue::Register(r), Mop::Write { elem, .. }) => {
                // Restore only if our write is still the visible value.
                if *r == Some(*elem) {
                    *r = prev_register;
                }
            }
            (StoredValue::Counter(c), Mop::Increment { amount, .. }) => *c -= amount,
            (StoredValue::Set(s), Mop::AddToSet { elem, .. }) => {
                s.remove(elem);
            }
            (v, m) => panic!("cannot unapply {m:?} from {v:?}"),
        }
    }

    /// The value a read of this version returns.
    pub fn to_read_value(&self) -> ReadValue {
        match self {
            StoredValue::List(v) => ReadValue::List(v.clone()),
            StoredValue::Register(r) => ReadValue::Register(*r),
            StoredValue::Counter(c) => ReadValue::Counter(*c),
            StoredValue::Set(s) => ReadValue::Set(s.clone()),
        }
    }

    /// The register's current contents, if this is a register.
    pub fn register_value(&self) -> Option<Elem> {
        match self {
            StoredValue::Register(r) => *r,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_values_match_figure_1() {
        assert_eq!(
            StoredValue::initial(ObjectKind::ListAppend),
            StoredValue::List(vec![])
        );
        assert_eq!(
            StoredValue::initial(ObjectKind::Register),
            StoredValue::Register(None)
        );
        assert_eq!(
            StoredValue::initial(ObjectKind::Counter),
            StoredValue::Counter(0)
        );
        assert_eq!(
            StoredValue::initial(ObjectKind::Set),
            StoredValue::Set(BTreeSet::new())
        );
    }

    #[test]
    fn apply_write_semantics() {
        let mut l = StoredValue::initial(ObjectKind::ListAppend);
        l.apply(&Mop::append(1, 5));
        l.apply(&Mop::append(1, 6));
        assert_eq!(l.to_read_value(), ReadValue::list([5, 6]));

        let mut r = StoredValue::initial(ObjectKind::Register);
        r.apply(&Mop::write(1, 9));
        assert_eq!(r.to_read_value(), ReadValue::Register(Some(Elem(9))));
        assert_eq!(r.register_value(), Some(Elem(9)));

        let mut c = StoredValue::initial(ObjectKind::Counter);
        c.apply(&Mop::increment(1, 3));
        c.apply(&Mop::increment(1, -1));
        assert_eq!(c.to_read_value(), ReadValue::Counter(2));

        let mut s = StoredValue::initial(ObjectKind::Set);
        s.apply(&Mop::add_to_set(1, 4));
        assert_eq!(s.to_read_value(), ReadValue::set([4]));
    }

    #[test]
    fn unapply_reverses_element_wise() {
        let mut l = StoredValue::List(vec![Elem(1), Elem(2), Elem(3)]);
        l.unapply(&Mop::append(1, 2), None);
        assert_eq!(l, StoredValue::List(vec![Elem(1), Elem(3)]));

        let mut r = StoredValue::Register(Some(Elem(5)));
        r.unapply(&Mop::write(1, 5), Some(Elem(2)));
        assert_eq!(r, StoredValue::Register(Some(Elem(2))));
        // Not restored when someone else overwrote already.
        let mut r2 = StoredValue::Register(Some(Elem(7)));
        r2.unapply(&Mop::write(1, 5), Some(Elem(2)));
        assert_eq!(r2, StoredValue::Register(Some(Elem(7))));

        let mut c = StoredValue::Counter(5);
        c.unapply(&Mop::increment(1, 3), None);
        assert_eq!(c, StoredValue::Counter(2));

        let mut s = StoredValue::Set([Elem(1), Elem(2)].into_iter().collect());
        s.unapply(&Mop::add_to_set(1, 1), None);
        assert_eq!(s, StoredValue::Set([Elem(2)].into_iter().collect()));
    }

    #[test]
    #[should_panic(expected = "cannot apply")]
    fn apply_kind_mismatch_panics() {
        let mut l = StoredValue::initial(ObjectKind::ListAppend);
        l.apply(&Mop::write(1, 5));
    }
}
