//! Injectable reproductions of the real-world bugs from §7.1–§7.4.
//!
//! Each bug recreates the *mechanism* the paper's case studies diagnosed,
//! at the point in the engine where the real systems diverged. Because
//! Elle is a black-box checker, reproducing the mechanism reproduces the
//! observation-level anomaly signature.

/// A deliberately injected implementation bug.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bug {
    /// **TiDB §7.1** — automated transaction retry: on a first-committer-
    /// wins (or OCC) conflict at commit, the engine silently re-applies the
    /// transaction's buffered writes against the new head and reports
    /// success, never re-validating reads. Produces lost updates, G-single
    /// read skew, and incompatible orders (when a transaction observed its
    /// own writes before being retried onto a different base).
    SilentRetry,
    /// **YugaByte DB §7.2** — stale read timestamps after leader elections:
    /// while an "election window" is open, new transactions read from a
    /// snapshot `lag` commits in the past and skip read validation at
    /// commit. Writes are still conflict-checked against the *read*
    /// timestamp, so no writes are lost and no G1/G0/G-single arise —
    /// only multi-anti-dependency G2-item cycles, matching the paper.
    StaleReadTimestamp {
        /// An election occurs every `period` scheduler steps…
        period: u64,
        /// …and stays open for `window` steps.
        window: u64,
        /// Snapshot staleness, in commits.
        lag: u64,
    },
    /// **FaunaDB §7.3** — index reads miss tentative writes: with
    /// probability `prob`, a read consults the transaction's snapshot but
    /// skips its own write buffer, so `append(0, 6); r(0)` can return a
    /// value without 6: internal inconsistency, under normal operation,
    /// without faults.
    IndexMissesOwnWrites {
        /// Probability a given read is an "index read".
        prob: f64,
    },
    /// **Dgraph §7.4** — reads from freshly migrated shards return nil:
    /// while a "migration window" is open, reads of keys in the migrating
    /// shard return the initial state regardless of committed data.
    /// Register workloads then yield cyclic inferred version orders and
    /// read skew, matching the paper.
    FreshShardNilReads {
        /// A migration occurs every `period` scheduler steps…
        period: u64,
        /// …and stays open for `window` steps.
        window: u64,
        /// Number of shards (keys hash to `key % shards`).
        shards: u64,
    },
}

impl Bug {
    /// Is a periodic window (election / migration) open at `step`?
    pub fn window_active(period: u64, window: u64, step: u64) -> bool {
        period > 0 && step % period < window
    }

    /// For [`Bug::FreshShardNilReads`]: the shard currently migrating at
    /// `step` (rotates each period).
    pub fn migrating_shard(period: u64, shards: u64, step: u64) -> u64 {
        if period == 0 || shards == 0 {
            0
        } else {
            (step / period) % shards
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_repeat() {
        assert!(Bug::window_active(10, 3, 0));
        assert!(Bug::window_active(10, 3, 2));
        assert!(!Bug::window_active(10, 3, 3));
        assert!(!Bug::window_active(10, 3, 9));
        assert!(Bug::window_active(10, 3, 10));
        assert!(!Bug::window_active(0, 3, 1));
    }

    #[test]
    fn shards_rotate() {
        assert_eq!(Bug::migrating_shard(10, 4, 0), 0);
        assert_eq!(Bug::migrating_shard(10, 4, 10), 1);
        assert_eq!(Bug::migrating_shard(10, 4, 45), 0);
        assert_eq!(Bug::migrating_shard(0, 4, 5), 0);
    }
}
