//! Simulator configuration.

use crate::bugs::Bug;

/// The isolation level the engine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// Writes apply in place immediately; reads see uncommitted data.
    /// Aborts undo writes element-wise, possibly after others built on
    /// them — the full G1 zoo.
    ReadUncommitted,
    /// Reads see the latest committed version at each read; writes are
    /// buffered and applied at commit without conflict checks.
    ReadCommitted,
    /// MVCC snapshot at transaction begin, first-committer-wins on write
    /// sets. Permits write skew (G2), proscribes G-single and lost update.
    SnapshotIsolation,
    /// Snapshot isolation plus commit-time validation of the read set
    /// (OCC). Read-only transactions may be served from a stale snapshot
    /// (`stale_readonly_prob`), which preserves serializability but
    /// violates real-time order.
    Serializable,
    /// OCC with full validation and no stale reads: strict serializable.
    StrictSerializable,
}

/// The one datatype a simulated database instance serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Append-only lists (the paper's flagship workload).
    ListAppend,
    /// Read-write registers.
    Register,
    /// Counters.
    Counter,
    /// Grow-only sets.
    Set,
}

/// Client-visible fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a commit acknowledgement is lost: the transaction's
    /// real outcome stands, but the client records `info`.
    pub info_prob: f64,
    /// Probability the server spuriously aborts a transaction at commit.
    pub server_abort_prob: f64,
    /// Replace the logical process after an `info` outcome (Jepsen crash
    /// semantics — logical concurrency rises over time, §7).
    pub crash_on_info: bool,
}

impl FaultPlan {
    /// No faults.
    pub const fn none() -> Self {
        FaultPlan {
            info_prob: 0.0,
            server_abort_prob: 0.0,
            crash_on_info: false,
        }
    }

    /// A typical Jepsen-style plan: occasional lost acks with crashes.
    pub const fn typical() -> Self {
        FaultPlan {
            info_prob: 0.05,
            server_abort_prob: 0.02,
            crash_on_info: true,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbConfig {
    /// Isolation level enforced by the engine.
    pub isolation: IsolationLevel,
    /// Datatype served.
    pub kind: ObjectKind,
    /// Number of initial logical processes (client threads).
    pub processes: usize,
    /// RNG seed — full determinism.
    pub seed: u64,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// Injected implementation bug, if any (§7.1–§7.4).
    pub bug: Option<Bug>,
    /// Under `Serializable`, probability a read-only transaction is served
    /// from a stale snapshot (serializable but not strict).
    pub stale_readonly_prob: f64,
    /// Maximum snapshot staleness, in commits, for stale read-only
    /// transactions.
    pub stale_lag: u64,
    /// Expose the engine's (start, commit) timestamps on the event log
    /// (§5.1: "Some snapshot-isolated databases expose transaction start
    /// and commit timestamps to clients").
    pub expose_timestamps: bool,
}

impl DbConfig {
    /// A fault-free, bug-free configuration.
    pub fn new(isolation: IsolationLevel, kind: ObjectKind) -> Self {
        DbConfig {
            isolation,
            kind,
            processes: 4,
            seed: 42,
            faults: FaultPlan::none(),
            bug: None,
            stale_readonly_prob: 0.0,
            stale_lag: 5,
            expose_timestamps: false,
        }
    }

    /// Set the number of client processes.
    pub fn with_processes(mut self, n: usize) -> Self {
        self.processes = n.max(1);
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the fault plan.
    pub fn with_faults(mut self, f: FaultPlan) -> Self {
        self.faults = f;
        self
    }

    /// Inject a bug.
    pub fn with_bug(mut self, b: Bug) -> Self {
        self.bug = Some(b);
        self
    }

    /// Enable stale read-only snapshots (Serializable only).
    pub fn with_stale_readonly(mut self, prob: f64, lag: u64) -> Self {
        self.stale_readonly_prob = prob;
        self.stale_lag = lag.max(1);
        self
    }

    /// Expose engine timestamps to clients (§5.1).
    pub fn with_timestamps(mut self, on: bool) -> Self {
        self.expose_timestamps = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(9)
            .with_seed(1)
            .with_faults(FaultPlan::typical())
            .with_stale_readonly(0.5, 3);
        assert_eq!(c.processes, 9);
        assert_eq!(c.seed, 1);
        assert!(c.faults.crash_on_info);
        assert_eq!(c.stale_readonly_prob, 0.5);
        assert_eq!(c.stale_lag, 3);
    }

    #[test]
    fn processes_clamped_to_one() {
        let c =
            DbConfig::new(IsolationLevel::ReadCommitted, ObjectKind::Register).with_processes(0);
        assert_eq!(c.processes, 1);
    }

    #[test]
    fn fault_plans() {
        assert_eq!(FaultPlan::none().info_prob, 0.0);
        assert!(FaultPlan::typical().info_prob > 0.0);
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }
}
