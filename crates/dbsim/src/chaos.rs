//! Multi-tenant chaos client plans for `elle-serve`.
//!
//! A [`ChaosSession`] is one tenant's deterministic torture script: the
//! tenant-tagged wire lines to send (optionally damaged by a
//! [`FaultSchedule`]) plus seeded *cut points* — places where the
//! client connection is killed mid-line and the client reconnects and
//! resends **from the start**. Resend-from-start is the deliberately
//! naive client: the service's index-regression duplicate absorption
//! must make it converge to the same verdict anyway.
//!
//! Everything is a pure function of its seeds, so a failing schedule
//! replays exactly. [`drive`] is transport-generic (any
//! `io::Write` factory: an in-process submit shim, a `TcpStream`, a
//! child's stdin), which is what lets the same plans run against the
//! in-process [`Server`](https://docs.rs/elle-serve) engine and the
//! real binary.

use crate::faults::{FaultLog, FaultSchedule};
use elle_history::{events_to_ndjson, EventLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};

/// A point where the client connection dies: after writing `byte`
/// bytes of line `line` (a mid-line tear — the service sees a torn
/// final line, which must not reach its checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// Index of the line being written when the connection dies.
    pub line: usize,
    /// How many bytes of that line made it out.
    pub byte: usize,
}

/// One tenant's deterministic chaos script.
#[derive(Debug, Clone)]
pub struct ChaosSession {
    /// The tenant id every line is tagged with.
    pub tenant: String,
    /// Tenant-tagged wire lines (no trailing newline). Lines the fault
    /// schedule tore or corrupted may be undecodable — the service
    /// rejects or quarantines them, attributed to this tenant.
    pub lines: Vec<String>,
    /// Sorted connection cuts. Attempt `k` sends lines `0..cuts[k].line`
    /// plus a prefix of the cut line, then dies; the final attempt
    /// resends everything from line 0.
    pub cuts: Vec<Cut>,
    /// What the fault schedule injected into the wire.
    pub faults: FaultLog,
}

/// Build one tenant's chaos script from a clean event log: damage the
/// wire under `schedule`, tag every line with the tenant, and pick
/// `kills` seeded cut points.
pub fn chaos_session(
    tenant: &str,
    log: &EventLog,
    schedule: &FaultSchedule,
    kills: usize,
    seed: u64,
) -> ChaosSession {
    let (wire, faults) = if schedule.is_none() {
        (events_to_ndjson(log), FaultLog::default())
    } else {
        schedule.apply(log)
    };
    let lines: Vec<String> = wire
        .lines()
        .map(|l| format!("{{\"tenant\":\"{tenant}\",\"event\":{l}}}"))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_c0de);
    let mut cuts: Vec<Cut> = (0..kills)
        .filter(|_| !lines.is_empty())
        .map(|_| {
            let line = rng.gen_range(0..lines.len());
            let byte = rng.gen_range(0..=lines[line].len());
            Cut { line, byte }
        })
        .collect();
    cuts.sort_unstable_by_key(|c| (c.line, c.byte));
    ChaosSession {
        tenant: tenant.to_string(),
        lines,
        cuts,
        faults,
    }
}

/// The exact line sequence a server sees from [`drive`]: for each cut
/// attempt, the complete lines before the cut plus the (possibly
/// truncated, possibly complete) final fragment the connection tore —
/// a line reader at EOF still surfaces an unterminated fragment — then
/// the full resend. Feeding these through a single-tenant oracle must
/// reproduce the served verdict byte for byte.
pub fn delivered_lines(session: &ChaosSession) -> Vec<String> {
    let mut out = Vec::new();
    for cut in &session.cuts {
        out.extend(session.lines[..cut.line].iter().cloned());
        let frag = &session.lines[cut.line][..cut.byte];
        if !frag.is_empty() {
            out.push(frag.to_string());
        }
    }
    out.extend(session.lines.iter().cloned());
    out
}

/// Drive one session against a transport. `connect` is called once per
/// attempt (cut count + 1); each connection receives the script from
/// line 0 — full resend — up to its cut, and the final connection
/// delivers everything. Returns the number of connections made.
pub fn drive<W, F>(session: &ChaosSession, mut connect: F) -> io::Result<usize>
where
    W: Write,
    F: FnMut(usize) -> io::Result<W>,
{
    let mut attempts = 0;
    for cut in &session.cuts {
        let mut conn = connect(attempts)?;
        attempts += 1;
        // Writes after a kill may fail; the chaos client shrugs.
        let _ = (|| -> io::Result<()> {
            for line in &session.lines[..cut.line] {
                conn.write_all(line.as_bytes())?;
                conn.write_all(b"\n")?;
            }
            conn.write_all(&session.lines[cut.line].as_bytes()[..cut.byte])?;
            conn.flush()
        })();
        // Dropping the connection mid-line is the kill.
    }
    let mut conn = connect(attempts)?;
    attempts += 1;
    for line in &session.lines {
        conn.write_all(line.as_bytes())?;
        conn.write_all(b"\n")?;
    }
    conn.flush()?;
    Ok(attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    fn small_log() -> EventLog {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).commit();
        let h = b.build();
        elle_history::events_from_ndjson(&elle_history::history_to_ndjson(&h)).unwrap()
    }

    #[test]
    fn sessions_are_deterministic_and_tagged() {
        let log = small_log();
        let a = chaos_session("t0", &log, &FaultSchedule::none(), 2, 7);
        let b = chaos_session("t0", &log, &FaultSchedule::none(), 2, 7);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.cuts, b.cuts);
        assert_eq!(a.cuts.len(), 2);
        assert!(a
            .lines
            .iter()
            .all(|l| l.starts_with("{\"tenant\":\"t0\",\"event\":{")));
        assert_eq!(a.lines.len(), log.len());
    }

    #[test]
    fn drive_makes_one_connection_per_cut_plus_final() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let log = small_log();
        let session = chaos_session("t0", &log, &FaultSchedule::none(), 3, 1);
        let streams: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
        let attempts = drive(&session, |_| {
            streams.borrow_mut().push(Vec::new());
            Ok(WriterShim(streams.borrow().len() - 1, Rc::clone(&streams)))
        })
        .unwrap();
        assert_eq!(attempts, 4);
        let mut streams = Rc::try_unwrap(streams).unwrap().into_inner();
        assert_eq!(streams.len(), 4);
        let full: String = session
            .lines
            .iter()
            .flat_map(|l| [l.as_str(), "\n"])
            .collect();
        assert_eq!(String::from_utf8(streams.pop().unwrap()).unwrap(), full);
        for (k, s) in streams.iter().enumerate() {
            let cut = session.cuts[k];
            let mut want: String = session.lines[..cut.line]
                .iter()
                .flat_map(|l| [l.as_str(), "\n"])
                .collect();
            want.push_str(&session.lines[cut.line][..cut.byte]);
            assert_eq!(String::from_utf8_lossy(s), want);
        }
    }

    /// A Write shim appending into one slot of a shared buffer list —
    /// `drive` wants an owned writer per attempt.
    struct WriterShim(usize, std::rc::Rc<std::cell::RefCell<Vec<Vec<u8>>>>);
    impl Write for WriterShim {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.1.borrow_mut()[self.0].extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}
