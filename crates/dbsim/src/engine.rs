//! The transaction engine: executes micro-ops and commits under each
//! isolation level, with bug hooks.

use crate::bugs::Bug;
use crate::config::{DbConfig, IsolationLevel};
use crate::store::Store;
use crate::value::StoredValue;
use elle_history::{Elem, Key, Mop, ReadValue};
use rand::rngs::SmallRng;
use rand::Rng;
use rustc_hash::FxHashMap;

/// Result of executing one micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepResult {
    /// The micro-op executed; the transaction advanced.
    Progress,
    /// The micro-op is waiting on a write lock (read-committed mode);
    /// retry later. Prolonged blocking indicates deadlock — the caller
    /// should abort the transaction.
    Blocked,
}

/// An in-flight transaction.
#[derive(Debug)]
pub(crate) struct TxnCtx {
    /// Unique token identifying this transaction for lock ownership.
    pub token: u64,
    /// Invocation-form micro-ops (reads unresolved).
    pub invocation: Vec<Mop>,
    /// Resolved micro-ops (reads carry observed values).
    pub resolved: Vec<Mop>,
    /// Next micro-op to execute.
    pub pos: usize,
    /// Snapshot timestamp for reads.
    pub read_ts: u64,
    /// Timestamp against which write-write conflicts are validated.
    pub write_conflict_ts: u64,
    /// Whether the read set is validated at commit.
    pub validate_reads: bool,
    /// `(key, version ts observed)` per read.
    pub read_set: Vec<(Key, u64)>,
    /// Buffered writes per key, in program order.
    pub writes: FxHashMap<Key, Vec<Mop>>,
    /// Keys in first-write order (commit application order).
    pub write_keys: Vec<Key>,
    /// Read-uncommitted undo log: `(mop, previous register value)`.
    pub undo: Vec<(Mop, Option<Elem>)>,
    /// Commit timestamp assigned by [`Engine::try_commit`]. Read-only
    /// transactions commit "at" their snapshot.
    pub commit_ts: Option<u64>,
}

/// The engine: storage plus the commit clock.
#[derive(Debug)]
pub(crate) struct Engine {
    pub cfg: DbConfig,
    pub store: Store,
    /// Last issued commit timestamp.
    pub clock: u64,
    /// Per-key write locks (read-committed mode): real RC engines hold row
    /// write locks until commit, which keeps a transaction's installed
    /// writes contiguous with the base it observed when writing.
    locks: FxHashMap<Key, u64>,
    next_token: u64,
}

impl Engine {
    pub fn new(cfg: DbConfig) -> Self {
        Engine {
            cfg,
            store: Store::new(),
            clock: 0,
            locks: FxHashMap::default(),
            next_token: 0,
        }
    }

    /// Begin a transaction at scheduler step `step`.
    pub fn begin(&mut self, mops: Vec<Mop>, step: u64, rng: &mut SmallRng) -> TxnCtx {
        let start_ts = self.clock;
        let mut read_ts = start_ts;
        let mut write_conflict_ts = start_ts;
        let mut validate_reads = matches!(
            self.cfg.isolation,
            IsolationLevel::Serializable | IsolationLevel::StrictSerializable
        );

        // Serializable (non-strict): read-only transactions may run on a
        // stale snapshot — serializable, not strict.
        let read_only = mops.iter().all(Mop::is_read);
        if self.cfg.isolation == IsolationLevel::Serializable
            && read_only
            && self.cfg.stale_readonly_prob > 0.0
            && rng.gen_bool(self.cfg.stale_readonly_prob)
        {
            let lag = rng.gen_range(1..=self.cfg.stale_lag);
            read_ts = start_ts.saturating_sub(lag);
            validate_reads = false;
        }

        // YugaByte-style stale read timestamps during election windows.
        if let Some(Bug::StaleReadTimestamp {
            period,
            window,
            lag,
        }) = self.cfg.bug
        {
            if Bug::window_active(period, window, step) {
                read_ts = start_ts.saturating_sub(lag);
                validate_reads = false;
                // Writes conflict against the read timestamp: anything
                // committed since the stale snapshot aborts us, so no
                // updates are lost (G2-item only; see bugs.rs).
                write_conflict_ts = read_ts;
            }
        }

        let invocation: Vec<Mop> = mops.iter().map(Mop::to_invocation).collect();
        self.next_token += 1;
        TxnCtx {
            token: self.next_token,
            resolved: invocation.clone(),
            invocation,
            pos: 0,
            read_ts,
            write_conflict_ts,
            validate_reads,
            read_set: Vec::new(),
            writes: FxHashMap::default(),
            write_keys: Vec::new(),
            undo: Vec::new(),
            commit_ts: None,
        }
    }

    /// Execute the next micro-op of `ctx` at scheduler step `step`.
    pub fn exec_next(&mut self, ctx: &mut TxnCtx, step: u64, rng: &mut SmallRng) -> StepResult {
        let idx = ctx.pos;
        let mop = ctx.invocation[idx].clone();
        match &mop {
            Mop::Read { key, .. } => {
                let value = self.read(ctx, *key, step, rng);
                ctx.resolved[idx] = Mop::Read {
                    key: *key,
                    value: Some(value),
                };
            }
            write => {
                if self.write(ctx, write) == StepResult::Blocked {
                    return StepResult::Blocked;
                }
            }
        }
        ctx.pos += 1;
        StepResult::Progress
    }

    fn write(&mut self, ctx: &mut TxnCtx, mop: &Mop) -> StepResult {
        let key = mop.key();
        if self.cfg.isolation == IsolationLevel::ReadUncommitted {
            // In-place, immediately visible; remember undo info.
            let prev_reg = self.store.current(key, self.cfg.kind).register_value();
            self.store.current_mut(key, self.cfg.kind).apply(mop);
            ctx.undo.push((mop.clone(), prev_reg));
        } else {
            if self.cfg.isolation == IsolationLevel::ReadCommitted {
                match self.locks.get(&key) {
                    Some(owner) if *owner != ctx.token => return StepResult::Blocked,
                    _ => {
                        self.locks.insert(key, ctx.token);
                    }
                }
            }
            if !ctx.writes.contains_key(&key) {
                ctx.write_keys.push(key);
            }
            ctx.writes.entry(key).or_default().push(mop.clone());
        }
        StepResult::Progress
    }

    fn read(&mut self, ctx: &mut TxnCtx, key: Key, step: u64, rng: &mut SmallRng) -> ReadValue {
        let kind = self.cfg.kind;
        let (mut base_ts, mut base) = match self.cfg.isolation {
            IsolationLevel::ReadUncommitted => (0, self.store.current(key, kind)),
            IsolationLevel::ReadCommitted => self.store.latest(key, kind),
            _ => self.store.snapshot(key, ctx.read_ts, kind),
        };

        // Dgraph-style fresh-shard nil reads: the migrated shard has no
        // data at all, so even the transaction's own writes are invisible.
        let mut fresh_shard = false;
        if let Some(Bug::FreshShardNilReads {
            period,
            window,
            shards,
        }) = self.cfg.bug
        {
            if Bug::window_active(period, window, step)
                && key.0 % shards.max(1) == Bug::migrating_shard(period, shards, step)
            {
                base_ts = 0;
                base = StoredValue::initial(kind);
                fresh_shard = true;
            }
        }

        ctx.read_set.push((key, base_ts));

        // Overlay the transaction's own buffered writes — unless this is a
        // Fauna-style "index read" that misses them.
        let index_read = matches!(
            self.cfg.bug,
            Some(Bug::IndexMissesOwnWrites { prob }) if rng.gen_bool(prob)
        );
        if !index_read && !fresh_shard && self.cfg.isolation != IsolationLevel::ReadUncommitted {
            if let Some(ws) = ctx.writes.get(&key) {
                for w in ws {
                    base.apply(w);
                }
            }
        }
        base.to_read_value()
    }

    /// Attempt to commit; `true` on success. On failure nothing is applied
    /// (buffered modes) — the caller must invoke [`Engine::abort`] to undo
    /// in-place writes under read-uncommitted.
    pub fn try_commit(&mut self, ctx: &mut TxnCtx) -> bool {
        let ok = match self.cfg.isolation {
            IsolationLevel::ReadUncommitted => true, // already applied
            IsolationLevel::ReadCommitted => {
                self.apply(ctx);
                self.release_locks(ctx);
                true
            }
            IsolationLevel::SnapshotIsolation => {
                if self.write_conflict(ctx) && !self.silent_retry() {
                    return false;
                }
                self.apply(ctx);
                true
            }
            IsolationLevel::Serializable | IsolationLevel::StrictSerializable => {
                if (self.write_conflict(ctx) || self.read_conflict(ctx)) && !self.silent_retry() {
                    return false;
                }
                self.apply(ctx);
                true
            }
        };
        if ok {
            // Writers committed at the clock value `apply` assigned;
            // read-only transactions logically commit at their snapshot.
            ctx.commit_ts = Some(if ctx.write_keys.is_empty() {
                ctx.read_ts
            } else {
                self.clock
            });
        }
        ok
    }

    fn silent_retry(&self) -> bool {
        matches!(self.cfg.bug, Some(Bug::SilentRetry))
    }

    fn write_conflict(&self, ctx: &TxnCtx) -> bool {
        ctx.write_keys
            .iter()
            .any(|k| self.store.latest_ts(*k) > ctx.write_conflict_ts)
    }

    fn read_conflict(&self, ctx: &TxnCtx) -> bool {
        ctx.validate_reads
            && ctx
                .read_set
                .iter()
                .any(|(k, seen)| self.store.latest_ts(*k) > *seen)
    }

    /// Apply buffered writes at a fresh commit timestamp (RMW semantics:
    /// operations apply to the *current* head, so appends are never
    /// dropped even when the engine skipped conflict checks).
    fn apply(&mut self, ctx: &TxnCtx) {
        if ctx.write_keys.is_empty() {
            return;
        }
        self.clock += 1;
        let ts = self.clock;
        for key in &ctx.write_keys {
            let (_, mut value) = self.store.latest(*key, self.cfg.kind);
            for w in &ctx.writes[key] {
                value.apply(w);
            }
            self.store.commit(*key, ts, value);
        }
    }

    /// Undo a read-uncommitted transaction's in-place writes (reverse
    /// order, element-wise) and release any write locks. No-op for other
    /// buffered modes.
    pub fn abort(&mut self, ctx: &TxnCtx) {
        self.release_locks(ctx);
        if self.cfg.isolation != IsolationLevel::ReadUncommitted {
            return;
        }
        for (mop, prev_reg) in ctx.undo.iter().rev() {
            self.store
                .current_mut(mop.key(), self.cfg.kind)
                .unapply(mop, *prev_reg);
        }
    }

    fn release_locks(&mut self, ctx: &TxnCtx) {
        self.locks.retain(|_, owner| *owner != ctx.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObjectKind;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn engine(iso: IsolationLevel) -> Engine {
        Engine::new(DbConfig::new(iso, ObjectKind::ListAppend))
    }

    /// Run a whole transaction to completion at one instant.
    fn run_txn(e: &mut Engine, mops: Vec<Mop>, rng: &mut SmallRng) -> (bool, Vec<Mop>) {
        let mut ctx = e.begin(mops, 0, rng);
        while ctx.pos < ctx.invocation.len() {
            e.exec_next(&mut ctx, 0, rng);
        }
        let ok = e.try_commit(&mut ctx);
        if !ok {
            e.abort(&ctx);
        }
        (ok, ctx.resolved)
    }

    #[test]
    fn serial_appends_and_reads() {
        let mut e = engine(IsolationLevel::StrictSerializable);
        let mut r = rng();
        assert!(run_txn(&mut e, vec![Mop::append(1, 1)], &mut r).0);
        assert!(run_txn(&mut e, vec![Mop::append(1, 2)], &mut r).0);
        let (ok, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert!(ok);
        assert_eq!(res[0], Mop::read_list(1, [1, 2]));
    }

    #[test]
    fn snapshot_isolation_reads_stay_at_snapshot() {
        let mut e = engine(IsolationLevel::SnapshotIsolation);
        let mut r = rng();
        run_txn(&mut e, vec![Mop::append(1, 1)], &mut r);
        // T begins, then T2 commits another append; T still sees [1].
        let mut ctx = e.begin(vec![Mop::read(1), Mop::read(1)], 0, &mut r);
        e.exec_next(&mut ctx, 0, &mut r);
        run_txn(&mut e, vec![Mop::append(1, 2)], &mut r);
        e.exec_next(&mut ctx, 0, &mut r);
        assert!(e.try_commit(&mut ctx));
        assert_eq!(ctx.resolved[0], Mop::read_list(1, [1]));
        assert_eq!(ctx.resolved[1], Mop::read_list(1, [1]));
    }

    #[test]
    fn read_committed_sees_fresh_data_each_read() {
        let mut e = engine(IsolationLevel::ReadCommitted);
        let mut r = rng();
        let mut ctx = e.begin(vec![Mop::read(1), Mop::read(1)], 0, &mut r);
        e.exec_next(&mut ctx, 0, &mut r);
        run_txn(&mut e, vec![Mop::append(1, 9)], &mut r);
        e.exec_next(&mut ctx, 0, &mut r);
        assert!(e.try_commit(&mut ctx));
        assert_eq!(ctx.resolved[0], Mop::read_list(1, []));
        assert_eq!(ctx.resolved[1], Mop::read_list(1, [9]));
    }

    #[test]
    fn first_committer_wins_aborts_conflict() {
        let mut e = engine(IsolationLevel::SnapshotIsolation);
        let mut r = rng();
        let mut ctx1 = {
            let mut c = e.begin(vec![Mop::append(1, 1)], 0, &mut r);
            e.exec_next(&mut c, 0, &mut r);
            c
        };
        let mut ctx2 = {
            let mut c = e.begin(vec![Mop::append(1, 2)], 0, &mut r);
            e.exec_next(&mut c, 0, &mut r);
            c
        };
        assert!(e.try_commit(&mut ctx1));
        assert!(!e.try_commit(&mut ctx2)); // same key, concurrent: aborted
        let (_, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(res[0], Mop::read_list(1, [1]));
    }

    #[test]
    fn snapshot_isolation_permits_write_skew() {
        let mut e = engine(IsolationLevel::SnapshotIsolation);
        let mut r = rng();
        // Two txns read each other's key, write their own: both commit.
        let mut c1 = e.begin(vec![Mop::read(2), Mop::append(1, 1)], 0, &mut r);
        let mut c2 = e.begin(vec![Mop::read(1), Mop::append(2, 2)], 0, &mut r);
        for _ in 0..2 {
            e.exec_next(&mut c1, 0, &mut r);
            e.exec_next(&mut c2, 0, &mut r);
        }
        assert!(e.try_commit(&mut c1));
        assert!(e.try_commit(&mut c2));
    }

    #[test]
    fn serializable_read_validation_blocks_skew() {
        let mut e = engine(IsolationLevel::Serializable);
        let mut r = rng();
        let mut c1 = e.begin(vec![Mop::read(2), Mop::append(1, 1)], 0, &mut r);
        let mut c2 = e.begin(vec![Mop::read(1), Mop::append(2, 2)], 0, &mut r);
        for _ in 0..2 {
            e.exec_next(&mut c1, 0, &mut r);
            e.exec_next(&mut c2, 0, &mut r);
        }
        assert!(e.try_commit(&mut c1));
        // c2 read key 1, which c1 just wrote: validation fails.
        assert!(!e.try_commit(&mut c2));
    }

    #[test]
    fn read_uncommitted_shows_dirty_data_and_undoes() {
        let mut e = engine(IsolationLevel::ReadUncommitted);
        let mut r = rng();
        let mut c1 = e.begin(vec![Mop::append(1, 1)], 0, &mut r);
        e.exec_next(&mut c1, 0, &mut r);
        // Another txn sees the uncommitted append.
        let (_, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(res[0], Mop::read_list(1, [1]));
        // Abort removes the element.
        e.abort(&c1);
        let (_, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(res[0], Mop::read_list(1, []));
    }

    #[test]
    fn silent_retry_commits_through_conflicts() {
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_bug(Bug::SilentRetry);
        let mut e = Engine::new(cfg);
        let mut r = rng();
        let mut c1 = e.begin(vec![Mop::append(1, 1)], 0, &mut r);
        let mut c2 = e.begin(vec![Mop::append(1, 2)], 0, &mut r);
        e.exec_next(&mut c1, 0, &mut r);
        e.exec_next(&mut c2, 0, &mut r);
        assert!(e.try_commit(&mut c1));
        assert!(e.try_commit(&mut c2)); // retried instead of aborted
        let (_, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(res[0], Mop::read_list(1, [1, 2]));
    }

    #[test]
    fn stale_read_timestamp_bug_reads_past() {
        let cfg = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_bug(Bug::StaleReadTimestamp {
                period: 10,
                window: 10,
                lag: 100,
            });
        let mut e = Engine::new(cfg);
        let mut r = rng();
        run_txn(&mut e, vec![Mop::append(1, 1)], &mut r);
        // Election window open at step 0: reads lag behind.
        let (ok, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert!(ok);
        assert_eq!(res[0], Mop::read_list(1, []));
    }

    #[test]
    fn fresh_shard_nil_reads() {
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::Register).with_bug(
            Bug::FreshShardNilReads {
                period: 10,
                window: 10,
                shards: 1,
            },
        );
        let mut e = Engine::new(cfg);
        let mut r = rng();
        run_txn(&mut e, vec![Mop::write(1, 5)], &mut r);
        let (_, res) = run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(res[0], Mop::read_register(1, None));
    }

    #[test]
    fn index_reads_miss_own_writes() {
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_bug(Bug::IndexMissesOwnWrites { prob: 1.0 });
        let mut e = Engine::new(cfg);
        let mut r = rng();
        let (ok, res) = run_txn(&mut e, vec![Mop::append(0, 6), Mop::read(0)], &mut r);
        assert!(ok);
        // §7.3: append(0, 6), r(0, nil)
        assert_eq!(res[1], Mop::read_list(0, []));
    }

    #[test]
    fn read_only_txns_commit_without_clock_advance() {
        let mut e = engine(IsolationLevel::StrictSerializable);
        let mut r = rng();
        run_txn(&mut e, vec![Mop::read(1)], &mut r);
        assert_eq!(e.clock, 0);
        run_txn(&mut e, vec![Mop::append(1, 1)], &mut r);
        assert_eq!(e.clock, 1);
    }
}
