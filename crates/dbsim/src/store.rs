//! The versioned store: committed version chains per key, plus the
//! in-place "current" state used by the read-uncommitted engine.

use crate::config::ObjectKind;
use crate::value::StoredValue;
use elle_history::Key;
use rustc_hash::FxHashMap;

/// MVCC storage. Version timestamps are commit sequence numbers; the chain
/// for each key is strictly increasing in timestamp.
#[derive(Debug, Default)]
pub struct Store {
    versions: FxHashMap<Key, Vec<(u64, StoredValue)>>,
    /// In-place mutable state (read-uncommitted engine only).
    current: FxHashMap<Key, StoredValue>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Latest committed version of `key`: `(commit_ts, value)`.
    /// Timestamp 0 with the initial value when never written.
    pub fn latest(&self, key: Key, kind: ObjectKind) -> (u64, StoredValue) {
        match self.versions.get(&key).and_then(|v| v.last()) {
            Some((ts, val)) => (*ts, val.clone()),
            None => (0, StoredValue::initial(kind)),
        }
    }

    /// The newest committed version with `commit_ts <= ts`.
    pub fn snapshot(&self, key: Key, ts: u64, kind: ObjectKind) -> (u64, StoredValue) {
        match self.versions.get(&key) {
            None => (0, StoredValue::initial(kind)),
            Some(chain) => {
                // Chains are short-ish and append-only; binary search by ts.
                let idx = chain.partition_point(|(t, _)| *t <= ts);
                if idx == 0 {
                    (0, StoredValue::initial(kind))
                } else {
                    let (t, v) = &chain[idx - 1];
                    (*t, v.clone())
                }
            }
        }
    }

    /// Commit timestamp of the newest version of `key` (0 if unwritten).
    pub fn latest_ts(&self, key: Key) -> u64 {
        self.versions
            .get(&key)
            .and_then(|v| v.last())
            .map_or(0, |(ts, _)| *ts)
    }

    /// Install a new committed version. `ts` must exceed the current
    /// latest; the engine's global commit counter guarantees this.
    pub fn commit(&mut self, key: Key, ts: u64, value: StoredValue) {
        let chain = self.versions.entry(key).or_default();
        debug_assert!(chain.last().map_or(0, |(t, _)| *t) < ts);
        chain.push((ts, value));
    }

    /// Mutable access to the in-place state (read-uncommitted engine).
    pub fn current_mut(&mut self, key: Key, kind: ObjectKind) -> &mut StoredValue {
        self.current
            .entry(key)
            .or_insert_with(|| StoredValue::initial(kind))
    }

    /// Read-only view of the in-place state.
    pub fn current(&self, key: Key, kind: ObjectKind) -> StoredValue {
        self.current
            .get(&key)
            .cloned()
            .unwrap_or_else(|| StoredValue::initial(kind))
    }

    /// Number of keys with at least one committed version.
    pub fn key_count(&self) -> usize {
        self.versions.len()
    }

    /// Total committed versions across keys.
    pub fn version_count(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::Elem;

    const K: Key = Key(1);
    const KIND: ObjectKind = ObjectKind::ListAppend;

    fn list(elems: &[u64]) -> StoredValue {
        StoredValue::List(elems.iter().map(|e| Elem(*e)).collect())
    }

    #[test]
    fn unwritten_key_is_initial_at_ts_zero() {
        let s = Store::new();
        assert_eq!(s.latest(K, KIND), (0, list(&[])));
        assert_eq!(s.snapshot(K, 100, KIND), (0, list(&[])));
        assert_eq!(s.latest_ts(K), 0);
    }

    #[test]
    fn snapshot_selects_by_timestamp() {
        let mut s = Store::new();
        s.commit(K, 2, list(&[1]));
        s.commit(K, 5, list(&[1, 2]));
        s.commit(K, 9, list(&[1, 2, 3]));
        assert_eq!(s.snapshot(K, 1, KIND), (0, list(&[])));
        assert_eq!(s.snapshot(K, 2, KIND), (2, list(&[1])));
        assert_eq!(s.snapshot(K, 7, KIND), (5, list(&[1, 2])));
        assert_eq!(s.snapshot(K, 9, KIND), (9, list(&[1, 2, 3])));
        assert_eq!(s.latest(K, KIND), (9, list(&[1, 2, 3])));
        assert_eq!(s.latest_ts(K), 9);
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.version_count(), 3);
    }

    #[test]
    fn current_state_is_separate() {
        let mut s = Store::new();
        s.current_mut(K, KIND)
            .apply(&elle_history::Mop::append(1, 7));
        assert_eq!(s.current(K, KIND), list(&[7]));
        // Committed chain untouched.
        assert_eq!(s.latest_ts(K), 0);
    }
}
