//! Property tests for the simulator: determinism, pairing, and
//! engine-level invariants across random configurations.

use elle_dbsim::{Bug, DbConfig, FaultPlan, IsolationLevel, ObjectKind, SimDb};
use elle_history::{Mop, ProcessId, ReadValue, TxnStatus};
use proptest::prelude::*;

fn arb_isolation() -> impl Strategy<Value = IsolationLevel> {
    prop_oneof![
        Just(IsolationLevel::ReadUncommitted),
        Just(IsolationLevel::ReadCommitted),
        Just(IsolationLevel::SnapshotIsolation),
        Just(IsolationLevel::Serializable),
        Just(IsolationLevel::StrictSerializable),
    ]
}

fn arb_bug() -> impl Strategy<Value = Option<Bug>> {
    prop_oneof![
        Just(None),
        Just(Some(Bug::SilentRetry)),
        (50u64..500, 10u64..100, 0u64..3).prop_map(|(p, w, l)| {
            Some(Bug::StaleReadTimestamp {
                period: p,
                window: w,
                lag: l,
            })
        }),
        (0.01f64..0.9).prop_map(|p| Some(Bug::IndexMissesOwnWrites { prob: p })),
        (50u64..500, 10u64..100, 1u64..6).prop_map(|(p, w, s)| {
            Some(Bug::FreshShardNilReads {
                period: p,
                window: w,
                shards: s,
            })
        }),
    ]
}

/// A simple deterministic source: n transactions of append+read.
fn source(n: u64, keys: u64) -> impl FnMut(ProcessId) -> Option<Vec<Mop>> {
    let mut i = 0u64;
    move |_p| {
        i += 1;
        (i <= n).then(|| {
            vec![
                Mop::append(i % keys, i),
                Mop::read(i % keys),
                Mop::read((i + 1) % keys),
            ]
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical configs yield byte-identical logs, for every isolation
    /// level, bug, and fault plan.
    #[test]
    fn runs_are_deterministic(iso in arb_isolation(),
                              bug in arb_bug(),
                              seed in any::<u64>(),
                              procs in 1usize..8,
                              info in 0.0f64..0.3) {
        let mut cfg = DbConfig::new(iso, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed)
            .with_faults(FaultPlan { info_prob: info, server_abort_prob: 0.05, crash_on_info: true });
        if let Some(b) = bug {
            cfg = cfg.with_bug(b);
        }
        let a = SimDb::new(cfg).run(&mut source(60, 4));
        let b = SimDb::new(cfg).run(&mut source(60, 4));
        prop_assert_eq!(a, b);
    }

    /// Logs always pair: one completion per invocation, every transaction
    /// accounted for.
    #[test]
    fn logs_always_pair(iso in arb_isolation(), seed in any::<u64>(), procs in 1usize..8) {
        let cfg = DbConfig::new(iso, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed)
            .with_faults(FaultPlan::typical());
        let h = SimDb::new(cfg).run_history(&mut source(80, 3)).unwrap();
        prop_assert_eq!(h.len(), 80);
        for t in h.txns() {
            // Committed txns have fully resolved reads.
            if t.status == TxnStatus::Committed {
                for m in &t.mops {
                    if let Mop::Read { value, .. } = m {
                        prop_assert!(value.is_some());
                    }
                }
            }
        }
    }

    /// Under strict serializability the committed reads of each key form
    /// a prefix chain (the engine really is serializable).
    #[test]
    fn strict_reads_prefix_compatible(seed in any::<u64>(), procs in 1usize..8) {
        let cfg = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let h = SimDb::new(cfg).run_history(&mut source(80, 2)).unwrap();
        let mut longest: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for t in h.txns().iter().filter(|t| t.status == TxnStatus::Committed) {
            for m in &t.mops {
                if let Mop::Read { key, value: Some(ReadValue::List(v)) } = m {
                    let v: Vec<u64> = v.iter().map(|e| e.0).collect();
                    let slot = longest.entry(key.0).or_default();
                    if v.len() > slot.len() {
                        prop_assert_eq!(&v[..slot.len()], &slot[..]);
                        *slot = v;
                    } else {
                        prop_assert_eq!(&slot[..v.len()], &v[..]);
                    }
                }
            }
        }
    }

    /// Read-uncommitted aborts really undo: if every transaction aborts,
    /// the store ends empty (observed via a final read).
    #[test]
    fn ru_undo_restores_state(seed in any::<u64>()) {
        let cfg = DbConfig::new(IsolationLevel::ReadUncommitted, ObjectKind::ListAppend)
            .with_processes(1)
            .with_seed(seed)
            .with_faults(FaultPlan { info_prob: 0.0, server_abort_prob: 1.0, crash_on_info: false });
        // All writes abort; then a fault-free run reads the key.
        let mut phase = 0;
        let mut src = |_p: ProcessId| {
            phase += 1;
            match phase {
                1..=10 => Some(vec![Mop::append(0, phase as u64)]),
                _ => None,
            }
        };
        let h = SimDb::new(cfg).run_history(&mut src).unwrap();
        prop_assert!(h.txns().iter().all(|t| t.status == TxnStatus::Aborted));
        // Continue against the same store is not possible through the
        // public API (fresh engine per run), so assert through a second
        // phase inside one run instead:
        let cfg2 = DbConfig::new(IsolationLevel::ReadUncommitted, ObjectKind::ListAppend)
            .with_processes(1)
            .with_seed(seed)
            .with_faults(FaultPlan { info_prob: 0.0, server_abort_prob: 0.5, crash_on_info: false });
        let mut phase2 = 0;
        let mut src2 = |_p: ProcessId| {
            phase2 += 1;
            match phase2 {
                1..=10 => Some(vec![Mop::append(0, phase2 as u64)]),
                11 => Some(vec![Mop::read(0)]),
                _ => None,
            }
        };
        let h2 = SimDb::new(cfg2).run_history(&mut src2).unwrap();
        // The final read (if committed) contains exactly the elements of
        // committed appends, in order.
        let committed: Vec<u64> = h2
            .txns()
            .iter()
            .take(10)
            .filter(|t| t.status == TxnStatus::Committed)
            .map(|t| match t.mops[0] {
                Mop::Append { elem, .. } => elem.0,
                _ => unreachable!(),
            })
            .collect();
        let last = h2.txns().last().unwrap();
        if last.status == TxnStatus::Committed {
            if let Mop::Read { value: Some(ReadValue::List(v)), .. } = &last.mops[0] {
                let got: Vec<u64> = v.iter().map(|e| e.0).collect();
                prop_assert_eq!(got, committed);
            }
        }
    }

    /// First-committer-wins under SI: no two committed transactions that
    /// wrote the same key overlap (their [begin, commit] spans in the
    /// event order are disjoint)… weaker observable proxy: committed
    /// appends per key appear exactly once in the final longest read.
    #[test]
    fn si_committed_appends_all_land(seed in any::<u64>(), procs in 2usize..6) {
        let cfg = DbConfig::new(IsolationLevel::SnapshotIsolation, ObjectKind::ListAppend)
            .with_processes(procs)
            .with_seed(seed);
        let n = 60u64;
        let mut i = 0u64;
        let mut src = move |_p: ProcessId| {
            i += 1;
            if i <= n {
                Some(vec![Mop::append(0, i)])
            } else if i == n + 1 {
                Some(vec![Mop::read(0)])
            } else {
                None
            }
        };
        let h = SimDb::new(cfg).run_history(&mut src).unwrap();
        let committed: std::collections::BTreeSet<u64> = h
            .txns()
            .iter()
            .filter(|t| t.status == TxnStatus::Committed)
            .filter_map(|t| match t.mops.first() {
                Some(Mop::Append { elem, .. }) => Some(elem.0),
                _ => None,
            })
            .collect();
        let last = h.txns().iter().rev().find(|t| {
            t.status == TxnStatus::Committed && matches!(t.mops[0], Mop::Read { .. })
        });
        if let Some(t) = last {
            if let Mop::Read { value: Some(ReadValue::List(v)), .. } = &t.mops[0] {
                let got: std::collections::BTreeSet<u64> = v.iter().map(|e| e.0).collect();
                // Everything that committed before the reader began must
                // be visible (snapshot freshness)…
                let settled: std::collections::BTreeSet<u64> = h
                    .txns()
                    .iter()
                    .filter(|w| {
                        w.status == TxnStatus::Committed
                            && w.complete_index.is_some_and(|c| c < t.invoke_index)
                    })
                    .filter_map(|w| match w.mops.first() {
                        Some(Mop::Append { elem, .. }) => Some(elem.0),
                        _ => None,
                    })
                    .collect();
                prop_assert!(settled.is_subset(&got),
                             "missing settled appends: {:?}", settled.difference(&got));
                // …and nothing beyond the committed set ever appears.
                prop_assert!(got.is_subset(&committed),
                             "phantom appends: {:?}", got.difference(&committed));
            }
        }
    }
}
