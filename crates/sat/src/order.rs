//! Deciding "is there a total order satisfying these constraints?"
//! with a SAT solver and lazily discharged transitivity.
//!
//! One boolean variable per unordered event pair `{a, b}` encodes
//! `before(a, b)`; a full assignment is a *tournament*. Transitivity
//! (the O(n³) clause set that makes a tournament a total order) is not
//! encoded up front. Instead, dbcop-style CEGAR: solve, check the
//! returned tournament for cycles, and add only the violated triangle
//! clauses `¬(u<v ∧ v<c ∧ c<u)`, repeating until the tournament is
//! transitive (SAT: decode the order) or the clause set is refuted
//! (UNSAT). Acyclicity is checked in O(n²) via out-degree scores: a
//! tournament is transitive iff every edge points from a higher score
//! to a lower one, and for any offending edge a counting argument
//! produces a witnessing triangle in one linear scan.

use tinysat::{Lit, SolveResult, Solver};

/// Outcome of an order solve.
pub(crate) enum Outcome {
    /// A transitive tournament was found; events in order, first = earliest.
    Sat(Vec<u32>),
    Unsat,
    Unknown(String),
}

/// Solver-side statistics, accumulated across CEGAR rounds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OrderStats {
    pub vars: usize,
    pub clauses: usize,
    pub rounds: usize,
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
}

pub(crate) struct OrderSolve {
    pub outcome: Outcome,
    pub stats: OrderStats,
    /// Event ids mentioned in the final conflict clause (UNSAT only).
    pub conflict_events: Vec<u32>,
}

/// Triangle clauses added per CEGAR round; bounds round latency while
/// still converging quickly (each clause kills the found cycle).
const BATCH: usize = 256;

pub(crate) fn solve_order(
    n_events: u32,
    clauses: &[Vec<(u32, u32)>],
    max_conflicts: u64,
    max_rounds: usize,
) -> OrderSolve {
    let n = n_events as usize;
    let mut stats = OrderStats::default();
    if n <= 1 {
        return OrderSolve {
            outcome: Outcome::Sat((0..n_events).collect()),
            stats,
            conflict_events: Vec::new(),
        };
    }

    // Pair variables, triangular numbering: var(i, j) for i < j.
    let base: Vec<usize> = (0..n).map(|i| i * (2 * n - i - 1) / 2).collect();
    let var = |a: usize, b: usize| -> u32 {
        debug_assert!(a < b);
        (base[a] + (b - a - 1)) as u32
    };
    // Literal asserting `a before b`.
    let lit = |a: usize, b: usize| -> Lit {
        if a < b {
            Lit::pos(var(a, b))
        } else {
            Lit::neg(var(b, a))
        }
    };

    let mut s = Solver::new();
    let n_vars = n * (n - 1) / 2;
    for _ in 0..n_vars {
        s.new_var();
    }
    stats.vars = n_vars;

    let conflict_events_of = |s: &Solver| -> Vec<u32> {
        let mut evs: Vec<u32> = Vec::new();
        for l in s.final_conflict() {
            // Invert the triangular numbering: find a via base[], then b.
            let idx = l.var() as usize;
            let a = match base.binary_search(&idx) {
                Ok(a) => a,
                Err(ins) => ins - 1,
            };
            let b = a + 1 + (idx - base[a]);
            evs.push(a as u32);
            evs.push(b as u32);
        }
        evs.sort_unstable();
        evs.dedup();
        evs
    };

    let mut ok = true;
    for c in clauses {
        let lits: Vec<Lit> = c
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| lit(a as usize, b as usize))
            .collect();
        if lits.is_empty() || !s.add_clause(&lits) {
            ok = false;
            break;
        }
    }
    stats.clauses = clauses.len();
    if !ok {
        let conflict_events = conflict_events_of(&s);
        return OrderSolve {
            outcome: Outcome::Unsat,
            stats,
            conflict_events,
        };
    }

    let mut before = vec![false; n_vars];
    let mut scores: Vec<u32> = vec![0; n];
    let mut seen_triangles: rustc_hash::FxHashSet<(u32, u32, u32)> =
        rustc_hash::FxHashSet::default();
    for round in 0..max_rounds {
        stats.rounds = round + 1;
        let budget = max_conflicts.saturating_sub(stats.conflicts);
        if budget == 0 {
            stats.absorb(&s);
            return OrderSolve {
                outcome: Outcome::Unknown("conflict budget exhausted".to_string()),
                stats,
                conflict_events: Vec::new(),
            };
        }
        match s.solve_limited(budget) {
            SolveResult::Unsat => {
                let conflict_events = conflict_events_of(&s);
                stats.absorb(&s);
                return OrderSolve {
                    outcome: Outcome::Unsat,
                    stats,
                    conflict_events,
                };
            }
            SolveResult::Unknown => {
                stats.absorb(&s);
                return OrderSolve {
                    outcome: Outcome::Unknown("conflict budget exhausted".to_string()),
                    stats,
                    conflict_events: Vec::new(),
                };
            }
            SolveResult::Sat => {}
        }

        // Tournament → out-degree scores.
        scores.iter_mut().for_each(|x| *x = 0);
        for a in 0..n {
            for b in (a + 1)..n {
                let fwd = s.model_value(var(a, b));
                before[var(a, b) as usize] = fwd;
                if fwd {
                    scores[a] += 1;
                } else {
                    scores[b] += 1;
                }
            }
        }
        let edge = |u: usize, v: usize| -> bool {
            if u < v {
                before[var(u, v) as usize]
            } else {
                !before[var(v, u) as usize]
            }
        };

        // Transitive iff every edge descends in score. For an edge
        // u→v with score[u] ≤ score[v] some c closes a 3-cycle
        // v→c→u (else N⁺(v) ⊆ N⁺(u) yet v ∈ N⁺(u)\N⁺(v), contradicting
        // the score comparison); forbid that triangle and re-solve.
        let mut batch: Vec<[usize; 3]> = Vec::new();
        'scan: for u in 0..n {
            for v in 0..n {
                if u == v || !edge(u, v) || scores[u] > scores[v] {
                    continue;
                }
                for c in 0..n {
                    if c != u && c != v && edge(v, c) && edge(c, u) {
                        let tri = normalize(u as u32, v as u32, c as u32);
                        if seen_triangles.insert(tri) {
                            batch.push([u, v, c]);
                        }
                        break;
                    }
                }
                if batch.len() >= BATCH {
                    break 'scan;
                }
            }
        }

        if batch.is_empty() {
            // Transitive: descending score is the order.
            let mut order: Vec<u32> = (0..n_events).collect();
            order.sort_by_key(|&e| std::cmp::Reverse(scores[e as usize]));
            stats.absorb(&s);
            return OrderSolve {
                outcome: Outcome::Sat(order),
                stats,
                conflict_events: Vec::new(),
            };
        }
        for [u, v, c] in batch {
            // ¬(u<v ∧ v<c ∧ c<u)
            if !s.add_clause(&[lit(v, u), lit(c, v), lit(u, c)]) {
                let conflict_events = conflict_events_of(&s);
                stats.absorb(&s);
                return OrderSolve {
                    outcome: Outcome::Unsat,
                    stats,
                    conflict_events,
                };
            }
            stats.clauses += 1;
        }
    }
    stats.absorb(&s);
    OrderSolve {
        outcome: Outcome::Unknown("transitivity refinement did not converge".to_string()),
        stats,
        conflict_events: Vec::new(),
    }
}

fn normalize(u: u32, v: u32, c: u32) -> (u32, u32, u32) {
    // Rotate the directed 3-cycle u→v→c→u so the smallest vertex leads.
    if u <= v && u <= c {
        (u, v, c)
    } else if v <= u && v <= c {
        (v, c, u)
    } else {
        (c, u, v)
    }
}

impl OrderStats {
    fn absorb(&mut self, s: &Solver) {
        self.conflicts = s.stats.conflicts;
        self.decisions = s.stats.decisions;
        self.propagations = s.stats.propagations;
    }
}
