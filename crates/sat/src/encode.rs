//! History → order-constraint encoding.
//!
//! This is the semantic half of the SAT engine. A history is compiled
//! into a system of *ordering constraints* over abstract events:
//!
//! * **serializability** — one event per included transaction; a model
//!   is a total order of transactions under which every observed read
//!   is the exact serial state at that point;
//! * **snapshot isolation** — two events per transaction, `begin(t)`
//!   and `commit(t)`; reads must see precisely the commits before
//!   `begin(t)`, and same-key writers must not interleave
//!   (first-committer-wins).
//!
//! Constraints are disjunctions of `before(a, b)` event pairs; units
//! are the common case. The solver half ([`crate::order`]) maps each
//! unordered event pair to one SAT variable and discharges
//! transitivity lazily, dbcop-style.
//!
//! Anything the observed reads *already* refute — aborted reads,
//! intermediate reads, torn append blocks, internal inconsistency —
//! short-circuits to [`Encoded::Refuted`] with the culprit
//! transactions named directly; those refutations hold under every
//! model this engine decides, so no solver call is needed.

use elle_core::{DataType, DepGraph, KeyTypes};
use elle_graph::EdgeClass;
use elle_history::{Elem, History, Key, Mop, ReadValue, Transaction, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// An isolation model the SAT engine decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatModel {
    /// Adya PL-3 serializability (no session/real-time obligations).
    Serializable,
    /// Snapshot isolation: begin/commit split, snapshot reads,
    /// first-committer-wins write conflicts.
    SnapshotIsolation,
}

impl std::fmt::Display for SatModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatModel::Serializable => write!(f, "serializable"),
            SatModel::SnapshotIsolation => write!(f, "snapshot-isolation"),
        }
    }
}

/// One ordering constraint: at least one listed `(a, b)` event pair
/// must satisfy `a before b`. Units (a single pair) are the common case.
pub(crate) type OrderClause = Vec<(u32, u32)>;

/// A compiled constraint system.
pub(crate) struct System {
    /// Included transactions, ascending by id. Event ids index into
    /// this: under SER event `i` *is* transaction `txns[i]`; under SI
    /// events `2i` / `2i + 1` are its begin / commit.
    pub txns: Vec<TxnId>,
    pub n_events: u32,
    pub clauses: Vec<OrderClause>,
    pub model: SatModel,
}

/// Result of compiling a history.
pub(crate) enum Encoded {
    /// Constraints to hand to the order solver.
    System(System),
    /// The reads alone refute the model; no solver run needed.
    Refuted {
        txns: Vec<TxnId>,
        explanation: String,
    },
    /// The encoding does not cover this history.
    Unsupported { reason: String },
}

/// What one committed transaction observed about one key, after its
/// own in-transaction effects are peeled off: the *external* state its
/// reads pin down.
enum KeyObs {
    /// The list state just before this transaction's own appends.
    List(Vec<Elem>),
    /// The register value before this transaction's own writes
    /// (`None` = initial nil).
    Register(Option<Elem>),
    /// The set contents minus this transaction's own adds.
    Set(BTreeSet<Elem>),
}

/// Per-key in-transaction simulation state for [`externalize`].
#[derive(Default)]
struct KeySim {
    appended: Vec<Elem>,
    written: Option<Elem>,
    added: BTreeSet<Elem>,
    ext_list: Option<Vec<Elem>>,
    ext_reg: Option<Option<Elem>>,
    ext_set: Option<BTreeSet<Elem>>,
}

fn fmt_txns(ids: &[TxnId]) -> String {
    ids.iter()
        .map(|t| format!("T{}", t.0))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Walk a transaction's mops in program order, checking internal
/// consistency and extracting, per key, the external observation its
/// reads establish. `Err` carries the internal-inconsistency
/// explanation (a violation of every model we decide).
fn externalize(t: &Transaction) -> Result<Vec<(Key, KeyObs)>, String> {
    let mut sims: FxHashMap<Key, KeySim> = FxHashMap::default();
    for m in &t.mops {
        match m {
            Mop::Append { key, elem } => sims.entry(*key).or_default().appended.push(*elem),
            Mop::Write { key, elem } => sims.entry(*key).or_default().written = Some(*elem),
            Mop::AddToSet { key, elem } => {
                sims.entry(*key).or_default().added.insert(*elem);
            }
            Mop::Increment { .. } => unreachable!("counter keys are rejected before externalize"),
            Mop::Read { value: None, .. } => {}
            Mop::Read {
                key,
                value: Some(v),
            } => {
                let sim = sims.entry(*key).or_default();
                match v {
                    ReadValue::List(obs) => {
                        let own = sim.appended.len();
                        if obs.len() < own || obs[obs.len() - own..] != sim.appended[..] {
                            return Err(format!(
                                "T{} read {key} as {obs:?} which does not end with its own \
                                 appends {:?} (internal inconsistency)",
                                t.id.0, sim.appended
                            ));
                        }
                        let prefix = obs[..obs.len() - own].to_vec();
                        match &sim.ext_list {
                            None => sim.ext_list = Some(prefix),
                            Some(p) if *p != prefix => {
                                return Err(format!(
                                    "T{} read two incompatible external prefixes of {key} \
                                     ({p:?} vs {prefix:?}) in one transaction",
                                    t.id.0
                                ));
                            }
                            Some(_) => {}
                        }
                    }
                    ReadValue::Register(obs) => {
                        if let Some(w) = sim.written {
                            if *obs != Some(w) {
                                return Err(format!(
                                    "T{} wrote {w} to register {key} but then read {} \
                                     (internal inconsistency)",
                                    t.id.0,
                                    obs.map_or("nil".to_string(), |e| e.to_string()),
                                ));
                            }
                        } else {
                            match sim.ext_reg {
                                None => sim.ext_reg = Some(*obs),
                                Some(p) if p != *obs => {
                                    return Err(format!(
                                        "T{} read register {key} twice with different external \
                                         values in one transaction",
                                        t.id.0
                                    ));
                                }
                                Some(_) => {}
                            }
                        }
                    }
                    ReadValue::Set(obs) => {
                        if !sim.added.is_subset(obs) {
                            return Err(format!(
                                "T{} read set {key} missing its own adds (internal inconsistency)",
                                t.id.0
                            ));
                        }
                        let ext: BTreeSet<Elem> = obs.difference(&sim.added).copied().collect();
                        match &sim.ext_set {
                            None => sim.ext_set = Some(ext),
                            Some(p) if *p != ext => {
                                return Err(format!(
                                    "T{} read two incompatible external set states of {key} \
                                     in one transaction",
                                    t.id.0
                                ));
                            }
                            Some(_) => {}
                        }
                    }
                    ReadValue::Counter(_) => {
                        unreachable!("counter keys are rejected before externalize")
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (key, sim) in sims {
        if let Some(p) = sim.ext_list {
            out.push((key, KeyObs::List(p)));
        }
        if let Some(r) = sim.ext_reg {
            out.push((key, KeyObs::Register(r)));
        }
        if let Some(s) = sim.ext_set {
            out.push((key, KeyObs::Set(s)));
        }
    }
    out.sort_by_key(|(k, _)| *k);
    Ok(out)
}

/// Writer tables over the included transactions.
struct Writers {
    /// Program-order appends per (txn, key).
    appends: FxHashMap<(TxnId, Key), Vec<Elem>>,
    /// Appenders per key, ascending.
    appenders: FxHashMap<Key, Vec<TxnId>>,
    /// Final register write per (txn, key).
    reg_last: FxHashMap<(TxnId, Key), Elem>,
    /// Register writers per key, ascending.
    reg_writers: FxHashMap<Key, Vec<TxnId>>,
    /// Register values overwritten *within* their own transaction:
    /// no serial order can expose them to another transaction.
    reg_overwritten: FxHashMap<(Key, Elem), TxnId>,
    /// Adds per (txn, key).
    adds: FxHashMap<(TxnId, Key), BTreeSet<Elem>>,
    /// Adders per key, ascending.
    adders: FxHashMap<Key, Vec<TxnId>>,
    /// (key, elem) → the one included transaction that durably wrote it.
    writer_of: FxHashMap<(Key, Elem), TxnId>,
    /// (key, elem) pairs durably written by two included transactions —
    /// recoverability is lost; reads of these cannot be attributed.
    ambiguous: FxHashSet<(Key, Elem)>,
}

fn build_writers(history: &History, included: &[TxnId]) -> Writers {
    let mut w = Writers {
        appends: FxHashMap::default(),
        appenders: FxHashMap::default(),
        reg_last: FxHashMap::default(),
        reg_writers: FxHashMap::default(),
        reg_overwritten: FxHashMap::default(),
        adds: FxHashMap::default(),
        adders: FxHashMap::default(),
        writer_of: FxHashMap::default(),
        ambiguous: FxHashSet::default(),
    };
    let claim = |map: &mut FxHashMap<(Key, Elem), TxnId>,
                 amb: &mut FxHashSet<(Key, Elem)>,
                 key: Key,
                 elem: Elem,
                 t: TxnId| {
        if let Some(prev) = map.insert((key, elem), t) {
            if prev != t {
                amb.insert((key, elem));
            }
        }
    };
    for &id in included {
        let t = history.get(id);
        for m in &t.mops {
            match m {
                Mop::Append { key, elem } => {
                    let v = w.appends.entry((id, *key)).or_default();
                    if v.is_empty() {
                        w.appenders.entry(*key).or_default().push(id);
                    }
                    v.push(*elem);
                    claim(&mut w.writer_of, &mut w.ambiguous, *key, *elem, id);
                }
                Mop::Write { key, elem } => {
                    if let Some(prev) = w.reg_last.insert((id, *key), *elem) {
                        w.reg_overwritten.insert((*key, prev), id);
                        if w.writer_of.get(&(*key, prev)) == Some(&id) {
                            w.writer_of.remove(&(*key, prev));
                        }
                    } else {
                        w.reg_writers.entry(*key).or_default().push(id);
                    }
                    claim(&mut w.writer_of, &mut w.ambiguous, *key, *elem, id);
                }
                Mop::AddToSet { key, elem } => {
                    let s = w.adds.entry((id, *key)).or_default();
                    if s.is_empty() {
                        w.adders.entry(*key).or_default().push(id);
                    }
                    s.insert(*elem);
                    claim(&mut w.writer_of, &mut w.ambiguous, *key, *elem, id);
                }
                _ => {}
            }
        }
    }
    w
}

/// Compile `history` into [`Encoded`]. `idsg` optionally supplies the
/// cycle engine's inferred dependency graph, whose ww/wr/rw edges are
/// asserted as unit ordering constraints (they are sound inferences,
/// so this only prunes the solver's search — it cannot change the
/// verdict).
pub(crate) fn encode(history: &History, model: SatModel, idsg: Option<&DepGraph>) -> Encoded {
    let kt = KeyTypes::infer(history);
    if !kt.conflicts.is_empty() {
        return Encoded::Unsupported {
            reason: format!(
                "key {} is used as more than one datatype; recoverability is lost",
                kt.conflicts[0]
            ),
        };
    }
    if !kt.keys_of(DataType::Counter).is_empty() {
        return Encoded::Unsupported {
            reason: "counter keys observe only aggregates; reads cannot be attributed to \
                     writers, so the order encoding is undefined"
                .to_string(),
        };
    }

    // ── Scope: which transactions exist in the admissible executions. ──
    // Committed transactions always; indeterminate ones exactly when
    // some write of theirs was observed (the observation proves the
    // commit); aborted ones never — observing an aborted write is G1a,
    // refuted below.
    let mut aborted_writes: FxHashMap<(Key, Elem), TxnId> = FxHashMap::default();
    for t in history.txns() {
        if t.status == TxnStatus::Aborted {
            for (_, key, e) in t.elem_writes() {
                aborted_writes.entry((key, e)).or_insert(t.id);
            }
        }
    }

    let mut observations: Vec<(TxnId, Vec<(Key, KeyObs)>)> = Vec::new();
    let mut observed: FxHashSet<(Key, Elem)> = FxHashSet::default();
    for t in history.txns() {
        if !t.status.is_committed() {
            continue;
        }
        let obs = match externalize(t) {
            Ok(o) => o,
            Err(explanation) => {
                return Encoded::Refuted {
                    txns: vec![t.id],
                    explanation,
                }
            }
        };
        for (key, ko) in &obs {
            match ko {
                KeyObs::List(p) => observed.extend(p.iter().map(|&e| (*key, e))),
                KeyObs::Register(Some(e)) => {
                    observed.insert((*key, *e));
                }
                KeyObs::Register(None) => {}
                KeyObs::Set(s) => observed.extend(s.iter().map(|&e| (*key, e))),
            }
        }
        observations.push((t.id, obs));
    }

    let mut included: Vec<TxnId> = Vec::new();
    for t in history.txns() {
        let include = match t.status {
            TxnStatus::Committed => true,
            TxnStatus::Aborted => false,
            _ => t
                .elem_writes()
                .any(|(_, key, e)| observed.contains(&(key, e))),
        };
        if include {
            included.push(t.id);
        }
    }
    let event_of: FxHashMap<TxnId, u32> = included
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();

    let w = build_writers(history, &included);
    for &(key, e) in &observed {
        if w.ambiguous.contains(&(key, e)) {
            return Encoded::Unsupported {
                reason: format!(
                    "element {e} of {key} was durably written by two live transactions; \
                     its reads cannot be attributed"
                ),
            };
        }
    }

    let si = model == SatModel::SnapshotIsolation;
    // Event ids: SER → one per txn; SI → begin = 2i, commit = 2i + 1.
    let begin = |i: u32| if si { 2 * i } else { i };
    let commit = |i: u32| if si { 2 * i + 1 } else { i };
    // "w's effects are visible to t": SER w < t; SI commit(w) < begin(t).
    let vis = |wi: u32, ti: u32| (commit(wi), begin(ti));
    // "t's snapshot misses w": SER t < w; SI begin(t) < commit(w).
    let miss = |ti: u32, wi: u32| (begin(ti), commit(wi));

    let mut units: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut clauses: Vec<OrderClause> = Vec::new();

    // Resolve an observed element to its live writer's event id, or
    // refute (aborted read / garbage read / self-observation).
    let resolve = |reader: &Transaction, key: Key, e: Elem| -> Result<u32, Encoded> {
        if let Some(&a) = aborted_writes.get(&(key, e)) {
            return Err(Encoded::Refuted {
                txns: vec![a, reader.id],
                explanation: format!(
                    "T{} observed element {e} of {key}, written by aborted T{} (G1a)",
                    reader.id.0, a.0
                ),
            });
        }
        if let Some(&wo) = w.reg_overwritten.get(&(key, e)) {
            return Err(Encoded::Refuted {
                txns: vec![wo, reader.id],
                explanation: format!(
                    "T{} observed register {key} = {e}, a value T{} overwrote within its own \
                     transaction (intermediate read, G1b)",
                    reader.id.0, wo.0
                ),
            });
        }
        let Some(&writer) = w.writer_of.get(&(key, e)) else {
            return Err(Encoded::Refuted {
                txns: vec![reader.id],
                explanation: format!(
                    "T{} observed element {e} of {key}, which no live transaction wrote \
                     (garbage read)",
                    reader.id.0
                ),
            });
        };
        if writer == reader.id {
            return Err(Encoded::Refuted {
                txns: vec![reader.id],
                explanation: format!(
                    "T{} observed its own write of {e} to {key} in the external state \
                     (impossible under any serial placement)",
                    reader.id.0
                ),
            });
        }
        Ok(event_of[&writer])
    };

    for (reader_id, obs) in &observations {
        let reader = history.get(*reader_id);
        let ti = event_of[reader_id];
        for (key, ko) in obs {
            match ko {
                KeyObs::List(p) => {
                    // Decompose the observed prefix into consecutive,
                    // complete writer blocks.
                    let mut chain: Vec<TxnId> = Vec::new();
                    let mut chain_set: FxHashSet<TxnId> = FxHashSet::default();
                    let mut i = 0;
                    while i < p.len() {
                        let wi = match resolve(reader, *key, p[i]) {
                            Ok(wi) => wi,
                            Err(e) => return e,
                        };
                        let writer = included[wi as usize];
                        let block = &w.appends[&(writer, *key)];
                        if p.len() - i < block.len() || p[i..i + block.len()] != block[..] {
                            return Encoded::Refuted {
                                txns: vec![writer, *reader_id],
                                explanation: format!(
                                    "T{} observed {key} as {p:?}, a torn or reordered view of \
                                     T{}'s atomic appends {block:?} (G1b)",
                                    reader_id.0, writer.0
                                ),
                            };
                        }
                        if !chain_set.insert(writer) {
                            return Encoded::Refuted {
                                txns: vec![writer, *reader_id],
                                explanation: format!(
                                    "T{} observed T{}'s appends to {key} twice (duplicate read)",
                                    reader_id.0, writer.0
                                ),
                            };
                        }
                        chain.push(writer);
                        i += block.len();
                    }
                    for pair in chain.windows(2) {
                        units.insert(vis(event_of[&pair[0]], event_of[&pair[1]]));
                    }
                    for wtx in &chain {
                        units.insert(vis(event_of[wtx], ti));
                    }
                    if let Some(appenders) = w.appenders.get(key) {
                        for a in appenders {
                            if *a != *reader_id && !chain_set.contains(a) {
                                units.insert(miss(ti, event_of[a]));
                            }
                        }
                    }
                }
                KeyObs::Register(Some(e)) => {
                    let wi = match resolve(reader, *key, *e) {
                        Ok(wi) => wi,
                        Err(enc) => return enc,
                    };
                    units.insert(vis(wi, ti));
                    // No other writer may interpose between the observed
                    // writer and the read: it committed earlier, or the
                    // reader's snapshot misses it.
                    if let Some(writers) = w.reg_writers.get(key) {
                        for o in writers {
                            let oi = event_of[o];
                            if oi == wi || *o == *reader_id {
                                continue;
                            }
                            clauses.push(vec![(commit(oi), commit(wi)), miss(ti, oi)]);
                        }
                    }
                }
                KeyObs::Register(None) => {
                    if let Some(writers) = w.reg_writers.get(key) {
                        for o in writers {
                            if *o != *reader_id {
                                units.insert(miss(ti, event_of[o]));
                            }
                        }
                    }
                }
                KeyObs::Set(s) => {
                    for &e in s {
                        if let Err(enc) = resolve(reader, *key, e) {
                            return enc;
                        }
                    }
                    if let Some(adders) = w.adders.get(key) {
                        for a in adders {
                            if *a == *reader_id {
                                continue;
                            }
                            let adds = &w.adds[&(*a, *key)];
                            let seen = adds.intersection(s).count();
                            if seen == adds.len() {
                                units.insert(vis(event_of[a], ti));
                            } else if seen == 0 {
                                units.insert(miss(ti, event_of[a]));
                            } else {
                                return Encoded::Refuted {
                                    txns: vec![*a, *reader_id],
                                    explanation: format!(
                                        "T{} observed only part of T{}'s atomic adds to set \
                                         {key} (G1b)",
                                        reader_id.0, a.0
                                    ),
                                };
                            }
                        }
                    }
                }
            }
        }
    }

    if si {
        // begin(t) < commit(t), and first-committer-wins: same-key
        // writers must not interleave.
        for i in 0..included.len() as u32 {
            units.insert((begin(i), commit(i)));
        }
        let mut conflict_keys: Vec<(&Key, &Vec<TxnId>)> = w
            .appenders
            .iter()
            .chain(w.reg_writers.iter())
            .chain(w.adders.iter())
            .collect();
        conflict_keys.sort_by_key(|(k, _)| **k);
        for (_, writers) in conflict_keys {
            for (x, &a) in writers.iter().enumerate() {
                for &b in &writers[x + 1..] {
                    let (ai, bi) = (event_of[&a], event_of[&b]);
                    clauses.push(vec![(commit(ai), begin(bi)), (commit(bi), begin(ai))]);
                }
            }
        }
    }

    // ── Cycle-engine edges as unit constraints. ────────────────────────
    if let Some(deps) = idsg {
        for (u, v, mask) in deps.edges() {
            let (Some(&ui), Some(&vi)) = (event_of.get(&TxnId(u)), event_of.get(&TxnId(v))) else {
                continue;
            };
            if ui == vi {
                continue;
            }
            // ww / wr: u's effects precede v's view or install; rw: u's
            // snapshot misses v's install. Derived orders (process,
            // real-time, timestamp, version heuristics, rr) are *not*
            // obligations of these models and are skipped.
            if mask.contains(EdgeClass::Ww) || mask.contains(EdgeClass::Wr) {
                units.insert(vis(ui, vi));
            }
            if mask.contains(EdgeClass::Rw) {
                units.insert(miss(ui, vi));
            }
        }
    }

    let mut all: Vec<OrderClause> = units.into_iter().map(|p| vec![p]).collect();
    all.sort();
    all.extend(clauses);
    Encoded::System(System {
        n_events: if si {
            2 * included.len() as u32
        } else {
            included.len() as u32
        },
        txns: included,
        clauses: all,
        model,
    })
}

/// Human-readable list for explanations (`T3, T7, T9`).
pub(crate) fn txn_list(ids: &[TxnId]) -> String {
    fmt_txns(ids)
}
