//! `elle-sat`: a SAT-backed *complete* checker for serializability and
//! snapshot isolation, cross-checking the cycle engine.
//!
//! Elle's Adya-cycle search (the `elle-core` engine) is sound but
//! incomplete: some anomalies only appear when reasoning over **all**
//! admissible version orders at once, which a fixed inferred graph
//! cannot express. This crate closes that gap for the two models where
//! a total-order semantics exists:
//!
//! * **serializable** — does any total order of the live transactions
//!   reproduce every observed read exactly?
//! * **snapshot-isolation** — does any placement of begin/commit
//!   events exist under which every read is a snapshot read and
//!   same-key writers obey first-committer-wins?
//!
//! The encoding ([`encode`]) compiles observed reads into ordering
//! constraints over abstract events; the solver ([`order`]) maps
//! unordered event pairs to SAT variables on the vendored
//! [`tinysat`] CDCL core and discharges transitivity lazily
//! (dbcop-style CEGAR). The cycle engine's inferred ww/wr/rw edges are
//! asserted as unit clauses — sound inferences that prune search
//! without changing the verdict.
//!
//! A satisfiable answer decodes into a **witness order** of real
//! transaction ids (verifiable by serial replay,
//! [`verify_serial_order`]); an unsatisfiable one is delta-debugged
//! down to a **1-minimal witness**: a smallest transaction subset that
//! is still refutable on its own.

#![forbid(unsafe_code)]

mod encode;
mod order;

pub use encode::SatModel;

use elle_core::{CheckOptions, Checker, DepGraph};
use elle_history::{History, Mop, ReadValue, TxnId};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Tuning knobs for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct SatOptions {
    /// Total CDCL conflict budget across CEGAR rounds; exhausted →
    /// [`SatVerdict::Unknown`].
    pub max_conflicts: u64,
    /// Cap on transitivity-refinement rounds.
    pub max_rounds: usize,
    /// Cap on pair variables (events²/2); larger systems → Unknown
    /// rather than unbounded memory.
    pub max_vars: usize,
    /// Delta-debug UNSAT verdicts down to a 1-minimal witness.
    pub minimize: bool,
    /// Cap on solver probes spent minimizing.
    pub minimize_solve_cap: usize,
    /// Assert the cycle engine's inferred ww/wr/rw edges as unit
    /// clauses (sound pruning).
    pub idsg_units: bool,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions {
            max_conflicts: 2_000_000,
            max_rounds: 400,
            max_vars: 2_000_000,
            minimize: true,
            minimize_solve_cap: 600,
            idsg_units: true,
        }
    }
}

impl SatOptions {
    /// Builder-style: conflict budget.
    pub fn with_max_conflicts(mut self, n: u64) -> Self {
        self.max_conflicts = n;
        self
    }

    /// Builder-style: toggle witness minimization.
    pub fn with_minimize(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Builder-style: toggle IDSG unit clauses.
    pub fn with_idsg_units(mut self, on: bool) -> Self {
        self.idsg_units = on;
        self
    }
}

/// The SAT engine's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// A total order exists; `order` lists the included transactions
    /// earliest-first (for snapshot isolation: by commit event).
    Satisfiable {
        /// Witness serialization, earliest first.
        order: Vec<TxnId>,
    },
    /// No admissible order exists.
    Violated {
        /// Transactions whose sub-history is already refutable.
        witness: Vec<TxnId>,
        /// Whether `witness` was delta-debugged to 1-minimality.
        minimized: bool,
        /// Human-readable account of the refutation.
        explanation: String,
    },
    /// Budget exhausted before a verdict.
    Unknown {
        /// Which budget ran out.
        reason: String,
    },
    /// The encoding does not cover this history (counters, ambiguous
    /// writers, mixed-datatype keys).
    Unsupported {
        /// Why the history is out of scope.
        reason: String,
    },
}

impl SatVerdict {
    /// True for [`SatVerdict::Satisfiable`].
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatVerdict::Satisfiable { .. })
    }

    /// True for [`SatVerdict::Violated`].
    pub fn is_violated(&self) -> bool {
        matches!(self, SatVerdict::Violated { .. })
    }
}

/// Work counters for one [`check`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Transactions included in the encoding.
    pub included: usize,
    /// Abstract order events (= included under SER, 2× under SI).
    pub events: usize,
    /// Pair variables allocated.
    pub vars: usize,
    /// Constraint clauses (semantic + IDSG units + learned triangles).
    pub clauses: usize,
    /// CEGAR rounds used.
    pub rounds: usize,
    /// CDCL conflicts across all rounds.
    pub conflicts: u64,
    /// CDCL decisions across all rounds.
    pub decisions: u64,
    /// Unit propagations across all rounds.
    pub propagations: u64,
    /// Extra solver probes spent on witness minimization.
    pub minimize_solves: usize,
    /// Wall-clock for the whole check.
    pub elapsed: std::time::Duration,
}

/// Verdict plus stats.
#[derive(Debug, Clone)]
pub struct SatReport {
    /// The engine's answer.
    pub verdict: SatVerdict,
    /// Work counters.
    pub stats: SatStats,
}

/// Check `history` against `model` with the SAT engine.
pub fn check(history: &History, model: SatModel, opts: &SatOptions) -> SatReport {
    let start = Instant::now();
    let mut stats = SatStats::default();

    let idsg: Option<DepGraph> = if opts.idsg_units {
        Some(Checker::new(CheckOptions::serializable()).infer_idsg(history))
    } else {
        None
    };

    let verdict = match encode::encode(history, model, idsg.as_ref()) {
        encode::Encoded::Unsupported { reason } => SatVerdict::Unsupported { reason },
        encode::Encoded::Refuted { txns, explanation } => {
            stats.included = txns.len();
            SatVerdict::Violated {
                witness: txns,
                minimized: true,
                explanation,
            }
        }
        encode::Encoded::System(sys) => {
            stats.included = sys.txns.len();
            stats.events = sys.n_events as usize;
            let n = sys.n_events as usize;
            if n * n.saturating_sub(1) / 2 > opts.max_vars {
                SatVerdict::Unknown {
                    reason: format!(
                        "{} events need {} order variables, over the {} cap",
                        n,
                        n * (n - 1) / 2,
                        opts.max_vars
                    ),
                }
            } else {
                let solved = order::solve_order(
                    sys.n_events,
                    &sys.clauses,
                    opts.max_conflicts,
                    opts.max_rounds,
                );
                stats.vars = solved.stats.vars;
                stats.clauses = solved.stats.clauses;
                stats.rounds = solved.stats.rounds;
                stats.conflicts = solved.stats.conflicts;
                stats.decisions = solved.stats.decisions;
                stats.propagations = solved.stats.propagations;
                match solved.outcome {
                    order::Outcome::Unknown(reason) => SatVerdict::Unknown { reason },
                    order::Outcome::Sat(events) => SatVerdict::Satisfiable {
                        order: decode_order(&sys, &events),
                    },
                    order::Outcome::Unsat => {
                        let seed: Vec<TxnId> = if solved.conflict_events.is_empty() {
                            sys.txns.clone()
                        } else {
                            let mut ids: Vec<TxnId> = solved
                                .conflict_events
                                .iter()
                                .map(|&e| sys.txns[event_txn(&sys, e) as usize])
                                .collect();
                            ids.sort_unstable();
                            ids.dedup();
                            ids
                        };
                        if opts.minimize {
                            let witness =
                                minimize(history, model, sys.txns.clone(), opts, &mut stats);
                            let explanation = format!(
                                "no {model} order exists over {} ({} transactions, CEGAR UNSAT)",
                                encode::txn_list(&witness),
                                witness.len(),
                            );
                            SatVerdict::Violated {
                                witness,
                                minimized: true,
                                explanation,
                            }
                        } else {
                            let explanation = format!(
                                "no {model} order exists; final conflict clause touches {}",
                                encode::txn_list(&seed),
                            );
                            SatVerdict::Violated {
                                witness: seed,
                                minimized: false,
                                explanation,
                            }
                        }
                    }
                }
            }
        }
    };

    stats.elapsed = start.elapsed();
    SatReport { verdict, stats }
}

/// Which transaction (index into `sys.txns`) an event belongs to.
fn event_txn(sys: &encode::System, event: u32) -> u32 {
    match sys.model {
        SatModel::Serializable => event,
        SatModel::SnapshotIsolation => event / 2,
    }
}

/// Decode a transitive event order into a transaction order: under SI,
/// commit events carry the serialization; begins only place snapshots.
fn decode_order(sys: &encode::System, events: &[u32]) -> Vec<TxnId> {
    match sys.model {
        SatModel::Serializable => events.iter().map(|&e| sys.txns[e as usize]).collect(),
        SatModel::SnapshotIsolation => events
            .iter()
            .filter(|&&e| e % 2 == 1)
            .map(|&e| sys.txns[(e / 2) as usize])
            .collect(),
    }
}

/// Build the sub-history over `keep` (ascending original ids),
/// preserving everything else about each transaction. Ids are
/// re-assigned by position; `keep[i]` is sub-id `i`. Public for the
/// differential suites, which delta-debug disagreements over it.
pub fn sub_history(history: &History, keep: &[TxnId]) -> History {
    History::from_txns(keep.iter().map(|&id| history.get(id).clone()).collect())
}

/// One minimization probe: is the sub-history over `keep` still
/// refutable *by the solver* (not merely by a pre-check artifact of
/// the removal, e.g. a read whose writer was dropped)?
fn probe_unsat(history: &History, model: SatModel, keep: &[TxnId], stats: &mut SatStats) -> bool {
    let sub = sub_history(history, keep);
    stats.minimize_solves += 1;
    match encode::encode(&sub, model, None) {
        encode::Encoded::System(sys) => {
            let solved = order::solve_order(sys.n_events, &sys.clauses, 100_000, 100);
            matches!(solved.outcome, order::Outcome::Unsat)
        }
        _ => false,
    }
}

/// Delta-debug an UNSAT verdict to a 1-minimal witness: ddmin over the
/// included transactions, accepting a removal only when the remaining
/// sub-history is still solver-refutable on its own. The result is a
/// self-contained counterexample — checking just those transactions
/// reproduces the violation.
fn minimize(
    history: &History,
    model: SatModel,
    mut current: Vec<TxnId>,
    opts: &SatOptions,
    stats: &mut SatStats,
) -> Vec<TxnId> {
    let mut granularity = 2usize;
    while current.len() >= 2 && stats.minimize_solves < opts.minimize_solve_cap {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && stats.minimize_solves < opts.minimize_solve_cap {
            let end = (start + chunk).min(current.len());
            let mut candidate: Vec<TxnId> = current[..start].to_vec();
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && probe_unsat(history, model, &candidate, stats) {
                current = candidate;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            granularity = granularity.saturating_sub(1).max(2);
        } else if granularity >= current.len() {
            break;
        } else {
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Replay `order` as a serial execution and verify every observed read
/// of every transaction in it. This is an *independent* soundness
/// check on [`SatVerdict::Satisfiable`] serializability verdicts: the
/// decoded order must reproduce each observed value exactly.
pub fn verify_serial_order(history: &History, order: &[TxnId]) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut lists: FxHashMap<elle_history::Key, Vec<elle_history::Elem>> = FxHashMap::default();
    let mut regs: FxHashMap<elle_history::Key, Option<elle_history::Elem>> = FxHashMap::default();
    let mut sets: FxHashMap<elle_history::Key, BTreeSet<elle_history::Elem>> = FxHashMap::default();
    for &id in order {
        let t = history.get(id);
        for m in &t.mops {
            match m {
                Mop::Append { key, elem } => lists.entry(*key).or_default().push(*elem),
                Mop::Write { key, elem } => {
                    regs.insert(*key, Some(*elem));
                }
                Mop::AddToSet { key, elem } => {
                    sets.entry(*key).or_default().insert(*elem);
                }
                Mop::Increment { .. } => {
                    return Err("serial replay does not cover counters".to_string())
                }
                Mop::Read { value: None, .. } => {}
                Mop::Read {
                    key,
                    value: Some(v),
                } => {
                    if !t.status.is_committed() {
                        continue;
                    }
                    match v {
                        ReadValue::List(obs) => {
                            let state = lists.entry(*key).or_default();
                            if state != obs {
                                return Err(format!(
                                    "T{} read {key} as {obs:?} but serial state is {state:?}",
                                    id.0
                                ));
                            }
                        }
                        ReadValue::Register(obs) => {
                            let state = regs.entry(*key).or_default();
                            if state != obs {
                                return Err(format!(
                                    "T{} read register {key} mismatching serial state",
                                    id.0
                                ));
                            }
                        }
                        ReadValue::Set(obs) => {
                            let state = sets.entry(*key).or_default();
                            if state != obs {
                                return Err(format!(
                                    "T{} read set {key} mismatching serial state",
                                    id.0
                                ));
                            }
                        }
                        ReadValue::Counter(_) => {
                            return Err("serial replay does not cover counters".to_string())
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    fn ser(h: &History) -> SatReport {
        check(h, SatModel::Serializable, &SatOptions::default())
    }

    fn si(h: &History) -> SatReport {
        check(h, SatModel::SnapshotIsolation, &SatOptions::default())
    }

    /// The paper's §7.1 G-single trio (the TiDB case study shape):
    /// T2 misses T3's append yet a later read places T3 before T2.
    fn g_single_history() -> History {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(34, 2).commit();
        b.txn(1).append(34, 1).commit();
        b.txn(2)
            .read_list(34, [2, 1])
            .append(36, 5)
            .append(34, 4)
            .commit();
        b.txn(3).append(34, 5).commit();
        b.txn(4).read_list(34, [2, 1, 5, 4]).commit();
        b.build()
    }

    #[test]
    fn clean_list_history_is_satisfiable_both_models() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let h = b.build();
        for model in [SatModel::Serializable, SatModel::SnapshotIsolation] {
            let r = check(&h, model, &SatOptions::default());
            let SatVerdict::Satisfiable { order } = &r.verdict else {
                panic!("{model}: expected satisfiable, got {:?}", r.verdict);
            };
            assert_eq!(order.len(), 3);
            verify_serial_order(&h, order).expect("decoded order must replay");
        }
    }

    #[test]
    fn g_single_violates_both_models() {
        let h = g_single_history();
        for r in [ser(&h), si(&h)] {
            let SatVerdict::Violated {
                witness, minimized, ..
            } = &r.verdict
            else {
                panic!("expected violated, got {:?}", r.verdict);
            };
            assert!(*minimized);
            // The core is T2 (missed T3's append) plus T3 plus the read
            // T4 that pins T3 before T2 — context included, never more
            // than the five transactions of the trio.
            assert!(witness.len() <= 5, "witness too large: {witness:?}");
            assert!(witness.contains(&TxnId(2)) && witness.contains(&TxnId(3)));
        }
    }

    #[test]
    fn register_write_skew_splits_the_models() {
        // Classic A5B: both read both registers' initial state, each
        // blind-writes one. No serial order; fine under SI.
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .read_register(1, None)
            .read_register(2, None)
            .write(1, 10)
            .commit();
        b.txn(1)
            .read_register(1, None)
            .read_register(2, None)
            .write(2, 20)
            .commit();
        b.txn(2)
            .read_register(1, Some(10))
            .read_register(2, Some(20))
            .commit();
        let h = b.build();
        assert!(
            ser(&h).verdict.is_violated(),
            "write skew has no serial order"
        );
        assert!(si(&h).verdict.is_satisfiable(), "SI admits write skew");
    }

    #[test]
    fn lost_update_violates_si_too() {
        // Both writers read nil then write the same register:
        // first-committer-wins forbids both commits.
        let mut b = HistoryBuilder::new();
        b.txn(0).read_register(7, None).write(7, 1).commit();
        b.txn(1).read_register(7, None).write(7, 2).commit();
        b.txn(2).read_register(7, Some(2)).commit();
        let h = b.build();
        assert!(ser(&h).verdict.is_violated());
        assert!(si(&h).verdict.is_violated());
    }

    #[test]
    fn long_fork_shows_the_completeness_gap() {
        // Two reads observe T0 and T1 in opposite orders: under SI
        // snapshots are commit-order prefixes, so this "long fork" is
        // forbidden — but the cycle engine only finds G2-item here
        // (which SI tolerates, so it calls the history SI-clean). SAT
        // is strictly stronger.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(2, 2).commit();
        b.txn(2).read_list(1, [1]).read_list(2, []).commit();
        b.txn(3).read_list(2, [2]).read_list(1, []).commit();
        let h = b.build();
        assert!(ser(&h).verdict.is_violated());
        assert!(si(&h).verdict.is_violated(), "long fork is not SI");
        // The cycle engine misses it under SI:
        let cyc = Checker::new(CheckOptions::snapshot_isolation()).check(&h);
        assert!(cyc.ok(), "cycle engine is blind to long fork under SI");
    }

    #[test]
    fn aborted_read_refutes_with_both_culprits() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(5, 1).abort();
        b.txn(1).read_list(5, [1]).commit();
        let h = b.build();
        let r = ser(&h);
        let SatVerdict::Violated {
            witness,
            explanation,
            ..
        } = &r.verdict
        else {
            panic!("expected violated, got {:?}", r.verdict);
        };
        assert_eq!(witness, &vec![TxnId(0), TxnId(1)]);
        assert!(explanation.contains("G1a"), "{explanation}");
    }

    #[test]
    fn intermediate_list_read_refutes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(3, 1).append(3, 2).commit();
        b.txn(1).read_list(3, [1]).commit();
        let h = b.build();
        let r = si(&h);
        assert!(r.verdict.is_violated(), "torn block: {:?}", r.verdict);
    }

    #[test]
    fn observed_indeterminate_writer_is_included() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(9, 1).indeterminate();
        b.txn(1).read_list(9, [1]).commit();
        let h = b.build();
        let r = ser(&h);
        let SatVerdict::Satisfiable { order } = &r.verdict else {
            panic!("expected satisfiable, got {:?}", r.verdict);
        };
        assert_eq!(order.len(), 2, "indeterminate writer must be placed");
        assert_eq!(order, &vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn counters_are_unsupported() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 1).commit();
        b.txn(1).read_counter(1, 1).commit();
        let h = b.build();
        assert!(matches!(ser(&h).verdict, SatVerdict::Unsupported { .. }));
    }

    #[test]
    fn witness_is_minimal_amid_clean_noise() {
        // A lost-update core buried in unrelated clean transactions:
        // the witness must name only the core.
        let mut b = HistoryBuilder::new();
        for i in 0..8u64 {
            let k = 100 + i;
            b.txn(i as u32).append(k, 1).read_list(k, [1]).commit();
        }
        b.txn(20).read_register(7, None).write(7, 1).commit();
        b.txn(21).read_register(7, None).write(7, 2).commit();
        b.txn(22).read_register(7, Some(2)).commit();
        let h = b.build();
        let r = ser(&h);
        let SatVerdict::Violated {
            witness, minimized, ..
        } = &r.verdict
        else {
            panic!("expected violated, got {:?}", r.verdict);
        };
        assert!(*minimized);
        assert!(
            witness.iter().all(|t| t.0 >= 8),
            "clean noise leaked into witness: {witness:?}"
        );
        assert!(witness.len() <= 3, "not minimal: {witness:?}");
        // And the witness certifies itself: its sub-history alone is
        // still violated.
        let sub = sub_history(&h, witness);
        assert!(ser(&sub).verdict.is_violated());
    }

    #[test]
    fn si_satisfiable_order_interleaves_commits_legally() {
        let h = {
            let mut b = HistoryBuilder::new();
            b.txn(0).append(1, 1).commit();
            b.txn(1).read_list(1, [1]).append(2, 2).commit();
            b.txn(2).read_list(1, [1]).read_list(2, [2]).commit();
            b.build()
        };
        let r = si(&h);
        let SatVerdict::Satisfiable { order } = &r.verdict else {
            panic!("{:?}", r.verdict);
        };
        assert_eq!(order.len(), 3);
    }
}
