//! Property tests for the history model: serde round-trips and
//! event-log pairing.

use elle_history::{
    history_from_json, history_to_json, EventKind, EventLog, History, Mop, ProcessId, ReadValue,
    TxnStatus,
};
use proptest::prelude::*;

fn arb_read_value() -> impl Strategy<Value = ReadValue> {
    prop_oneof![
        prop::collection::vec(0u64..50, 0..6).prop_map(ReadValue::list),
        prop::option::of(0u64..50).prop_map(|v| ReadValue::Register(v.map(elle_history::Elem))),
        (-20i64..20).prop_map(ReadValue::Counter),
        prop::collection::btree_set(0u64..50, 0..6).prop_map(|s| ReadValue::set(s.into_iter())),
    ]
}

fn arb_mop() -> impl Strategy<Value = Mop> {
    prop_oneof![
        (0u64..10, 0u64..100).prop_map(|(k, e)| Mop::append(k, e)),
        (0u64..10, 0u64..100).prop_map(|(k, e)| Mop::write(k, e)),
        (0u64..10, -5i64..5).prop_map(|(k, a)| Mop::increment(k, a)),
        (0u64..10, 0u64..100).prop_map(|(k, e)| Mop::add_to_set(k, e)),
        (0u64..10).prop_map(Mop::read),
        (0u64..10, arb_read_value()).prop_map(|(k, v)| Mop::Read {
            key: elle_history::Key(k),
            value: Some(v)
        }),
    ]
}

fn arb_txn() -> impl Strategy<Value = (u32, Vec<Mop>, TxnStatus)> {
    (
        0u32..6,
        prop::collection::vec(arb_mop(), 1..8),
        prop_oneof![
            Just(TxnStatus::Committed),
            Just(TxnStatus::Aborted),
            Just(TxnStatus::Indeterminate),
        ],
    )
}

fn build(txns: Vec<(u32, Vec<Mop>, TxnStatus)>) -> History {
    let mut b = elle_history::HistoryBuilder::new();
    for (p, mops, status) in txns {
        let mut t = b.txn(p);
        for m in mops {
            t = t.mop(m);
        }
        match status {
            TxnStatus::Committed => t.commit(),
            TxnStatus::Aborted => t.abort(),
            TxnStatus::Indeterminate => t.indeterminate(),
        };
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn history_json_round_trips(txns in prop::collection::vec(arb_txn(), 0..20)) {
        let h = build(txns);
        let json = history_to_json(&h);
        let back = history_from_json(&json).unwrap();
        prop_assert_eq!(h, back);
    }

    /// Building an event log from transactions and pairing it recovers the
    /// transactions.
    #[test]
    fn pairing_round_trips(txns in prop::collection::vec(arb_txn(), 0..20)) {
        // One process at a time (sequential log), statuses preserved.
        let mut log = EventLog::new();
        for (i, (_, mops, status)) in txns.iter().enumerate() {
            let p = ProcessId(i as u32); // distinct processes: no overlap rules
            let inv: Vec<Mop> = mops.iter().map(Mop::to_invocation).collect();
            log.push(p, EventKind::Invoke, inv.clone());
            match status {
                TxnStatus::Committed => log.push(p, EventKind::Ok, mops.clone()),
                TxnStatus::Aborted => log.push(p, EventKind::Fail, inv),
                TxnStatus::Indeterminate => log.push(p, EventKind::Info, inv),
            };
        }
        let h = log.pair().unwrap();
        prop_assert_eq!(h.len(), txns.len());
        for (t, (_, mops, status)) in h.txns().iter().zip(&txns) {
            prop_assert_eq!(&t.status, status);
            if *status == TxnStatus::Committed {
                prop_assert_eq!(&t.mops, mops);
            }
        }
    }

    /// Display/notation never panics and always names the transaction.
    #[test]
    fn notation_total(txns in prop::collection::vec(arb_txn(), 1..8)) {
        let h = build(txns);
        for t in h.txns() {
            let s = t.to_notation();
            prop_assert!(s.starts_with('T'));
        }
        let _ = format!("{h}");
    }
}
