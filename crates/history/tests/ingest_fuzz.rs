//! Fuzz the NDJSON ingest pipeline with wire-level damage: truncation,
//! bit flips, swapped (re-ordered) lines, interleaved producers, and
//! mid-line split delivery. The properties under test:
//!
//! * no damaged input ever panics the decoder or the pairer, under
//!   either recovery policy;
//! * strict mode's abort and quarantine mode's diagnostics carry the
//!   *exact* line number and byte offset of the damage;
//! * quarantine mode always produces a history, and chunked delivery
//!   is byte-for-byte equivalent to one-shot delivery.

use elle_history::{
    events_from_ndjson_with, events_to_ndjson, EventKind, EventLog, IngestCause, Mop,
    NdjsonIngestor, ProcessId, RecoveryPolicy,
};
use proptest::prelude::*;

/// Drive a per-process state machine so the stream is always valid:
/// each step either opens an invocation on a process or closes the one
/// it has open. Leftover opens are legal (indeterminate transactions).
fn build_log(steps: &[(u32, u8)]) -> EventLog {
    let mut log = EventLog::new();
    let mut open: std::collections::HashMap<u32, Vec<Mop>> = Default::default();
    let mut elem = 0u64;
    for &(p, flavor) in steps {
        match open.remove(&p) {
            None => {
                let mops = match flavor % 3 {
                    0 => vec![Mop::read(u64::from(p) % 4)],
                    1 => {
                        elem += 1;
                        vec![Mop::append(u64::from(p) % 4, elem)]
                    }
                    _ => {
                        elem += 1;
                        vec![Mop::append(3, elem), Mop::read(1)]
                    }
                };
                log.push(ProcessId(p), EventKind::Invoke, mops.clone());
                open.insert(p, mops);
            }
            Some(mops) => {
                let kind = match flavor % 3 {
                    0 => EventKind::Ok,
                    1 => EventKind::Fail,
                    _ => EventKind::Info,
                };
                let completed = mops
                    .iter()
                    .map(|m| match m {
                        Mop::Read { key, .. } => Mop::read_list(key.0, []),
                        other => other.clone(),
                    })
                    .collect();
                log.push(ProcessId(p), kind, completed);
            }
        }
    }
    log
}

fn arb_steps() -> impl Strategy<Value = Vec<(u32, u8)>> {
    prop::collection::vec((0u32..3, 0u8..=255), 4..40)
}

/// Byte offset where 1-based line `line` starts.
fn line_start(wire: &str, line: usize) -> usize {
    wire.split_inclusive('\n')
        .take(line - 1)
        .map(str::len)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncation (a torn final write) never panics; any error or
    /// diagnostic lands exactly on the cut line.
    #[test]
    fn truncation_is_localized_to_the_cut_line(steps in arb_steps(), cut_seed in 0usize..1 << 20) {
        let wire = events_to_ndjson(&build_log(&steps));
        let cut = cut_seed % wire.len().max(1);
        let torn = &wire[..cut];
        let cut_line = torn.matches('\n').count() + 1;

        // Decode-only layer, both policies.
        match events_from_ndjson_with(torn, RecoveryPolicy::Strict) {
            Ok((_, diags)) => prop_assert!(diags.is_empty()),
            Err(e) => {
                prop_assert_eq!(e.pos.line, cut_line);
                prop_assert_eq!(e.pos.byte, line_start(torn, cut_line));
                prop_assert!(matches!(e.cause, IngestCause::Decode { .. }));
            }
        }
        let (_, diags) = events_from_ndjson_with(torn, RecoveryPolicy::Quarantine).unwrap();
        prop_assert!(diags.len() <= 1, "a single cut damages at most one line");
        for d in &diags {
            prop_assert_eq!(d.error.pos.line, cut_line);
        }

        // Full pipeline (pairing included) must also survive.
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(torn).unwrap();
        let (h, _) = ing.finish();
        prop_assert!(h.len() <= build_log(&steps).pair().unwrap().len());
    }

    /// A single flipped bit never panics either policy; quarantine
    /// always yields a history and positioned diagnostics.
    #[test]
    fn bit_flips_never_panic(steps in arb_steps(), at in 0usize..1 << 20, bit in 0u8..8) {
        let wire = events_to_ndjson(&build_log(&steps));
        let mut bytes = wire.clone().into_bytes();
        let i = at % bytes.len().max(1);
        bytes[i] ^= 1 << bit;
        let flipped = String::from_utf8_lossy(&bytes).into_owned();
        let n_lines = flipped.split_inclusive('\n').count();

        let _ = events_from_ndjson_with(&flipped, RecoveryPolicy::Strict);
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&flipped).unwrap();
        for d in ing.diagnostics() {
            prop_assert!(d.error.pos.line >= 1 && d.error.pos.line <= n_lines);
        }
        let (_, _) = ing.finish();

        let mut strict = NdjsonIngestor::new(RecoveryPolicy::Strict);
        let _ = strict.feed_str(&flipped);
    }

    /// Swapping two lines (re-ordered delivery) quarantines exactly the
    /// lines whose indices regressed — positions a+1..=b — as ordering
    /// violations at the decode layer.
    #[test]
    fn swapped_lines_quarantine_exactly_the_regressed_span(
        steps in arb_steps(),
        a_seed in 0usize..1 << 20,
        b_seed in 0usize..1 << 20,
    ) {
        let wire = events_to_ndjson(&build_log(&steps));
        let mut lines: Vec<&str> = wire.lines().collect();
        let n = lines.len();
        if n < 2 {
            return Ok(());
        }
        let a = a_seed % (n - 1);
        let b = a + 1 + b_seed % (n - a - 1);
        lines.swap(a, b);
        let swapped = lines.join("\n");

        let (log, diags) =
            events_from_ndjson_with(&swapped, RecoveryPolicy::Quarantine).unwrap();
        prop_assert_eq!(diags.len(), b - a, "one diagnostic per regressed line");
        for (k, d) in diags.iter().enumerate() {
            prop_assert_eq!(d.error.pos.line, a + 2 + k, "1-based lines a+1..=b");
            prop_assert_eq!(d.error.pos.byte, line_start(&swapped, a + 2 + k));
            prop_assert!(matches!(d.error.cause, IngestCause::Ordering { .. }));
        }
        // What survives is strictly increasing, so it pairs or
        // quarantines cleanly — never panics.
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&swapped).unwrap();
        prop_assert!(log.events().windows(2).all(|w| w[0].index < w[1].index));
    }

    /// Two producers interleaved into one file: quarantine recovers a
    /// strictly-increasing subsequence without panicking.
    #[test]
    fn interleaved_producers_never_panic(s1 in arb_steps(), s2 in arb_steps()) {
        let w1 = events_to_ndjson(&build_log(&s1));
        let w2 = events_to_ndjson(&build_log(&s2));
        let mut merged = String::new();
        let (mut i1, mut i2) = (w1.split_inclusive('\n'), w2.split_inclusive('\n'));
        loop {
            match (i1.next(), i2.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(l) = a {
                        merged.push_str(l);
                    }
                    if let Some(l) = b {
                        merged.push_str(l);
                    }
                }
            }
        }
        let (log, _) = events_from_ndjson_with(&merged, RecoveryPolicy::Quarantine).unwrap();
        prop_assert!(log.events().windows(2).all(|w| w[0].index < w[1].index));
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_str(&merged).unwrap();
        let _ = ing.finish();
    }

    /// Mid-line split delivery (a tail -f reader seeing partial writes,
    /// reassembling at newlines) is equivalent to one-shot delivery:
    /// same history, same diagnostics, same positions.
    #[test]
    fn chunked_delivery_equals_one_shot(steps in arb_steps(), chunk in 1usize..64) {
        let wire = events_to_ndjson(&build_log(&steps));

        let mut oneshot = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        oneshot.feed_str(&wire).unwrap();

        let mut chunked = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        let bytes = wire.as_bytes();
        let mut buf = String::new();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            // The wire is ASCII (serde_json escapes non-ASCII), so any
            // byte split is a char split.
            buf.push_str(std::str::from_utf8(&bytes[i..end]).unwrap());
            while let Some(nl) = buf.find('\n') {
                let line: String = buf.drain(..=nl).collect();
                chunked.feed_line(&line).unwrap();
            }
            i = end;
        }
        if !buf.is_empty() {
            chunked.feed_line(&buf).unwrap();
        }

        let (h1, d1) = oneshot.finish();
        let (h2, d2) = chunked.finish();
        prop_assert_eq!(h1, h2);
        prop_assert_eq!(d1, d2);
    }
}
