//! Pairing invocations with completions to produce a [`History`].
//!
//! Jepsen semantics: a process has at most one outstanding invocation. An
//! `Ok`/`Fail`/`Info` event on the same process completes it. A process with
//! an open invocation at the end of the log yields an indeterminate
//! transaction (we never saw its outcome).

use crate::ingest::{Diagnostic, IngestError, Recovered, RecoveryPolicy, SourcePos};
use crate::{Event, EventKind, EventLog, History, Mop, ProcessId, Transaction, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use std::fmt;

/// Why an event log failed to pair into a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairingError {
    /// An event arrived with an index not greater than its predecessor's
    /// (streaming ingestion requires the real-time order up front).
    NonMonotonicIndex {
        /// Index of the offending event.
        index: usize,
    },
    /// A completion arrived for a process with no outstanding invocation.
    CompletionWithoutInvoke {
        /// Index of the offending event.
        index: usize,
        /// Process involved.
        process: ProcessId,
    },
    /// A second invocation arrived while one was outstanding.
    OverlappingInvoke {
        /// Index of the offending event.
        index: usize,
        /// Process involved.
        process: ProcessId,
    },
    /// A completion's micro-operations do not match its invocation
    /// (different count, or incompatible operations).
    MismatchedMops {
        /// Index of the offending completion.
        index: usize,
        /// Process involved.
        process: ProcessId,
    },
}

impl fmt::Display for PairingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairingError::NonMonotonicIndex { index } => write!(
                f,
                "event {index}: index is not greater than the previous event's"
            ),
            PairingError::CompletionWithoutInvoke { index, process } => write!(
                f,
                "event {index}: completion on {process} without an outstanding invocation"
            ),
            PairingError::OverlappingInvoke { index, process } => write!(
                f,
                "event {index}: invocation on {process} while another is outstanding"
            ),
            PairingError::MismatchedMops { index, process } => write!(
                f,
                "event {index}: completion on {process} does not match its invocation"
            ),
        }
    }
}

impl std::error::Error for PairingError {}

/// Is `completion` a plausible completion of `invocation`?
///
/// This is the observed-operation compatibility of §4.2.2, restricted to
/// what the client itself recorded: same operation type, key, and argument;
/// reads may gain a value.
fn mops_compatible(invocation: &[Mop], completion: &[Mop]) -> bool {
    invocation.len() == completion.len()
        && invocation
            .iter()
            .zip(completion)
            .all(|(i, c)| *i == c.to_invocation())
}

impl EventLog {
    /// Pair invocations with completions, producing a [`History`].
    ///
    /// Transactions are ordered by invocation index. Open invocations at the
    /// end of the log become [`TxnStatus::Indeterminate`] transactions with
    /// no completion index.
    pub fn pair(&self) -> Result<History, PairingError> {
        let mut open: FxHashMap<ProcessId, &Event> = FxHashMap::default();
        let mut txns: Vec<Transaction> = Vec::with_capacity(self.len() / 2 + 1);

        for ev in self.events() {
            match ev.kind {
                EventKind::Invoke => {
                    if open.insert(ev.process, ev).is_some() {
                        return Err(PairingError::OverlappingInvoke {
                            index: ev.index,
                            process: ev.process,
                        });
                    }
                }
                EventKind::Ok | EventKind::Fail | EventKind::Info => {
                    let inv =
                        open.remove(&ev.process)
                            .ok_or(PairingError::CompletionWithoutInvoke {
                                index: ev.index,
                                process: ev.process,
                            })?;
                    if !mops_compatible(&inv.mops, &ev.mops) {
                        return Err(PairingError::MismatchedMops {
                            index: ev.index,
                            process: ev.process,
                        });
                    }
                    let status = match ev.kind {
                        EventKind::Ok => TxnStatus::Committed,
                        EventKind::Fail => TxnStatus::Aborted,
                        _ => TxnStatus::Indeterminate,
                    };
                    // Database-exposed timestamps travel on the events:
                    // start on the invocation, commit on an Ok completion.
                    let timestamps = match (inv.time_ns, ev.time_ns, ev.kind) {
                        (Some(s), Some(c), EventKind::Ok) => Some((s, c)),
                        _ => None,
                    };
                    txns.push(Transaction {
                        id: TxnId(0), // re-assigned below
                        process: ev.process,
                        mops: ev.mops.clone(),
                        status,
                        invoke_index: inv.index,
                        complete_index: Some(ev.index),
                        timestamps,
                    });
                }
            }
        }

        // Open invocations: outcome never observed.
        for (process, inv) in open {
            txns.push(Transaction {
                id: TxnId(0),
                process,
                mops: inv.mops.clone(),
                status: TxnStatus::Indeterminate,
                invoke_index: inv.index,
                complete_index: None,
                timestamps: None,
            });
        }

        txns.sort_by_key(|t| t.invoke_index);
        Ok(History::from_txns(txns))
    }

    /// Pair under a [`RecoveryPolicy`]. `Strict` behaves like
    /// [`EventLog::pair`] but returns a positioned [`IngestError`];
    /// `Quarantine` repairs pairing violations per the ladder documented
    /// on [`crate::ingest`] and records one [`Diagnostic`] each.
    ///
    /// For in-memory logs the diagnostic position is the 1-based event
    /// position in the log (byte 0): there is no wire to point into.
    pub fn pair_with(
        &self,
        policy: RecoveryPolicy,
    ) -> Result<(History, Vec<Diagnostic>), IngestError> {
        let mut pairer = StreamingPairer::new();
        let mut diagnostics = Vec::new();
        for (i, ev) in self.events().iter().enumerate() {
            let pos = SourcePos {
                line: i + 1,
                byte: 0,
            };
            match pairer.feed_with(ev, policy) {
                Ok(recovered) => {
                    if let Some(d) = recovered.diagnostic(pos) {
                        diagnostics.push(d);
                    }
                }
                Err(e) => return Err(IngestError::from_pairing(pos, e)),
            }
        }
        Ok((pairer.into_history(), diagnostics))
    }
}

/// What one fed event did to the paired history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// A new (still open, hence indeterminate) transaction was appended.
    Invoked(TxnId),
    /// An open transaction was resolved in place: its micro-ops gained
    /// observed read values and its status/completion were recorded.
    Completed(TxnId),
}

/// Incremental pairing: the streaming counterpart of [`EventLog::pair`].
///
/// Feed events in real-time order; after any prefix, [`StreamingPairer::history`]
/// equals `EventLog::pair` run on that prefix — same transactions, same
/// ids, byte for byte. This holds because transaction ids are assigned
/// by invocation rank: events arrive in index order, so an open
/// invocation's rank (and therefore its id) never changes when later
/// events arrive, and a completion only mutates its own transaction in
/// place.
///
/// This is the frontier the `elle-stream` checker carries: the only
/// state besides the paired history itself is the open-invocation table,
/// so raw events can be dropped as soon as they are fed.
#[derive(Debug, Default)]
pub struct StreamingPairer {
    history: History,
    /// Open invocation per process: transaction id + invoke timestamp.
    open: FxHashMap<ProcessId, (TxnId, Option<u64>)>,
    last_index: Option<usize>,
}

impl StreamingPairer {
    /// An empty pairer.
    pub fn new() -> StreamingPairer {
        StreamingPairer::default()
    }

    /// An empty pairer whose history starts at retirement watermark
    /// `base`: the first invocation fed gets `TxnId(base)`. This is the
    /// recovery entry point for a windowed checker replaying only its
    /// retained suffix.
    pub fn with_base(base: u32) -> StreamingPairer {
        StreamingPairer {
            history: History::with_base(base),
            ..StreamingPairer::default()
        }
    }

    /// Retire every transaction with id below `r` from the paired
    /// history (see [`History::retire_prefix`]). Open invocations are
    /// never retired — the windowed checker clamps its watermark below
    /// the oldest open id — so the open table is untouched.
    pub fn retire_prefix(&mut self, r: u32) {
        debug_assert!(self.open.values().all(|&(id, _)| id.0 >= r));
        self.history.retire_prefix(r);
    }

    /// The paired history so far. Open invocations appear as
    /// indeterminate transactions with no completion index — exactly as
    /// [`EventLog::pair`] renders them at history end.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Number of invocations currently awaiting completion.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// The open invocations: `(process, txn, invoke timestamp)` — the
    /// extra state a crash-recovery path needs to reconstruct a pairer
    /// from its paired history (open transactions don't carry their
    /// invoke timestamp until they commit).
    pub fn open_entries(&self) -> Vec<(ProcessId, TxnId, Option<u64>)> {
        let mut entries: Vec<(ProcessId, TxnId, Option<u64>)> = self
            .open
            .iter()
            .map(|(&p, &(id, ts))| (p, id, ts))
            .collect();
        entries.sort_by_key(|&(_, id, _)| id);
        entries
    }

    /// Feed the next event.
    pub fn feed(&mut self, ev: &Event) -> Result<Ingest, PairingError> {
        if self.last_index.is_some_and(|last| ev.index <= last) {
            return Err(PairingError::NonMonotonicIndex { index: ev.index });
        }
        self.last_index = Some(ev.index);
        match ev.kind {
            EventKind::Invoke => {
                let id = TxnId(self.history.len() as u32);
                if self.open.contains_key(&ev.process) {
                    return Err(PairingError::OverlappingInvoke {
                        index: ev.index,
                        process: ev.process,
                    });
                }
                self.open.insert(ev.process, (id, ev.time_ns));
                self.history.txns_mut().push(Transaction {
                    id,
                    process: ev.process,
                    mops: ev.mops.clone(),
                    status: TxnStatus::Indeterminate,
                    invoke_index: ev.index,
                    complete_index: None,
                    timestamps: None,
                });
                Ok(Ingest::Invoked(id))
            }
            EventKind::Ok | EventKind::Fail | EventKind::Info => {
                let (id, invoke_ts) =
                    self.open
                        .remove(&ev.process)
                        .ok_or(PairingError::CompletionWithoutInvoke {
                            index: ev.index,
                            process: ev.process,
                        })?;
                let txn = self.history.get_mut(id);
                if !mops_compatible(&txn.mops, &ev.mops) {
                    // Restore the open entry: the caller may recover.
                    self.open.insert(ev.process, (id, invoke_ts));
                    return Err(PairingError::MismatchedMops {
                        index: ev.index,
                        process: ev.process,
                    });
                }
                txn.status = match ev.kind {
                    EventKind::Ok => TxnStatus::Committed,
                    EventKind::Fail => TxnStatus::Aborted,
                    _ => TxnStatus::Indeterminate,
                };
                txn.mops = ev.mops.clone();
                txn.complete_index = Some(ev.index);
                txn.timestamps = match (invoke_ts, ev.time_ns, ev.kind) {
                    (Some(s), Some(c), EventKind::Ok) => Some((s, c)),
                    _ => None,
                };
                Ok(Ingest::Completed(id))
            }
        }
    }

    /// Feed the next event under a [`RecoveryPolicy`].
    ///
    /// `Strict` is exactly [`StreamingPairer::feed`]. `Quarantine` turns
    /// each pairing violation into a repair (see [`crate::ingest`] for
    /// the soundness ladder) and reports what it did via [`Recovered`]:
    ///
    /// * late/duplicate event → [`Recovered::Skipped`]
    /// * orphan completion → [`Recovered::Adopted`] point-interval txn
    /// * overlapping invocation → [`Recovered::Abandoned`]: the open
    ///   txn stays indeterminate, the new invocation is admitted
    /// * mismatched completion → [`Recovered::Skipped`], invocation
    ///   stays open
    pub fn feed_with(
        &mut self,
        ev: &Event,
        policy: RecoveryPolicy,
    ) -> Result<Recovered, PairingError> {
        let err = match self.feed(ev) {
            Ok(i) => return Ok(Recovered::Ingested(i)),
            Err(e) => e,
        };
        if policy == RecoveryPolicy::Strict {
            return Err(err);
        }
        match err {
            // The event is from the past: a duplicate delivery (already
            // ingested — dropping it is exact) or a reordered one
            // (degrades to loss of this event).
            PairingError::NonMonotonicIndex { .. } => Ok(Recovered::Skipped(err)),
            // The completion can't be matched to what this process
            // invoked; drop it and let the invocation end indeterminate.
            PairingError::MismatchedMops { .. } => Ok(Recovered::Skipped(err)),
            // The invocation was lost. Adopt the completion as a
            // point-interval transaction: every micro-op it carries was
            // observed by the client, so data flow is exact — only the
            // real-time interval collapses.
            PairingError::CompletionWithoutInvoke { .. } => {
                // `feed` advanced `last_index` before failing, so the
                // event must be admitted inline, not re-fed.
                let id = TxnId(self.history.len() as u32);
                self.history.txns_mut().push(Transaction {
                    id,
                    process: ev.process,
                    mops: ev.mops.clone(),
                    status: match ev.kind {
                        EventKind::Ok => TxnStatus::Committed,
                        EventKind::Fail => TxnStatus::Aborted,
                        _ => TxnStatus::Indeterminate,
                    },
                    invoke_index: ev.index,
                    complete_index: Some(ev.index),
                    timestamps: None,
                });
                Ok(Recovered::Adopted(id, err))
            }
            // The open invocation's completion was lost. Its history
            // record already says Indeterminate with no completion —
            // exactly right — so abandon it and admit the new one.
            PairingError::OverlappingInvoke { .. } => {
                // An overlap error implies an open entry; if it is ever
                // absent, degrade to dropping the event rather than
                // panicking on an ingest path.
                let Some((abandoned, _)) = self.open.remove(&ev.process) else {
                    return Ok(Recovered::Skipped(err));
                };
                let admitted = TxnId(self.history.len() as u32);
                self.open.insert(ev.process, (admitted, ev.time_ns));
                self.history.txns_mut().push(Transaction {
                    id: admitted,
                    process: ev.process,
                    mops: ev.mops.clone(),
                    status: TxnStatus::Indeterminate,
                    invoke_index: ev.index,
                    complete_index: None,
                    timestamps: None,
                });
                Ok(Recovered::Abandoned {
                    abandoned,
                    admitted,
                    cause: err,
                })
            }
        }
    }

    /// Consume the pairer, yielding the paired history.
    pub fn into_history(self) -> History {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EventLog {
        EventLog::new()
    }

    #[test]
    fn pairs_simple_ok() {
        let mut l = log();
        l.push(
            ProcessId(0),
            EventKind::Invoke,
            vec![Mop::append(1, 1), Mop::read(1)],
        );
        l.push(
            ProcessId(0),
            EventKind::Ok,
            vec![Mop::append(1, 1), Mop::read_list(1, [1])],
        );
        let h = l.pair().unwrap();
        assert_eq!(h.len(), 1);
        let t = h.get(TxnId(0));
        assert_eq!(t.status, TxnStatus::Committed);
        assert_eq!(t.invoke_index, 0);
        assert_eq!(t.complete_index, Some(1));
        assert_eq!(t.mops[1], Mop::read_list(1, [1]));
    }

    #[test]
    fn interleaved_processes() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(ProcessId(1), EventKind::Invoke, vec![Mop::append(1, 2)]);
        l.push(ProcessId(1), EventKind::Ok, vec![Mop::append(1, 2)]);
        l.push(ProcessId(0), EventKind::Fail, vec![Mop::append(1, 1)]);
        let h = l.pair().unwrap();
        assert_eq!(h.len(), 2);
        // Ordered by invocation.
        assert_eq!(h.get(TxnId(0)).process, ProcessId(0));
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Aborted);
        assert_eq!(h.get(TxnId(1)).process, ProcessId(1));
        assert_eq!(h.get(TxnId(1)).status, TxnStatus::Committed);
    }

    #[test]
    fn open_invocation_becomes_indeterminate() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        let h = l.pair().unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Indeterminate);
        assert_eq!(h.get(TxnId(0)).complete_index, None);
    }

    #[test]
    fn info_completion_is_indeterminate() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(ProcessId(0), EventKind::Info, vec![Mop::append(1, 1)]);
        let h = l.pair().unwrap();
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Indeterminate);
        assert_eq!(h.get(TxnId(0)).complete_index, Some(1));
    }

    #[test]
    fn rejects_completion_without_invoke() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Ok, vec![]);
        assert_eq!(
            l.pair().unwrap_err(),
            PairingError::CompletionWithoutInvoke {
                index: 0,
                process: ProcessId(0)
            }
        );
    }

    #[test]
    fn rejects_overlapping_invokes() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![]);
        l.push(ProcessId(0), EventKind::Invoke, vec![]);
        assert!(matches!(
            l.pair().unwrap_err(),
            PairingError::OverlappingInvoke { index: 1, .. }
        ));
    }

    #[test]
    fn rejects_mismatched_mops() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(ProcessId(0), EventKind::Ok, vec![Mop::append(1, 2)]);
        assert!(matches!(
            l.pair().unwrap_err(),
            PairingError::MismatchedMops { index: 1, .. }
        ));
    }

    #[test]
    fn mismatched_len_rejected() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(
            ProcessId(0),
            EventKind::Ok,
            vec![Mop::append(1, 1), Mop::read(1)],
        );
        assert!(matches!(
            l.pair().unwrap_err(),
            PairingError::MismatchedMops { .. }
        ));
    }

    #[test]
    fn reads_may_gain_values_but_not_change_key() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::read(1)]);
        l.push(ProcessId(0), EventKind::Ok, vec![Mop::read_list(2, [1])]);
        assert!(matches!(
            l.pair().unwrap_err(),
            PairingError::MismatchedMops { .. }
        ));
    }

    #[test]
    fn error_display() {
        let e = PairingError::CompletionWithoutInvoke {
            index: 3,
            process: ProcessId(1),
        };
        assert!(e.to_string().contains("event 3"));
        let e = PairingError::NonMonotonicIndex { index: 4 };
        assert!(e.to_string().contains("event 4"));
    }

    /// The streaming-pairer contract: after feeding any prefix of an
    /// event log, `history()` equals `pair()` run on that prefix.
    #[test]
    fn streaming_pairer_matches_batch_on_every_prefix() {
        let mut l = log();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(ProcessId(1), EventKind::Invoke, vec![Mop::read(1)]);
        l.push(ProcessId(1), EventKind::Ok, vec![Mop::read_list(1, [1])]);
        l.push(ProcessId(0), EventKind::Fail, vec![Mop::append(1, 1)]);
        l.push(ProcessId(2), EventKind::Invoke, vec![Mop::append(1, 2)]);
        l.push(ProcessId(2), EventKind::Info, vec![Mop::append(1, 2)]);
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::read(1)]);

        let mut p = StreamingPairer::new();
        for (k, ev) in l.events().iter().enumerate() {
            p.feed(ev).expect("well-formed log");
            let prefix = EventLog::from_events(l.events()[..=k].to_vec()).unwrap();
            assert_eq!(p.history(), &prefix.pair().unwrap(), "prefix {k}");
        }
        assert_eq!(p.open_count(), 1);
    }

    #[test]
    fn streaming_pairer_rejects_what_batch_rejects() {
        let mut p = StreamingPairer::new();
        // Completion without invoke.
        let ev = Event {
            index: 0,
            process: ProcessId(0),
            kind: EventKind::Ok,
            mops: vec![],
            time_ns: None,
        };
        assert!(matches!(
            p.feed(&ev),
            Err(PairingError::CompletionWithoutInvoke { .. })
        ));
        // Overlapping invoke.
        let inv = Event {
            index: 1,
            process: ProcessId(0),
            kind: EventKind::Invoke,
            mops: vec![Mop::append(1, 1)],
            time_ns: None,
        };
        p.feed(&inv).unwrap();
        let inv2 = Event {
            index: 2,
            ..inv.clone()
        };
        assert!(matches!(
            p.feed(&inv2),
            Err(PairingError::OverlappingInvoke { .. })
        ));
        // Mismatched mops leaves the invocation open.
        let bad_ok = Event {
            index: 3,
            process: ProcessId(0),
            kind: EventKind::Ok,
            mops: vec![Mop::append(1, 9)],
            time_ns: None,
        };
        assert!(matches!(
            p.feed(&bad_ok),
            Err(PairingError::MismatchedMops { .. })
        ));
        assert_eq!(p.open_count(), 1);
        // Non-monotonic index.
        let stale = Event {
            index: 3,
            process: ProcessId(1),
            kind: EventKind::Invoke,
            mops: vec![],
            time_ns: None,
        };
        assert!(matches!(
            p.feed(&stale),
            Err(PairingError::NonMonotonicIndex { .. })
        ));
    }

    #[test]
    fn streaming_pairer_carries_timestamps() {
        let mut p = StreamingPairer::new();
        let mut push = |index, kind, time_ns| {
            p.feed(&Event {
                index,
                process: ProcessId(0),
                kind,
                mops: vec![Mop::append(1, 1)],
                time_ns,
            })
            .unwrap()
        };
        push(0, EventKind::Invoke, Some(11));
        push(1, EventKind::Ok, Some(13));
        assert_eq!(p.history().get(TxnId(0)).timestamps, Some((11, 13)));
    }
}
