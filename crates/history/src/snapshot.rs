//! Crash-consistency codec for per-stream checkpoint files.
//!
//! A snapshot file is one JSON **meta** header line followed by the
//! accepted event sequence as NDJSON (the same wire format as
//! [`events_to_ndjson`](crate::events_to_ndjson), so the body is a
//! valid event stream on its own). `elle-serve` writes one per tenant:
//! the meta carries the counters a replay cannot recompute (epoch
//! ordinal, quarantine gauge, partial-epoch event count) plus the
//! sequence number of the append journal that continues where the
//! snapshot ends. Restart = parse snapshot → replay its events →
//! replay the journal with that sequence number; anything else on disk
//! is a torn rotation and is discarded.
//!
//! The rotation protocol that makes this crash-consistent:
//!
//! 1. write `snapshot.tmp` with `journal_seq = S + 1`,
//! 2. atomically rename it over `snapshot.ndjson`,
//! 3. create the empty `journal.(S+1).ndjson`,
//! 4. delete `journal.S.ndjson` (its events are inside the snapshot).
//!
//! A crash between any two steps leaves either the old snapshot with
//! its journal intact, or the new snapshot with its journal missing
//! (created empty on restart) or its predecessor stale (deleted on
//! restart) — never a state that replays an event twice or loses one.

use crate::ingest::{events_from_ndjson_with, IngestCause, IngestError, RecoveryPolicy, SourcePos};
use crate::Event;
use serde::{Deserialize, Serialize};

/// The supported snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The header line of a snapshot file: everything a restart needs
/// beyond the event sequence itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Sequence number of the append journal that continues this
    /// snapshot. Journals with any other sequence number are stale.
    pub journal_seq: u64,
    /// Epoch ordinal at capture time (the next seal's number).
    pub epoch: usize,
    /// Events quarantined by the recovery policy since stream start.
    pub quarantined: usize,
    /// Events ingested since the last seal (the partial epoch).
    pub events_this_epoch: usize,
    /// Transactions invoked since the last seal. Together with
    /// `events_this_epoch` this lets a restart resume watermark
    /// counting mid-epoch, so count-driven seal points — and with them
    /// epoch numbering — reproduce exactly.
    #[serde(default)]
    pub txns_since_seal: usize,
    /// Windowed-retirement carry: the bounded-memory checker state a
    /// plain event replay cannot recompute. Opaque at this layer —
    /// `elle-stream` defines the schema — and absent for unbounded
    /// checkers, so non-windowed headers stay byte-identical to
    /// version-1 files.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub window: Option<serde::Value>,
}

impl SnapshotMeta {
    /// A version-stamped meta for the given counters.
    pub fn new(
        journal_seq: u64,
        epoch: usize,
        quarantined: usize,
        events_this_epoch: usize,
        txns_since_seal: usize,
    ) -> Self {
        SnapshotMeta {
            version: SNAPSHOT_VERSION,
            journal_seq,
            epoch,
            quarantined,
            events_this_epoch,
            txns_since_seal,
            window: None,
        }
    }
}

/// Serialize a snapshot: the meta header line, then one event per line.
pub fn snapshot_to_string(meta: &SnapshotMeta, events: &[Event]) -> String {
    let mut s = serde_json::to_string(meta).expect("meta serialization is infallible");
    s.push('\n');
    for ev in events {
        s.push_str(&serde_json::to_string(ev).expect("event serialization is infallible"));
        s.push('\n');
    }
    s
}

/// Parse a snapshot file strictly. Snapshots are our own writes: any
/// damage (torn header, wrong version, misordered events) is a
/// positioned [`IngestError`], and the caller falls back to an empty
/// stream plus whatever the journal holds.
pub fn snapshot_from_str(s: &str) -> Result<(SnapshotMeta, Vec<Event>), IngestError> {
    let header_end = s.find('\n').map_or(s.len(), |i| i + 1);
    let (header, body) = s.split_at(header_end);
    let pos = SourcePos { line: 1, byte: 0 };
    let meta: SnapshotMeta = serde_json::from_str(header.trim()).map_err(|e| IngestError {
        pos,
        cause: IngestCause::Decode {
            message: format!("snapshot header: {e}"),
        },
    })?;
    if meta.version != SNAPSHOT_VERSION {
        return Err(IngestError {
            pos,
            cause: IngestCause::Decode {
                message: format!(
                    "snapshot version {} is not the supported {SNAPSHOT_VERSION}",
                    meta.version
                ),
            },
        });
    }
    let (log, _) = events_from_ndjson_with(body, RecoveryPolicy::Strict).map_err(|mut e| {
        // Positions in the body are relative to line 2 of the file.
        e.pos.line += 1;
        e.pos.byte += header_end;
        e
    })?;
    Ok((meta, log.into_events()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{events_to_ndjson, EventLog, HistoryBuilder};

    fn sample_events() -> Vec<Event> {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).indeterminate();
        let h = b.build();
        crate::events_from_ndjson(&crate::history_to_ndjson(&h))
            .unwrap()
            .into_events()
    }

    #[test]
    fn round_trips() {
        let events = sample_events();
        let meta = SnapshotMeta::new(3, 7, 2, 5, 4);
        let s = snapshot_to_string(&meta, &events);
        let (meta2, events2) = snapshot_from_str(&s).expect("parses");
        assert_eq!(meta, meta2);
        assert_eq!(events, events2);
        // The body alone is a valid event stream.
        let body = &s[s.find('\n').unwrap() + 1..];
        assert_eq!(
            events_to_ndjson(&EventLog::from_ordered(events)),
            body.to_string()
        );
    }

    #[test]
    fn empty_body_is_a_valid_snapshot() {
        let meta = SnapshotMeta::new(0, 0, 0, 0, 0);
        let (meta2, events) = snapshot_from_str(&snapshot_to_string(&meta, &[])).unwrap();
        assert_eq!(meta, meta2);
        assert!(events.is_empty());
    }

    #[test]
    fn rejects_wrong_version_and_torn_header() {
        let meta = SnapshotMeta {
            version: 99,
            ..SnapshotMeta::new(0, 0, 0, 0, 0)
        };
        let err = snapshot_from_str(&snapshot_to_string(&meta, &[])).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        let err = snapshot_from_str("{torn\n").unwrap_err();
        assert!(err.to_string().contains("snapshot header"), "{err}");
    }

    #[test]
    fn body_damage_is_positioned_in_file_coordinates() {
        let events = sample_events();
        let meta = SnapshotMeta::new(0, 0, 0, 0, 0);
        let mut s = snapshot_to_string(&meta, &events);
        s.push_str("{torn\n");
        let err = snapshot_from_str(&s).unwrap_err();
        assert_eq!(err.pos.line, 2 + events.len());
    }
}
