//! Fault-tolerant ingestion: the typed error taxonomy and recovery
//! policies for turning a possibly-damaged event stream into a history.
//!
//! Elle's whole premise is checking histories from systems that crash,
//! lose acknowledgements, and return indeterminate results — so the
//! ingest pipeline itself must survive the same weather. Every failure
//! on the wire is classified into an [`IngestError`] carrying its exact
//! source position (1-based line, byte offset of the line start), and a
//! [`RecoveryPolicy`] decides what happens next:
//!
//! * [`RecoveryPolicy::Strict`] — abort with the diagnostic. The default,
//!   and byte-compatible with historical behaviour.
//! * [`RecoveryPolicy::Quarantine`] — skip or repair the damaged event,
//!   record a [`Diagnostic`], and keep checking.
//!
//! ## Quarantine semantics
//!
//! Recovery never invents observations; it only weakens them, so a
//! quarantined run can *miss* anomalies but the inferences it does make
//! remain grounded in events the client actually recorded:
//!
//! * **Undecodable line** (torn write, bit flip): the line is dropped.
//! * **Late or duplicate event** (index not above the last one seen):
//!   the event is dropped. Duplicated deliveries are thereby suppressed
//!   exactly; a true reordering degrades into the loss of the delayed
//!   event, which the following rules then absorb.
//! * **Orphan completion** (its invocation was lost): the completion is
//!   *adopted* as a transaction whose invocation and completion coincide
//!   at the completion's index. The completion carries everything the
//!   client observed — status, writes, read values — so data-flow
//!   inference is exact; only the transaction's real-time interval is
//!   collapsed to a point, which can fabricate real-time edges *into*
//!   the adopted transaction. Prefer checking without `--realtime`
//!   under heavy invoke loss (see README, "Failure semantics").
//! * **Overlapping invocation** (the open invocation's completion was
//!   lost): the open transaction is abandoned as indeterminate — its
//!   history record already says exactly that — and the new invocation
//!   is admitted.
//! * **Mismatched completion** (pairing impossible): the completion is
//!   dropped; the invocation stays open and ends indeterminate.

use crate::{Event, EventLog, History, Ingest, PairingError, StreamingPairer, TxnId};
use std::fmt;

/// What to do when ingestion hits a damaged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Abort on the first violation, carrying a positioned diagnostic.
    #[default]
    Strict,
    /// Skip or repair the damaged event, record a [`Diagnostic`], and
    /// keep going.
    Quarantine,
}

/// Where in the source stream something happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourcePos {
    /// 1-based line number (0 when the source has no line structure,
    /// e.g. an in-memory event log — then it is the 1-based event
    /// position instead).
    pub line: usize,
    /// Byte offset of the start of that line in the stream.
    pub byte: usize,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {} (byte {})", self.line, self.byte)
    }
}

/// Why an event could not be ingested as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestCause {
    /// The line is not a well-formed JSON event (torn write, bit flip,
    /// foreign garbage).
    Decode {
        /// The decoder's message.
        message: String,
    },
    /// The event's index is not strictly greater than its predecessor's
    /// (a duplicated or re-ordered delivery).
    Ordering {
        /// The offending event's index.
        index: usize,
    },
    /// The event decoded but cannot be paired (orphan completion,
    /// overlapping invocation, mismatched micro-ops).
    Pairing(PairingError),
    /// A single line exceeded the configured buffer budget and was
    /// abandoned (resource-exhaustion degradation, not a parse error).
    Oversized {
        /// The budget that was exceeded, in bytes.
        limit: usize,
    },
}

impl fmt::Display for IngestCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestCause::Decode { message } => write!(f, "{message}"),
            IngestCause::Ordering { index } => {
                write!(
                    f,
                    "event index {index} is not greater than the previous line's"
                )
            }
            IngestCause::Pairing(e) => write!(f, "{e}"),
            IngestCause::Oversized { limit } => {
                write!(f, "line exceeds the {limit}-byte buffer budget")
            }
        }
    }
}

/// A positioned, typed ingestion failure — the strict policy's abort
/// payload, and the core of every quarantine diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// Where it happened.
    pub pos: SourcePos,
    /// What happened.
    pub cause: IngestCause,
}

impl IngestError {
    /// Normalize a pairing failure: the pairer's own monotonicity error
    /// becomes [`IngestCause::Ordering`] so callers see one taxonomy.
    pub fn from_pairing(pos: SourcePos, e: PairingError) -> IngestError {
        let cause = match e {
            PairingError::NonMonotonicIndex { index } => IngestCause::Ordering { index },
            other => IngestCause::Pairing(other),
        };
        IngestError { pos, cause }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.cause)
    }
}

impl std::error::Error for IngestError {}

/// How a quarantined event was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The line was dropped (undecodable or over budget).
    SkippedLine,
    /// The decoded event was dropped (late, duplicate, or unpairable).
    SkippedEvent,
    /// An orphan completion was adopted as a point-interval transaction.
    AdoptedOrphan(TxnId),
    /// An open invocation was abandoned as indeterminate so a new
    /// invocation on the same process could be admitted.
    AbandonedOpen(TxnId),
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::SkippedLine => write!(f, "line skipped"),
            RecoveryAction::SkippedEvent => write!(f, "event skipped"),
            RecoveryAction::AdoptedOrphan(id) => {
                write!(f, "orphan completion adopted as {id}")
            }
            RecoveryAction::AbandonedOpen(id) => {
                write!(f, "open invocation {id} abandoned as indeterminate")
            }
        }
    }
}

/// One quarantined event: what was wrong, where, and what recovery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The positioned failure.
    pub error: IngestError,
    /// The recovery taken.
    pub action: RecoveryAction,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.error, self.action)
    }
}

/// A streaming NDJSON → [`History`] pipeline with positions, policy,
/// and diagnostics: the fault-tolerant counterpart of
/// [`events_from_ndjson`](crate::events_from_ndjson)` + `[`EventLog::pair`].
///
/// Feed raw lines (trailing newline included, so byte offsets stay
/// exact) with [`NdjsonIngestor::feed_line`], or whole buffers with
/// [`NdjsonIngestor::feed_str`]. Under `Strict` the first violation
/// aborts; under `Quarantine` every violation becomes a [`Diagnostic`]
/// and ingestion continues.
#[derive(Debug, Default)]
pub struct NdjsonIngestor {
    policy: RecoveryPolicy,
    pairer: StreamingPairer,
    /// 1-based number of the next line to be fed.
    line: usize,
    /// Byte offset of the start of the next line.
    byte: usize,
    diagnostics: Vec<Diagnostic>,
}

impl NdjsonIngestor {
    /// An ingestor with the given policy.
    pub fn new(policy: RecoveryPolicy) -> NdjsonIngestor {
        NdjsonIngestor {
            policy,
            pairer: StreamingPairer::new(),
            line: 0,
            byte: 0,
            diagnostics: Vec::new(),
        }
    }

    /// The paired history so far (open invocations appear as
    /// indeterminate transactions, as always).
    pub fn history(&self) -> &History {
        self.pairer.history()
    }

    /// Diagnostics recorded so far (always empty under `Strict`).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of quarantined events so far.
    pub fn quarantined(&self) -> usize {
        self.diagnostics.len()
    }

    /// Invocations currently awaiting completion.
    pub fn open_count(&self) -> usize {
        self.pairer.open_count()
    }

    /// Finish, yielding the history and the diagnostics.
    pub fn finish(self) -> (History, Vec<Diagnostic>) {
        (self.pairer.into_history(), self.diagnostics)
    }

    /// The position the *next* fed line will be charged to.
    pub fn pos(&self) -> SourcePos {
        SourcePos {
            line: self.line + 1,
            byte: self.byte,
        }
    }

    /// Feed one raw line (with its trailing newline, if any). Blank
    /// lines are skipped. Returns what the event did to the history,
    /// `None` for blank/quarantined lines.
    pub fn feed_line(&mut self, raw: &str) -> Result<Option<Ingest>, IngestError> {
        let pos = self.pos();
        self.line += 1;
        self.byte += raw.len();
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(None);
        }
        let ev: Event = match serde_json::from_str(trimmed) {
            Ok(ev) => ev,
            Err(e) => {
                let err = IngestError {
                    pos,
                    cause: IngestCause::Decode {
                        message: e.to_string(),
                    },
                };
                return match self.policy {
                    RecoveryPolicy::Strict => Err(err),
                    RecoveryPolicy::Quarantine => {
                        self.diagnostics.push(Diagnostic {
                            error: err,
                            action: RecoveryAction::SkippedLine,
                        });
                        Ok(None)
                    }
                };
            }
        };
        match self.pairer.feed_with(&ev, self.policy) {
            Ok(Recovered::Ingested(i)) => Ok(Some(i)),
            Ok(recovered) => {
                if let Some(d) = recovered.diagnostic(pos) {
                    self.diagnostics.push(d);
                }
                Ok(None)
            }
            Err(e) => Err(IngestError::from_pairing(pos, e)),
        }
    }

    /// Feed a whole buffer, splitting at newlines (each kept with its
    /// line so positions stay exact).
    pub fn feed_str(&mut self, s: &str) -> Result<(), IngestError> {
        for raw in s.split_inclusive('\n') {
            self.feed_line(raw)?;
        }
        Ok(())
    }
}

/// What [`StreamingPairer::feed_with`] did with an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovered {
    /// Ingested normally.
    Ingested(Ingest),
    /// Quarantined: the event was dropped, for this reason.
    Skipped(PairingError),
    /// Quarantined: an orphan completion was adopted as a point-interval
    /// transaction (cause retained for the diagnostic).
    Adopted(TxnId, PairingError),
    /// Quarantined: the open invocation was abandoned as indeterminate
    /// and the new invocation admitted in its place.
    Abandoned {
        /// The transaction left behind as indeterminate.
        abandoned: TxnId,
        /// The newly admitted invocation's transaction.
        admitted: TxnId,
        /// The pairing violation that forced this.
        cause: PairingError,
    },
}

impl Recovered {
    /// Render a quarantine outcome as a positioned diagnostic
    /// (`None` for [`Recovered::Ingested`]).
    pub fn diagnostic(&self, pos: SourcePos) -> Option<Diagnostic> {
        let (cause, action) = match self {
            Recovered::Ingested(_) => return None,
            Recovered::Skipped(e) => (e.clone(), RecoveryAction::SkippedEvent),
            Recovered::Adopted(id, e) => (e.clone(), RecoveryAction::AdoptedOrphan(*id)),
            Recovered::Abandoned {
                abandoned, cause, ..
            } => (cause.clone(), RecoveryAction::AbandonedOpen(*abandoned)),
        };
        Some(Diagnostic {
            error: IngestError::from_pairing(pos, cause),
            action,
        })
    }
}

/// Parse NDJSON into an [`EventLog`] under a recovery policy, without
/// pairing. `Strict` aborts on the first damaged line; `Quarantine`
/// skips damaged or out-of-order lines, recording one positioned
/// [`Diagnostic`] each.
pub fn events_from_ndjson_with(
    s: &str,
    policy: RecoveryPolicy,
) -> Result<(EventLog, Vec<Diagnostic>), IngestError> {
    let mut events: Vec<Event> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut last_index: Option<usize> = None;
    let mut byte = 0usize;
    for (i, raw) in s.split_inclusive('\n').enumerate() {
        let pos = SourcePos { line: i + 1, byte };
        byte += raw.len();
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cause = match serde_json::from_str::<Event>(trimmed) {
            Ok(ev) => {
                if last_index.is_some_and(|last| ev.index <= last) {
                    IngestCause::Ordering { index: ev.index }
                } else {
                    last_index = Some(ev.index);
                    events.push(ev);
                    continue;
                }
            }
            Err(e) => IngestCause::Decode {
                message: e.to_string(),
            },
        };
        let action = match cause {
            IngestCause::Decode { .. } => RecoveryAction::SkippedLine,
            _ => RecoveryAction::SkippedEvent,
        };
        let error = IngestError { pos, cause };
        match policy {
            RecoveryPolicy::Strict => return Err(error),
            RecoveryPolicy::Quarantine => diagnostics.push(Diagnostic { error, action }),
        }
    }
    Ok((EventLog::from_ordered(events), diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Mop, ProcessId, TxnStatus};

    fn ok_line(index: usize, process: u32, kind: EventKind, mops: Vec<Mop>) -> String {
        let ev = Event {
            index,
            process: ProcessId(process),
            kind,
            mops,
            time_ns: None,
        };
        let mut s = serde_json::to_string(&ev).expect("serializes");
        s.push('\n');
        s
    }

    #[test]
    fn strict_aborts_with_exact_position() {
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Strict);
        let first = ok_line(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]);
        let first_len = first.len();
        ing.feed_line(&first).expect("clean line");
        let err = ing.feed_line("{torn").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.byte, first_len);
        assert!(matches!(err.cause, IngestCause::Decode { .. }));
        assert!(err.to_string().starts_with("line 2 (byte "), "{err}");
    }

    #[test]
    fn quarantine_skips_torn_lines_and_keeps_pairing() {
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_line(&ok_line(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]))
            .unwrap();
        assert_eq!(ing.feed_line("{torn").unwrap(), None);
        ing.feed_line(&ok_line(1, 0, EventKind::Ok, vec![Mop::append(1, 1)]))
            .unwrap();
        let (h, diags) = ing.finish();
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Committed);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].action, RecoveryAction::SkippedLine);
        assert_eq!(diags[0].error.pos.line, 2);
    }

    #[test]
    fn quarantine_adopts_orphan_completions() {
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        // The invocation was lost; only the completion arrives.
        ing.feed_line(&ok_line(
            5,
            3,
            EventKind::Ok,
            vec![Mop::append(1, 1), Mop::read_list(1, [1])],
        ))
        .unwrap();
        let (h, diags) = ing.finish();
        assert_eq!(h.len(), 1);
        let t = h.get(TxnId(0));
        assert_eq!(t.status, TxnStatus::Committed);
        assert_eq!(t.invoke_index, 5);
        assert_eq!(t.complete_index, Some(5));
        assert_eq!(t.mops[1], Mop::read_list(1, [1]));
        assert!(matches!(diags[0].action, RecoveryAction::AdoptedOrphan(_)));
    }

    #[test]
    fn quarantine_abandons_open_invocation_on_overlap() {
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        ing.feed_line(&ok_line(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]))
            .unwrap();
        // Completion lost; the same process invokes again.
        ing.feed_line(&ok_line(2, 0, EventKind::Invoke, vec![Mop::append(1, 2)]))
            .unwrap();
        ing.feed_line(&ok_line(3, 0, EventKind::Ok, vec![Mop::append(1, 2)]))
            .unwrap();
        let (h, diags) = ing.finish();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Indeterminate);
        assert_eq!(h.get(TxnId(0)).complete_index, None);
        assert_eq!(h.get(TxnId(1)).status, TxnStatus::Committed);
        assert!(matches!(diags[0].action, RecoveryAction::AbandonedOpen(_)));
    }

    #[test]
    fn quarantine_drops_duplicates_exactly() {
        let inv = ok_line(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]);
        let done = ok_line(1, 0, EventKind::Ok, vec![Mop::append(1, 1)]);
        let mut ing = NdjsonIngestor::new(RecoveryPolicy::Quarantine);
        // Duplicate both deliveries.
        for l in [&inv, &inv, &done, &done] {
            ing.feed_line(l).unwrap();
        }
        let (h, diags) = ing.finish();
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(TxnId(0)).status, TxnStatus::Committed);
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .all(|d| matches!(d.error.cause, IngestCause::Ordering { .. })));
    }

    #[test]
    fn events_from_ndjson_with_reports_positions() {
        let inv = ok_line(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]);
        let nd = format!("{inv}{{torn\n{inv}");
        let err = events_from_ndjson_with(&nd, RecoveryPolicy::Strict).unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.byte, inv.len());
        let (log, diags) = events_from_ndjson_with(&nd, RecoveryPolicy::Quarantine).unwrap();
        // The torn line and the duplicated index are both quarantined.
        assert_eq!(log.len(), 1);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].error.pos.line, 2);
        assert_eq!(diags[1].error.pos.line, 3);
        assert!(matches!(diags[1].error.cause, IngestCause::Ordering { .. }));
    }
}
