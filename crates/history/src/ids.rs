//! Identifier newtypes shared across the workspace.
//!
//! Keys and elements are plain integers. This is not a loss of generality:
//! Elle's recoverability requirement (§4.2.3) already demands that write
//! arguments be *unique*, so a test harness must mint fresh values anyway —
//! and integers make the hot element→writer indices cheap to build.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A database object identifier (Adya's `x`, `y`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Key(pub u64);

/// A written value / list element.
///
/// For list-append and set workloads this is the appended element; for
/// registers it is the written value. Recoverable histories use each element
/// at most once per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Elem(pub u64);

/// A logical client process.
///
/// Jepsen semantics: a process executes transactions one at a time; when a
/// transaction ends in [`EventKind::Info`](crate::EventKind::Info) the
/// process is considered crashed and the harness replaces it with a fresh
/// `ProcessId` — so logical concurrency can grow over time (§7 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcessId(pub u32);

/// Index of a transaction within a [`History`](crate::History).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TxnId(pub u32);

impl TxnId {
    /// The transaction id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

impl From<u64> for Elem {
    fn from(v: u64) -> Self {
        Elem(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Key(7).to_string(), "7");
        assert_eq!(Elem(3).to_string(), "3");
        assert_eq!(ProcessId(2).to_string(), "p2");
        assert_eq!(TxnId(9).to_string(), "T9");
    }

    #[test]
    fn ordering_matches_inner() {
        assert!(Key(1) < Key(2));
        assert!(Elem(1) < Elem(2));
        assert!(TxnId(0) < TxnId(1));
    }

    #[test]
    fn txn_id_index() {
        assert_eq!(TxnId(5).idx(), 5);
    }
}
