//! Paired transactions and the `History` checkers consume.

use crate::{Elem, Key, Mop, ProcessId, ReadValue, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The client-known outcome of an observed transaction (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Definitely committed (`:ok`).
    Committed,
    /// Definitely aborted (`:fail`).
    Aborted,
    /// Unknown — the commit request's outcome was never observed (`:info`).
    Indeterminate,
}

impl TxnStatus {
    /// Definitely committed?
    pub fn is_committed(self) -> bool {
        matches!(self, TxnStatus::Committed)
    }

    /// Definitely aborted?
    pub fn is_aborted(self) -> bool {
        matches!(self, TxnStatus::Aborted)
    }

    /// Could this transaction have committed (committed or indeterminate)?
    pub fn may_have_committed(self) -> bool {
        !self.is_aborted()
    }
}

/// An observed transaction: a list of micro-operations plus outcome and
/// real-time placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// This transaction's index in the history.
    pub id: TxnId,
    /// The client process that executed it.
    pub process: ProcessId,
    /// Micro-operations, in program order. For committed transactions,
    /// reads carry observed values.
    pub mops: Vec<Mop>,
    /// Committed / aborted / indeterminate.
    pub status: TxnStatus,
    /// Event-log index of the invocation.
    pub invoke_index: usize,
    /// Event-log index of the completion; `None` if never completed
    /// (an `Info` transaction synthesized at history end has one, a truly
    /// missing completion does not).
    pub complete_index: Option<usize>,
    /// Database-exposed `(start, commit)` timestamps, when the system
    /// under test reports them (§5.1 of the paper: some snapshot-isolated
    /// databases expose transaction timestamps to clients). These are the
    /// database's *logical* clocks, not the harness's wall clock.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timestamps: Option<(u64, u64)>,
}

impl Transaction {
    /// Iterate over the observed reads: `(mop position, key, value)`.
    pub fn observed_reads(&self) -> impl Iterator<Item = (usize, Key, &ReadValue)> + '_ {
        self.mops.iter().enumerate().filter_map(|(i, m)| match m {
            Mop::Read {
                key,
                value: Some(v),
            } => Some((i, *key, v)),
            _ => None,
        })
    }

    /// Iterate over writes carrying an element: `(mop position, key, elem)`.
    pub fn elem_writes(&self) -> impl Iterator<Item = (usize, Key, Elem)> + '_ {
        self.mops
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.written_elem().map(|e| (i, m.key(), e)))
    }

    /// Does this transaction write (any flavour) to `key`?
    pub fn writes_key(&self, key: Key) -> bool {
        self.mops.iter().any(|m| m.is_write() && m.key() == key)
    }

    /// Render as the paper writes transactions:
    /// `T1: append(34, 5), r(34, [2 1 5 4])`.
    pub fn to_notation(&self) -> String {
        let mut s = format!("{}: ", self.id);
        for (i, m) in self.mops.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&m.to_string());
        }
        match self.status {
            TxnStatus::Committed => s.push_str(", c"),
            TxnStatus::Aborted => s.push_str(", a"),
            TxnStatus::Indeterminate => s.push_str(", ?"),
        }
        s
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_notation())
    }
}

/// A complete observation: every transaction executed against the database
/// (§4.2.1 assumes observations include all transactions).
///
/// A *windowed* history may have retired a prefix of its transactions
/// (see [`History::retire_prefix`]): ids keep their invoke-rank meaning
/// — [`History::len`] counts retired + retained, so the next assigned id
/// is unchanged — but only ids at or above [`History::base`] can still
/// be looked up.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    txns: Vec<Transaction>,
    /// Number of retired transactions preceding `txns[0]`; 0 for every
    /// batch history.
    #[serde(default, skip_serializing_if = "u32_is_zero")]
    base: u32,
}

fn u32_is_zero(v: &u32) -> bool {
    *v == 0
}

impl History {
    /// Build directly from transactions, re-assigning ids by position.
    pub fn from_txns(mut txns: Vec<Transaction>) -> Self {
        for (i, t) in txns.iter_mut().enumerate() {
            t.id = TxnId(i as u32);
        }
        History { txns, base: 0 }
    }

    /// An empty history whose next id is `TxnId(base)` — the recovery
    /// entry point for replaying a windowed checker's retained suffix.
    pub(crate) fn with_base(base: u32) -> Self {
        History {
            txns: Vec::new(),
            base,
        }
    }

    /// The retained transactions, in invocation order. In a windowed
    /// history this is the suffix from [`History::base`] up; the first
    /// entry's id is `TxnId(base)`, not `TxnId(0)`.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Crate-internal mutable access for the streaming pairer, which
    /// appends transactions in invocation order and resolves open ones
    /// in place.
    pub(crate) fn txns_mut(&mut self) -> &mut Vec<Transaction> {
        &mut self.txns
    }

    /// Transaction count, *including* any retired prefix — so ids keep
    /// being assigned by invoke rank after retirement.
    pub fn len(&self) -> usize {
        self.base as usize + self.txns.len()
    }

    /// Is the history empty (no transaction ever recorded)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retirement watermark: ids below this have been retired and
    /// can no longer be looked up. 0 for every batch history.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Retire every transaction with id below `r`: drop their records
    /// and advance [`History::base`]. `r` at or below the current base
    /// is a no-op; `r` beyond the end is clamped. The caller is
    /// responsible for only retiring transactions nothing will look up
    /// again (the windowed stream checker's cycle-safety proof).
    pub fn retire_prefix(&mut self, r: u32) {
        let r = (r as usize).min(self.len()) as u32;
        if r <= self.base {
            return;
        }
        let n = (r - self.base) as usize;
        drop(self.txns.drain(..n));
        self.base = r;
    }

    /// Look a transaction up by id. Panics on a retired id.
    pub fn get(&self, id: TxnId) -> &Transaction {
        let i = id
            .idx()
            .checked_sub(self.base as usize)
            .expect("transaction id was retired from this windowed history");
        &self.txns[i]
    }

    /// Mutable lookup for the streaming pairer's in-place completion.
    pub(crate) fn get_mut(&mut self, id: TxnId) -> &mut Transaction {
        let i = id
            .idx()
            .checked_sub(self.base as usize)
            .expect("transaction id was retired from this windowed history");
        &mut self.txns[i]
    }

    /// Total number of micro-operations across the *retained*
    /// transactions.
    pub fn mop_count(&self) -> usize {
        self.txns.iter().map(|t| t.mops.len()).sum()
    }

    /// Committed transactions only.
    pub fn committed(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txns.iter().filter(|t| t.status.is_committed())
    }

    /// The distinct keys touched anywhere in the history.
    pub fn keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .txns
            .iter()
            .flat_map(|t| t.mops.iter().map(|m| m.key()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.txns {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn retire_prefix_advances_base_and_keeps_ids_stable() {
        let mut b = HistoryBuilder::new();
        for i in 0..5 {
            b.txn(i).append(1, i as u64).commit();
        }
        let mut h = b.build();
        assert_eq!(h.base(), 0);

        h.retire_prefix(2);
        assert_eq!(h.base(), 2);
        assert_eq!(h.len(), 5, "len still counts the retired prefix");
        assert!(!h.is_empty());
        assert_eq!(h.txns().len(), 3, "only the suffix is retained");
        assert_eq!(h.txns()[0].id, TxnId(2), "ids are not renumbered");
        assert_eq!(h.get(TxnId(4)).id, TxnId(4));
        assert_eq!(h.mop_count(), 3, "mop_count covers retained only");

        // Re-retiring at or below the watermark is a no-op; beyond the
        // end clamps.
        h.retire_prefix(1);
        assert_eq!(h.base(), 2);
        h.retire_prefix(99);
        assert_eq!(h.base(), 5);
        assert!(h.txns().is_empty());
        assert!(!h.is_empty(), "a fully retired history is not empty");
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn retired_ids_cannot_be_looked_up() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        let mut h = b.build();
        h.retire_prefix(1);
        let _ = h.get(TxnId(0));
    }

    #[test]
    fn windowed_history_serde_round_trips_and_batch_stays_stable() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        let mut h = b.build();

        let batch_json = serde_json::to_string(&h).unwrap();
        assert!(
            !batch_json.contains("base"),
            "base is omitted at 0 so batch serialization is unchanged"
        );

        h.retire_prefix(1);
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.base(), 1);
    }

    #[test]
    fn notation_matches_paper() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(34, 5).read_list(34, [2, 1, 5, 4]).commit();
        let h = b.build();
        assert_eq!(
            h.get(TxnId(0)).to_notation(),
            "T0: append(34, 5), r(34, [2 1 5 4]), c"
        );
    }

    #[test]
    fn aborted_and_indeterminate_notation() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).indeterminate();
        let h = b.build();
        assert!(h.get(TxnId(0)).to_notation().ends_with(", a"));
        assert!(h.get(TxnId(1)).to_notation().ends_with(", ?"));
    }

    #[test]
    fn accessors() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 10).read_list(2, [7]).commit();
        b.txn(1).append(2, 7).abort();
        let h = b.build();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.mop_count(), 3);
        assert_eq!(h.committed().count(), 1);
        assert_eq!(h.keys(), vec![Key(1), Key(2)]);
        let t0 = h.get(TxnId(0));
        assert!(t0.writes_key(Key(1)));
        assert!(!t0.writes_key(Key(2)));
        let reads: Vec<_> = t0.observed_reads().collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1, Key(2));
        let writes: Vec<_> = t0.elem_writes().collect();
        assert_eq!(writes, vec![(0, Key(1), Elem(10))]);
    }

    #[test]
    fn status_predicates() {
        assert!(TxnStatus::Committed.is_committed());
        assert!(TxnStatus::Committed.may_have_committed());
        assert!(TxnStatus::Aborted.is_aborted());
        assert!(!TxnStatus::Aborted.may_have_committed());
        assert!(TxnStatus::Indeterminate.may_have_committed());
        assert!(!TxnStatus::Indeterminate.is_committed());
    }
}
