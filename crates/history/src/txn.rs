//! Paired transactions and the `History` checkers consume.

use crate::{Elem, Key, Mop, ProcessId, ReadValue, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The client-known outcome of an observed transaction (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Definitely committed (`:ok`).
    Committed,
    /// Definitely aborted (`:fail`).
    Aborted,
    /// Unknown — the commit request's outcome was never observed (`:info`).
    Indeterminate,
}

impl TxnStatus {
    /// Definitely committed?
    pub fn is_committed(self) -> bool {
        matches!(self, TxnStatus::Committed)
    }

    /// Definitely aborted?
    pub fn is_aborted(self) -> bool {
        matches!(self, TxnStatus::Aborted)
    }

    /// Could this transaction have committed (committed or indeterminate)?
    pub fn may_have_committed(self) -> bool {
        !self.is_aborted()
    }
}

/// An observed transaction: a list of micro-operations plus outcome and
/// real-time placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// This transaction's index in the history.
    pub id: TxnId,
    /// The client process that executed it.
    pub process: ProcessId,
    /// Micro-operations, in program order. For committed transactions,
    /// reads carry observed values.
    pub mops: Vec<Mop>,
    /// Committed / aborted / indeterminate.
    pub status: TxnStatus,
    /// Event-log index of the invocation.
    pub invoke_index: usize,
    /// Event-log index of the completion; `None` if never completed
    /// (an `Info` transaction synthesized at history end has one, a truly
    /// missing completion does not).
    pub complete_index: Option<usize>,
    /// Database-exposed `(start, commit)` timestamps, when the system
    /// under test reports them (§5.1 of the paper: some snapshot-isolated
    /// databases expose transaction timestamps to clients). These are the
    /// database's *logical* clocks, not the harness's wall clock.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timestamps: Option<(u64, u64)>,
}

impl Transaction {
    /// Iterate over the observed reads: `(mop position, key, value)`.
    pub fn observed_reads(&self) -> impl Iterator<Item = (usize, Key, &ReadValue)> + '_ {
        self.mops.iter().enumerate().filter_map(|(i, m)| match m {
            Mop::Read {
                key,
                value: Some(v),
            } => Some((i, *key, v)),
            _ => None,
        })
    }

    /// Iterate over writes carrying an element: `(mop position, key, elem)`.
    pub fn elem_writes(&self) -> impl Iterator<Item = (usize, Key, Elem)> + '_ {
        self.mops
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.written_elem().map(|e| (i, m.key(), e)))
    }

    /// Does this transaction write (any flavour) to `key`?
    pub fn writes_key(&self, key: Key) -> bool {
        self.mops.iter().any(|m| m.is_write() && m.key() == key)
    }

    /// Render as the paper writes transactions:
    /// `T1: append(34, 5), r(34, [2 1 5 4])`.
    pub fn to_notation(&self) -> String {
        let mut s = format!("{}: ", self.id);
        for (i, m) in self.mops.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&m.to_string());
        }
        match self.status {
            TxnStatus::Committed => s.push_str(", c"),
            TxnStatus::Aborted => s.push_str(", a"),
            TxnStatus::Indeterminate => s.push_str(", ?"),
        }
        s
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_notation())
    }
}

/// A complete observation: every transaction executed against the database
/// (§4.2.1 assumes observations include all transactions).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    txns: Vec<Transaction>,
}

impl History {
    /// Build directly from transactions, re-assigning ids by position.
    pub fn from_txns(mut txns: Vec<Transaction>) -> Self {
        for (i, t) in txns.iter_mut().enumerate() {
            t.id = TxnId(i as u32);
        }
        History { txns }
    }

    /// All transactions, in invocation order.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Crate-internal mutable access for the streaming pairer, which
    /// appends transactions in invocation order and resolves open ones
    /// in place.
    pub(crate) fn txns_mut(&mut self) -> &mut Vec<Transaction> {
        &mut self.txns
    }

    /// Transaction count.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Look a transaction up by id.
    pub fn get(&self, id: TxnId) -> &Transaction {
        &self.txns[id.idx()]
    }

    /// Total number of micro-operations across all transactions.
    pub fn mop_count(&self) -> usize {
        self.txns.iter().map(|t| t.mops.len()).sum()
    }

    /// Committed transactions only.
    pub fn committed(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txns.iter().filter(|t| t.status.is_committed())
    }

    /// The distinct keys touched anywhere in the history.
    pub fn keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .txns
            .iter()
            .flat_map(|t| t.mops.iter().map(|m| m.key()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.txns {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn notation_matches_paper() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(34, 5).read_list(34, [2, 1, 5, 4]).commit();
        let h = b.build();
        assert_eq!(
            h.get(TxnId(0)).to_notation(),
            "T0: append(34, 5), r(34, [2 1 5 4]), c"
        );
    }

    #[test]
    fn aborted_and_indeterminate_notation() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).indeterminate();
        let h = b.build();
        assert!(h.get(TxnId(0)).to_notation().ends_with(", a"));
        assert!(h.get(TxnId(1)).to_notation().ends_with(", ?"));
    }

    #[test]
    fn accessors() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 10).read_list(2, [7]).commit();
        b.txn(1).append(2, 7).abort();
        let h = b.build();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.mop_count(), 3);
        assert_eq!(h.committed().count(), 1);
        assert_eq!(h.keys(), vec![Key(1), Key(2)]);
        let t0 = h.get(TxnId(0));
        assert!(t0.writes_key(Key(1)));
        assert!(!t0.writes_key(Key(2)));
        let reads: Vec<_> = t0.observed_reads().collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1, Key(2));
        let writes: Vec<_> = t0.elem_writes().collect();
        assert_eq!(writes, vec![(0, Key(1), Elem(10))]);
    }

    #[test]
    fn status_predicates() {
        assert!(TxnStatus::Committed.is_committed());
        assert!(TxnStatus::Committed.may_have_committed());
        assert!(TxnStatus::Aborted.is_aborted());
        assert!(!TxnStatus::Aborted.may_have_committed());
        assert!(TxnStatus::Indeterminate.may_have_committed());
        assert!(!TxnStatus::Indeterminate.is_committed());
    }
}
