//! # elle-history
//!
//! The Jepsen-style history model consumed by the Elle checker
//! ([Kingsbury & Alvaro, VLDB 2020]).
//!
//! A *history* is the experimentally-accessible record of a set of client
//! processes interacting with a database. Each client submits
//! *transactions* — lists of [`Mop`] micro-operations — and records, per
//! transaction, an **invoke** event when it is submitted and a completion
//! event when the database responds:
//!
//! * [`EventKind::Ok`] — the transaction definitely committed; reads carry
//!   their observed values,
//! * [`EventKind::Fail`] — the transaction definitely aborted,
//! * [`EventKind::Info`] — the outcome is unknown (a timeout, a crashed
//!   node, a lost acknowledgement). The transaction may or may not have
//!   committed.
//!
//! The flat event log ([`EventLog`]) is what a test harness records; the
//! paired view ([`History`], produced by [`EventLog::pair`] or the
//! [`HistoryBuilder`]) is what checkers consume. Event indices double as the
//! real-time order: event `i` happened before event `j` iff `i < j`.
//!
//! This crate is deliberately checker-agnostic: it knows nothing about
//! dependency graphs or anomalies, only about what clients can observe
//! (§4.2.1 of the paper: versions and return values may be *unknown*).
//!
//! [Kingsbury & Alvaro, VLDB 2020]: https://arxiv.org/abs/2003.10554

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod event;
mod ids;
pub mod ingest;
mod mop;
mod pairing;
mod serde_io;
mod snapshot;
mod txn;

pub use builder::{duplicate_written_elems, HistoryBuilder, TxnBuilder};
pub use event::{Event, EventKind, EventLog};
pub use ids::{Elem, Key, ProcessId, TxnId};
pub use ingest::{
    events_from_ndjson_with, Diagnostic, IngestCause, IngestError, NdjsonIngestor, Recovered,
    RecoveryAction, RecoveryPolicy, SourcePos,
};
pub use mop::{Mop, ReadValue};
pub use pairing::{Ingest, PairingError, StreamingPairer};
pub use serde_io::{
    events_from_ndjson, events_to_ndjson, history_from_json, history_to_json, history_to_ndjson,
};
pub use snapshot::{snapshot_from_str, snapshot_to_string, SnapshotMeta, SNAPSHOT_VERSION};
pub use txn::{History, Transaction, TxnStatus};
