//! Micro-operations: the individual reads and writes inside a transaction.
//!
//! These mirror Figure 1 of the paper. Each datatype's *write* carries
//! increasingly specific information about the previous version:
//!
//! | object      | write                | information preserved            |
//! |-------------|----------------------|----------------------------------|
//! | register    | blind write          | none ("destroys history")        |
//! | counter     | increment            | predecessor is value − amount    |
//! | set         | add unique element   | predecessor lacks the element    |
//! | list-append | append unique elem   | full version history (traceable) |

use crate::{Elem, Key};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The value returned by a read, when known.
///
/// An *observed* read (`r(x) → v`) carries the full version it saw. In an
/// invocation event, or in an [`Info`](crate::EventKind::Info) completion,
/// the value is unknown and the read is stored as `Mop::Read { value: None }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadValue {
    /// A list-append object: the entire list, in append order.
    List(Vec<Elem>),
    /// A read-write register: `None` is the initial `nil`.
    Register(Option<Elem>),
    /// A counter value.
    Counter(i64),
    /// A grow-only set.
    Set(BTreeSet<Elem>),
}

impl ReadValue {
    /// Convenience constructor for list values.
    pub fn list<I: IntoIterator<Item = u64>>(items: I) -> Self {
        ReadValue::List(items.into_iter().map(Elem).collect())
    }

    /// Convenience constructor for set values.
    pub fn set<I: IntoIterator<Item = u64>>(items: I) -> Self {
        ReadValue::Set(items.into_iter().map(Elem).collect())
    }

    /// The list contents, if this is a list read.
    pub fn as_list(&self) -> Option<&[Elem]> {
        match self {
            ReadValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// The register contents, if this is a register read.
    pub fn as_register(&self) -> Option<Option<Elem>> {
        match self {
            ReadValue::Register(v) => Some(*v),
            _ => None,
        }
    }

    /// The counter value, if this is a counter read.
    pub fn as_counter(&self) -> Option<i64> {
        match self {
            ReadValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The set contents, if this is a set read.
    pub fn as_set(&self) -> Option<&BTreeSet<Elem>> {
        match self {
            ReadValue::Set(v) => Some(v),
            _ => None,
        }
    }
}

/// A micro-operation: one read or write inside a transaction.
///
/// Writes are object-specific (Figure 1 of the paper); reads are universal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mop {
    /// Append a (unique) element to a list — the traceable object.
    Append {
        /// Object appended to.
        key: Key,
        /// Element appended; unique per history for recoverability.
        elem: Elem,
    },
    /// Blindly write a register.
    Write {
        /// Object written.
        key: Key,
        /// Value written; unique per history for recoverability.
        elem: Elem,
    },
    /// Increment a counter by `amount`.
    Increment {
        /// Object incremented.
        key: Key,
        /// Signed increment amount.
        amount: i64,
    },
    /// Add a (unique) element to a grow-only set.
    AddToSet {
        /// Object added to.
        key: Key,
        /// Element added; unique per history for recoverability.
        elem: Elem,
    },
    /// Read the current version of an object.
    ///
    /// `value` is `None` when unobserved (invocation events, info
    /// completions, or lost responses).
    Read {
        /// Object read.
        key: Key,
        /// Observed version, when known.
        value: Option<ReadValue>,
    },
}

impl Mop {
    /// Shorthand: `append(k, e)`.
    pub fn append(key: u64, elem: u64) -> Self {
        Mop::Append {
            key: Key(key),
            elem: Elem(elem),
        }
    }

    /// Shorthand: register write `w(k, e)`.
    pub fn write(key: u64, elem: u64) -> Self {
        Mop::Write {
            key: Key(key),
            elem: Elem(elem),
        }
    }

    /// Shorthand: counter `inc(k, amount)`.
    pub fn increment(key: u64, amount: i64) -> Self {
        Mop::Increment {
            key: Key(key),
            amount,
        }
    }

    /// Shorthand: `add(k, e)`.
    pub fn add_to_set(key: u64, elem: u64) -> Self {
        Mop::AddToSet {
            key: Key(key),
            elem: Elem(elem),
        }
    }

    /// Shorthand: an unresolved read `r(k, ?)`.
    pub fn read(key: u64) -> Self {
        Mop::Read {
            key: Key(key),
            value: None,
        }
    }

    /// Shorthand: an observed list read `r(k, [..])`.
    pub fn read_list<I: IntoIterator<Item = u64>>(key: u64, items: I) -> Self {
        Mop::Read {
            key: Key(key),
            value: Some(ReadValue::list(items)),
        }
    }

    /// Shorthand: an observed register read. `None` is the initial `nil`.
    pub fn read_register(key: u64, value: Option<u64>) -> Self {
        Mop::Read {
            key: Key(key),
            value: Some(ReadValue::Register(value.map(Elem))),
        }
    }

    /// Shorthand: an observed counter read.
    pub fn read_counter(key: u64, value: i64) -> Self {
        Mop::Read {
            key: Key(key),
            value: Some(ReadValue::Counter(value)),
        }
    }

    /// Shorthand: an observed set read.
    pub fn read_set<I: IntoIterator<Item = u64>>(key: u64, items: I) -> Self {
        Mop::Read {
            key: Key(key),
            value: Some(ReadValue::set(items)),
        }
    }

    /// The key this micro-operation touches.
    #[inline]
    pub fn key(&self) -> Key {
        match self {
            Mop::Append { key, .. }
            | Mop::Write { key, .. }
            | Mop::Increment { key, .. }
            | Mop::AddToSet { key, .. }
            | Mop::Read { key, .. } => *key,
        }
    }

    /// Is this a read?
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Mop::Read { .. })
    }

    /// Is this a write of any flavour?
    #[inline]
    pub fn is_write(&self) -> bool {
        !self.is_read()
    }

    /// The written element, for writes that carry one (append / write / add).
    #[inline]
    pub fn written_elem(&self) -> Option<Elem> {
        match self {
            Mop::Append { elem, .. } | Mop::Write { elem, .. } | Mop::AddToSet { elem, .. } => {
                Some(*elem)
            }
            _ => None,
        }
    }

    /// Strip the observed value from reads, producing the invocation form.
    pub fn to_invocation(&self) -> Mop {
        match self {
            Mop::Read { key, .. } => Mop::Read {
                key: *key,
                value: None,
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for ReadValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadValue::List(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            ReadValue::Register(Some(e)) => write!(f, "{e}"),
            ReadValue::Register(None) => write!(f, "nil"),
            ReadValue::Counter(v) => write!(f, "{v}"),
            ReadValue::Set(s) => {
                write!(f, "{{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for Mop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mop::Append { key, elem } => write!(f, "append({key}, {elem})"),
            Mop::Write { key, elem } => write!(f, "w({key}, {elem})"),
            Mop::Increment { key, amount } => write!(f, "inc({key}, {amount})"),
            Mop::AddToSet { key, elem } => write!(f, "add({key}, {elem})"),
            Mop::Read { key, value: None } => write!(f, "r({key}, ?)"),
            Mop::Read {
                key,
                value: Some(v),
            } => write!(f, "r({key}, {v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Mop::append(34, 5).to_string(), "append(34, 5)");
        assert_eq!(
            Mop::read_list(34, [2, 1, 5, 4]).to_string(),
            "r(34, [2 1 5 4])"
        );
        assert_eq!(Mop::read_register(10, None).to_string(), "r(10, nil)");
        assert_eq!(Mop::write(10, 2).to_string(), "w(10, 2)");
        assert_eq!(Mop::read(9).to_string(), "r(9, ?)");
        assert_eq!(Mop::read_set(1, [0, 1, 2]).to_string(), "r(1, {0 1 2})");
        assert_eq!(Mop::read_counter(1, -3).to_string(), "r(1, -3)");
        assert_eq!(Mop::increment(1, 2).to_string(), "inc(1, 2)");
        assert_eq!(Mop::add_to_set(1, 2).to_string(), "add(1, 2)");
    }

    #[test]
    fn key_and_kind_accessors() {
        assert_eq!(Mop::append(3, 1).key(), Key(3));
        assert!(Mop::append(3, 1).is_write());
        assert!(!Mop::append(3, 1).is_read());
        assert!(Mop::read(3).is_read());
        assert_eq!(Mop::append(3, 1).written_elem(), Some(Elem(1)));
        assert_eq!(Mop::increment(3, 1).written_elem(), None);
        assert_eq!(Mop::read(3).written_elem(), None);
    }

    #[test]
    fn invocation_strips_read_values() {
        let m = Mop::read_list(1, [1, 2]);
        assert_eq!(m.to_invocation(), Mop::read(1));
        let w = Mop::append(1, 2);
        assert_eq!(w.to_invocation(), w);
    }

    #[test]
    fn read_value_accessors() {
        assert_eq!(
            ReadValue::list([1, 2]).as_list(),
            Some(&[Elem(1), Elem(2)][..])
        );
        assert_eq!(ReadValue::list([1]).as_register(), None);
        assert_eq!(
            ReadValue::Register(Some(Elem(2))).as_register(),
            Some(Some(Elem(2)))
        );
        assert_eq!(ReadValue::Counter(7).as_counter(), Some(7));
        assert!(ReadValue::set([1, 2]).as_set().unwrap().contains(&Elem(2)));
    }
}
