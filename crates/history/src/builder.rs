//! Ergonomic construction of histories for tests, docs, and examples.
//!
//! ```
//! use elle_history::HistoryBuilder;
//!
//! // The paper's TiDB G-single example (§7.1):
//! let mut b = HistoryBuilder::new();
//! b.txn(0)
//!     .read_list(34, [2, 1])
//!     .append(36, 5)
//!     .append(34, 4)
//!     .commit();
//! b.txn(1).append(34, 5).commit();
//! b.txn(2).read_list(34, [2, 1, 5, 4]).commit();
//! let history = b.build();
//! assert_eq!(history.len(), 3);
//! ```

use crate::{Elem, History, Key, Mop, ProcessId, ReadValue, Transaction, TxnId, TxnStatus};

/// Builds a [`History`] transaction by transaction.
///
/// Invocation/completion indices are synthesized sequentially: each
/// transaction occupies `[2i, 2i+1]`, so builder-made transactions are
/// totally ordered in real time in build order. Use [`TxnBuilder::at`] to
/// override and create concurrency.
#[derive(Debug, Default)]
pub struct HistoryBuilder {
    txns: Vec<Transaction>,
}

impl HistoryBuilder {
    /// A new, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a transaction on `process`. Finish it with
    /// [`TxnBuilder::commit`], [`TxnBuilder::abort`], or
    /// [`TxnBuilder::indeterminate`].
    pub fn txn(&mut self, process: u32) -> TxnBuilder<'_> {
        let seq = self.txns.len();
        TxnBuilder {
            owner: self,
            process: ProcessId(process),
            mops: Vec::new(),
            invoke_index: 2 * seq,
            complete_index: Some(2 * seq + 1),
            timestamps: None,
        }
    }

    /// Finish, producing the history.
    pub fn build(self) -> History {
        History::from_txns(self.txns)
    }
}

/// In-progress transaction; see [`HistoryBuilder::txn`].
#[derive(Debug)]
pub struct TxnBuilder<'a> {
    owner: &'a mut HistoryBuilder,
    process: ProcessId,
    mops: Vec<Mop>,
    invoke_index: usize,
    complete_index: Option<usize>,
    timestamps: Option<(u64, u64)>,
}

impl TxnBuilder<'_> {
    /// Override real-time placement (invoke / complete event indices).
    /// Pass `complete = None` for a transaction that never returned.
    pub fn at(mut self, invoke: usize, complete: Option<usize>) -> Self {
        self.invoke_index = invoke;
        self.complete_index = complete;
        self
    }

    /// Attach database-exposed `(start, commit)` timestamps (§5.1).
    pub fn timestamps(mut self, start: u64, commit: u64) -> Self {
        self.timestamps = Some((start, commit));
        self
    }

    /// Add an arbitrary micro-op.
    pub fn mop(mut self, m: Mop) -> Self {
        self.mops.push(m);
        self
    }

    /// `append(k, e)`
    pub fn append(self, key: u64, elem: u64) -> Self {
        self.mop(Mop::append(key, elem))
    }

    /// Register write `w(k, e)`
    pub fn write(self, key: u64, elem: u64) -> Self {
        self.mop(Mop::write(key, elem))
    }

    /// Counter `inc(k, amount)`
    pub fn increment(self, key: u64, amount: i64) -> Self {
        self.mop(Mop::increment(key, amount))
    }

    /// `add(k, e)`
    pub fn add_to_set(self, key: u64, elem: u64) -> Self {
        self.mop(Mop::add_to_set(key, elem))
    }

    /// Unobserved read `r(k, ?)`
    pub fn read(self, key: u64) -> Self {
        self.mop(Mop::read(key))
    }

    /// Observed list read `r(k, [..])`
    pub fn read_list<I: IntoIterator<Item = u64>>(self, key: u64, items: I) -> Self {
        self.mop(Mop::read_list(key, items))
    }

    /// Observed register read; `None` reads the initial `nil`.
    pub fn read_register(self, key: u64, value: Option<u64>) -> Self {
        self.mop(Mop::read_register(key, value))
    }

    /// Observed counter read.
    pub fn read_counter(self, key: u64, value: i64) -> Self {
        self.mop(Mop::read_counter(key, value))
    }

    /// Observed set read.
    pub fn read_set<I: IntoIterator<Item = u64>>(self, key: u64, items: I) -> Self {
        self.mop(Mop::read_set(key, items))
    }

    /// Observed read with an explicit [`ReadValue`].
    pub fn read_value(self, key: u64, value: ReadValue) -> Self {
        self.mop(Mop::Read {
            key: Key(key),
            value: Some(value),
        })
    }

    fn finish(self, status: TxnStatus) -> TxnId {
        let id = TxnId(self.owner.txns.len() as u32);
        self.owner.txns.push(Transaction {
            id,
            process: self.process,
            mops: self.mops,
            status,
            invoke_index: self.invoke_index,
            complete_index: self.complete_index,
            timestamps: self.timestamps,
        });
        id
    }

    /// Finish as committed; returns the transaction's id.
    pub fn commit(self) -> TxnId {
        self.finish(TxnStatus::Committed)
    }

    /// Finish as aborted; returns the transaction's id.
    pub fn abort(self) -> TxnId {
        self.finish(TxnStatus::Aborted)
    }

    /// Finish with unknown outcome; returns the transaction's id.
    pub fn indeterminate(self) -> TxnId {
        self.finish(TxnStatus::Indeterminate)
    }
}

/// Convenience: the written elements of a history must be unique per key for
/// recoverability; this helper reports `(key, elem)` pairs written more than
/// once, which generators use as a self-check.
pub fn duplicate_written_elems(h: &History) -> Vec<(Key, Elem)> {
    use rustc_hash::FxHashMap;
    let mut seen: FxHashMap<(Key, Elem), u32> = FxHashMap::default();
    for t in h.txns() {
        for (_, k, e) in t.elem_writes() {
            *seen.entry((k, e)).or_insert(0) += 1;
        }
    }
    let mut dups: Vec<(Key, Elem)> = seen
        .into_iter()
        .filter_map(|(ke, n)| (n > 1).then_some(ke))
        .collect();
    dups.sort_unstable();
    dups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_realtime_by_default() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        let h = b.build();
        let (t0, t1) = (h.get(TxnId(0)), h.get(TxnId(1)));
        assert!(t0.complete_index.unwrap() < t1.invoke_index);
    }

    #[test]
    fn at_overrides_placement() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(10)).commit();
        b.txn(1).append(1, 2).at(5, Some(6)).commit();
        let h = b.build();
        // Concurrent: neither strictly precedes the other? T1 is inside T0.
        let (t0, t1) = (h.get(TxnId(0)), h.get(TxnId(1)));
        assert!(t0.invoke_index < t1.invoke_index);
        assert!(t1.complete_index.unwrap() < t0.complete_index.unwrap());
    }

    #[test]
    fn never_completed() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, None).indeterminate();
        let h = b.build();
        assert_eq!(h.get(TxnId(0)).complete_index, None);
    }

    #[test]
    fn all_mop_helpers() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .write(2, 2)
            .increment(3, 4)
            .add_to_set(4, 5)
            .read(5)
            .read_list(1, [1])
            .read_register(2, Some(2))
            .read_counter(3, 4)
            .read_set(4, [5])
            .read_value(1, ReadValue::list([1]))
            .commit();
        let h = b.build();
        assert_eq!(h.get(TxnId(0)).mops.len(), 10);
    }

    #[test]
    fn duplicate_detection() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).commit();
        b.txn(1).append(1, 7).commit();
        b.txn(2).append(2, 7).commit(); // different key: fine
        let h = b.build();
        assert_eq!(duplicate_written_elems(&h), vec![(Key(1), Elem(7))]);
    }
}
