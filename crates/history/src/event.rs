//! The flat event log a test harness records.

use crate::{Mop, ProcessId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of event this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A client submitted a transaction; reads carry no values yet.
    Invoke,
    /// The transaction definitely committed.
    Ok,
    /// The transaction definitely aborted.
    Fail,
    /// The outcome is unknown (timeout / crash / lost response).
    Info,
}

impl EventKind {
    /// Is this a completion (anything but `Invoke`)?
    pub fn is_completion(self) -> bool {
        !matches!(self, EventKind::Invoke)
    }
}

/// One entry in the event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the log. Doubles as the real-time order.
    pub index: usize,
    /// The logical process performing the transaction.
    pub process: ProcessId,
    /// Invoke / Ok / Fail / Info.
    pub kind: EventKind,
    /// The transaction body. In completions, reads carry observed values.
    pub mops: Vec<Mop>,
    /// Optional wall-clock timestamp in nanoseconds.
    pub time_ns: Option<u64>,
}

/// An append-only log of [`Event`]s, in real-time order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, assigning its index. Returns the index.
    pub fn push(&mut self, process: ProcessId, kind: EventKind, mops: Vec<Mop>) -> usize {
        self.push_at(process, kind, mops, None)
    }

    /// Append an event with an explicit timestamp.
    pub fn push_at(
        &mut self,
        process: ProcessId,
        kind: EventKind,
        mops: Vec<Mop>,
        time_ns: Option<u64>,
    ) -> usize {
        let index = self.events.len();
        self.events.push(Event {
            index,
            process,
            kind,
            mops,
            time_ns,
        });
        index
    }

    /// Build a log from pre-indexed events (e.g. parsed from NDJSON).
    ///
    /// Indices must be strictly increasing — they double as the
    /// real-time order — but need not be contiguous, so a log exported
    /// from a history with sparse indices round-trips. Returns the
    /// position of the first offending event on failure.
    pub fn from_events(events: Vec<Event>) -> Result<EventLog, usize> {
        for (i, w) in events.windows(2).enumerate() {
            if w[1].index <= w[0].index {
                return Err(i + 1);
            }
        }
        Ok(EventLog { events })
    }

    /// Build a log from events already validated to be in strictly
    /// increasing index order (e.g. by an ingestor that checked each
    /// line as it arrived). Cheaper than [`EventLog::from_events`] and
    /// cannot fail; debug builds still assert the invariant.
    pub(crate) fn from_ordered(events: Vec<Event>) -> EventLog {
        debug_assert!(events.windows(2).all(|w| w[0].index < w[1].index));
        EventLog { events }
    }

    /// All events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume the log, yielding its events in order.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            EventKind::Invoke => "invoke",
            EventKind::Ok => "ok",
            EventKind::Fail => "fail",
            EventKind::Info => "info",
        };
        write!(f, "{:>6} {:>4} {:<6} [", self.index, self.process, kind)?;
        for (i, m) in self.mops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_indices() {
        let mut log = EventLog::new();
        let a = log.push(ProcessId(0), EventKind::Invoke, vec![Mop::read(1)]);
        let b = log.push(ProcessId(0), EventKind::Ok, vec![Mop::read_list(1, [])]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.events()[1].kind, EventKind::Ok);
    }

    #[test]
    fn completion_kinds() {
        assert!(!EventKind::Invoke.is_completion());
        assert!(EventKind::Ok.is_completion());
        assert!(EventKind::Fail.is_completion());
        assert!(EventKind::Info.is_completion());
    }

    #[test]
    fn display_is_stable() {
        let mut log = EventLog::new();
        log.push(ProcessId(3), EventKind::Invoke, vec![Mop::append(1, 2)]);
        let s = log.events()[0].to_string();
        assert!(s.contains("p3"), "{s}");
        assert!(s.contains("invoke"), "{s}");
        assert!(s.contains("append(1, 2)"), "{s}");
    }
}
