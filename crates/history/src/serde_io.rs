//! JSON import/export of histories, and the NDJSON event-per-line
//! wire format consumed by `elle-stream`.
//!
//! The whole-history format is the serde representation of [`History`].
//! It is stable enough to move histories between the generator, the
//! checker binaries, and EXPERIMENTS.md artifacts. (Jepsen itself uses
//! EDN; JSON is the closest widely-supported equivalent and round-trips
//! all our types.)
//!
//! The **NDJSON** format is one [`Event`] per line, in real-time order —
//! the shape a live harness naturally emits and an incremental checker
//! naturally consumes: each line is self-contained, a truncated file is
//! a valid prefix, and `tail -f` composes. Indices must be strictly
//! increasing but may be sparse (so exporting a hand-built history and
//! re-pairing reproduces it exactly).

use crate::ingest::{events_from_ndjson_with, IngestError, RecoveryPolicy};
use crate::{Event, EventLog, History, Mop, TxnStatus};
use serde::de::Error as _;

/// Serialize a history to a JSON string.
pub fn history_to_json(h: &History) -> String {
    // History's serde impls are plain data; serialization cannot fail.
    serde_json::to_string(h).expect("history serialization is infallible")
}

/// Parse a history from JSON.
pub fn history_from_json(s: &str) -> Result<History, serde_json::Error> {
    let h: History = serde_json::from_str(s)?;
    // Ids must match positions; re-derive rather than trusting input.
    for (i, t) in h.txns().iter().enumerate() {
        if t.id.idx() != i {
            return Err(serde_json::Error::custom(format!(
                "transaction at position {i} carries id {}",
                t.id
            )));
        }
    }
    Ok(h)
}

/// Serialize an event log as NDJSON: one JSON event per line, in order.
pub fn events_to_ndjson(log: &EventLog) -> String {
    let mut s = String::new();
    for ev in log.events() {
        s.push_str(&serde_json::to_string(ev).expect("event serialization is infallible"));
        s.push('\n');
    }
    s
}

/// Parse an NDJSON event stream strictly. Blank lines are skipped; any
/// other malformed line (bad JSON, non-increasing index) aborts with a
/// typed [`IngestError`] carrying its exact 1-based line and byte
/// position, so a producer can find it in a multi-gigabyte log. For
/// fault-tolerant parsing see
/// [`events_from_ndjson_with`](crate::events_from_ndjson_with).
pub fn events_from_ndjson(s: &str) -> Result<EventLog, IngestError> {
    events_from_ndjson_with(s, RecoveryPolicy::Strict).map(|(log, _)| log)
}

/// Export a history as an NDJSON event stream: each transaction becomes
/// an invoke line (reads unresolved) and, when it completed, an
/// `ok`/`fail`/`info` line, all sorted by event index.
///
/// Round-trip contract: for histories whose transaction order matches
/// their invocation order and whose event indices are distinct (every
/// paired or simulator-produced history; `HistoryBuilder` histories
/// unless `at()` was used to break ties), `events_from_ndjson(...)
/// .pair()` reproduces the history exactly. Database timestamps travel
/// as `time_ns` on the invoke and ok lines, like a live harness would
/// record them.
pub fn history_to_ndjson(h: &History) -> String {
    let mut events: Vec<Event> = Vec::new();
    for t in h.txns() {
        let invocation: Vec<Mop> = t.mops.iter().map(Mop::to_invocation).collect();
        events.push(Event {
            index: t.invoke_index,
            process: t.process,
            kind: crate::EventKind::Invoke,
            mops: invocation,
            time_ns: t.timestamps.map(|(s, _)| s),
        });
        if let Some(ci) = t.complete_index {
            let kind = match t.status {
                TxnStatus::Committed => crate::EventKind::Ok,
                TxnStatus::Aborted => crate::EventKind::Fail,
                TxnStatus::Indeterminate => crate::EventKind::Info,
            };
            events.push(Event {
                index: ci,
                process: t.process,
                kind,
                mops: t.mops.clone(),
                time_ns: match t.status {
                    TxnStatus::Committed => t.timestamps.map(|(_, c)| c),
                    _ => None,
                },
            });
        }
    }
    events.sort_by_key(|e| e.index);
    let mut s = String::new();
    for ev in &events {
        s.push_str(&serde_json::to_string(ev).expect("event serialization is infallible"));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn round_trip() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .read_list(1, [1])
            .read_register(2, None)
            .read_counter(3, 9)
            .read_set(4, [1, 2])
            .commit();
        b.txn(1).append(1, 2).abort();
        b.txn(2).append(1, 3).indeterminate();
        let h = b.build();
        let json = history_to_json(&h);
        let h2 = history_from_json(&json).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn rejects_mismatched_ids() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        let h = b.build();
        let json = history_to_json(&h).replace("\"id\":0", "\"id\":5");
        assert!(history_from_json(&json).is_err());
    }

    #[test]
    fn ndjson_round_trips_a_history() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .read_list(1, [1])
            .read_register(2, None)
            .read_counter(3, 9)
            .read_set(4, [1, 2])
            .commit();
        b.txn(1).append(1, 2).abort();
        b.txn(2).append(1, 3).indeterminate();
        b.txn(3).append(5, 4).at(100, None).indeterminate(); // never completed
        let h = b.build();
        let nd = history_to_ndjson(&h);
        // One line per event: 4 invokes + 3 completions.
        assert_eq!(nd.lines().count(), 7);
        let log = events_from_ndjson(&nd).expect("parses");
        let h2 = log.pair().expect("pairs");
        assert_eq!(h, h2);
        // And the event stream itself is stable.
        assert_eq!(events_to_ndjson(&log), nd);
    }

    #[test]
    fn ndjson_round_trips_timestamps() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).timestamps(7, 9).commit();
        let h = b.build();
        let h2 = events_from_ndjson(&history_to_ndjson(&h))
            .unwrap()
            .pair()
            .unwrap();
        assert_eq!(h2.get(crate::TxnId(0)).timestamps, Some((7, 9)));
        assert_eq!(h, h2);
    }

    #[test]
    fn ndjson_reports_malformed_line_position() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        let nd = history_to_ndjson(&b.build());
        let mut lines: Vec<&str> = nd.lines().collect();
        lines.insert(2, "{not json");
        let err = events_from_ndjson(&lines.join("\n")).unwrap_err();
        assert_eq!(err.pos.line, 3);
        assert!(matches!(err.cause, crate::IngestCause::Decode { .. }));
        assert!(err.to_string().starts_with("line 3 (byte "), "{err}");
    }

    #[test]
    fn ndjson_rejects_non_increasing_indices() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        let nd = history_to_ndjson(&b.build());
        let doubled = format!("{nd}{nd}");
        let err = events_from_ndjson(&doubled).unwrap_err();
        assert_eq!(err.pos.line, 3);
        assert!(matches!(err.cause, crate::IngestCause::Ordering { .. }));
        assert!(err.to_string().contains("not greater"), "{err}");
    }

    #[test]
    fn ndjson_skips_blank_lines() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        let nd = history_to_ndjson(&b.build()).replace('\n', "\n\n");
        let log = events_from_ndjson(&nd).unwrap();
        assert_eq!(log.len(), 2);
    }
}
