//! JSON import/export of histories.
//!
//! The wire format is the serde representation of [`History`]. It is stable
//! enough to move histories between the generator, the checker binaries, and
//! EXPERIMENTS.md artifacts. (Jepsen itself uses EDN; JSON is the closest
//! widely-supported equivalent and round-trips all our types.)

use crate::History;
use serde::de::Error as _;

/// Serialize a history to a JSON string.
pub fn history_to_json(h: &History) -> String {
    // History's serde impls are plain data; serialization cannot fail.
    serde_json::to_string(h).expect("history serialization is infallible")
}

/// Parse a history from JSON.
pub fn history_from_json(s: &str) -> Result<History, serde_json::Error> {
    let h: History = serde_json::from_str(s)?;
    // Ids must match positions; re-derive rather than trusting input.
    for (i, t) in h.txns().iter().enumerate() {
        if t.id.idx() != i {
            return Err(serde_json::Error::custom(format!(
                "transaction at position {i} carries id {}",
                t.id
            )));
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn round_trip() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .read_list(1, [1])
            .read_register(2, None)
            .read_counter(3, 9)
            .read_set(4, [1, 2])
            .commit();
        b.txn(1).append(1, 2).abort();
        b.txn(2).append(1, 3).indeterminate();
        let h = b.build();
        let json = history_to_json(&h);
        let h2 = history_from_json(&json).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn rejects_mismatched_ids() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        let h = b.build();
        let json = history_to_json(&h).replace("\"id\":0", "\"id\":5");
        assert!(history_from_json(&json).is_err());
    }
}
