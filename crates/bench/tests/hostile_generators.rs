//! Correctness pins for the hostile-history generator used by the
//! `sat_vs_dfs_hostile` bench sweep (see
//! `crates/bench/benches/sat_vs_dfs.rs`, where the generator is
//! documented and duplicated — criterion benches cannot export code).
//! Small sizes only: the point here is the *shape* (exponential DFS
//! state growth, verdicts per engine), not the timings.

use elle_core::{CheckOptions, Checker};
use elle_history::{History, HistoryBuilder};
use elle_knossos::{KnossosOptions, KnossosOutcome};
use elle_sat::{SatModel, SatOptions, SatVerdict};
use std::time::Duration;

/// Keep in sync with `hostile_register` in benches/sat_vs_dfs.rs.
fn hostile_register(writers: usize, valid: bool) -> History {
    let mut b = HistoryBuilder::new();
    b.txn(0).write(0, 0).at(0, Some(1)).commit();
    let base = 2;
    for i in 1..writers {
        b.txn(i as u32)
            .write(0, i as u64)
            .at(base + i, Some(base + writers + i))
            .commit();
    }
    let tail = base + 2 * writers + 2;
    let target = if valid { 1 } else { 0 };
    b.txn(writers as u32)
        .read_register(0, Some(target))
        .at(tail, Some(tail + 1))
        .commit();
    b.build()
}

fn dfs(h: &History) -> elle_knossos::KnossosResult {
    elle_knossos::check(
        h,
        KnossosOptions::default().with_budget(Duration::from_secs(30)),
    )
}

#[test]
fn needle_is_valid_but_forces_backtracking() {
    let r = dfs(&hostile_register(10, true));
    assert_eq!(r.outcome, KnossosOutcome::Ok);
    // Ten txns linearize in ten steps when the search is guided; the
    // needle forces three orders of magnitude more exploration.
    assert!(r.states_explored > 1_000, "only {}", r.states_explored);
}

#[test]
fn refutation_exhausts_exponentially_many_states() {
    let small = dfs(&hostile_register(8, false));
    let large = dfs(&hostile_register(10, false));
    assert_eq!(small.outcome, KnossosOutcome::Violation);
    assert_eq!(large.outcome, KnossosOutcome::Violation);
    // Two more concurrent writers must roughly quadruple the explored
    // state count (~writers * 2^writers); a guided search would grow
    // linearly and a broken fence would collapse it entirely.
    assert!(
        large.states_explored >= 3 * small.states_explored,
        "no blow-up: {} -> {}",
        small.states_explored,
        large.states_explored
    );
}

/// The refutation is found by the DFS *alone*: the cycle engine's
/// register inference cannot order the concurrent unread overwrites
/// (sound, not complete — the verdict stays ok), and the SAT engine's
/// PL-3 model has no real-time obligations, so it happily linearizes
/// the stale read. This asymmetry is the reason the hostile sweep
/// exists: on valid simulator histories dfs looks like the *cheapest*
/// engine, which badly misrepresents its worst case.
#[test]
fn only_the_dfs_refutes_the_stale_fenced_read() {
    let h = hostile_register(10, false);
    assert_eq!(dfs(&h).outcome, KnossosOutcome::Violation);
    let cy = Checker::new(CheckOptions::strict_serializable()).check(&h);
    assert!(
        cy.ok(),
        "cycle engine grew complete on registers — update the hostile sweep notes"
    );
    let sat = elle_sat::check(&h, SatModel::Serializable, &SatOptions::default());
    assert!(
        matches!(sat.verdict, SatVerdict::Satisfiable { .. }),
        "PL-3 SAT model grew real-time obligations — update the hostile sweep notes"
    );
}
