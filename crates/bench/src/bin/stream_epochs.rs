//! Per-epoch cost series for the streaming checker: feed a large
//! generated stream through `StreamChecker` with a fixed epoch size and
//! record each seal's wall-clock cost, next to what re-running the
//! batch checker over the same prefix would cost. The acceptance
//! criterion for `elle-stream` is that the incremental seal cost tracks
//! the epoch *delta* (near-flat across epochs) while the batch-recheck
//! cost grows with prefix length.
//!
//! ```sh
//! cargo run --release -p elle-bench --bin stream_epochs -- [txns] [epoch]
//! ```
//!
//! Prints a JSON object suitable for pasting into BENCH_checker.json.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::GenParams;
use elle_history::EventLog;
use elle_stream::StreamChecker;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_txns: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64_000);
    let epoch_txns: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8_000);
    let batch_every: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(20)
        .with_seed(n_txns as u64 + 20);
    eprintln!("generating {n_txns}-txn stream…");
    let log = elle_gen::run_workload_log(params, db);
    let events = log.events();
    let opts = CheckOptions::strict_serializable();

    let mut stream = StreamChecker::new(opts);
    let mut txns_since = 0usize;
    let mut rows: Vec<String> = Vec::new();
    let mut fed = 0usize;
    let mut epoch_ix = 0usize;
    while fed < events.len() {
        let ev = &events[fed];
        let is_invoke = ev.kind == elle_history::EventKind::Invoke;
        stream.ingest_event(ev).expect("well-formed stream");
        fed += 1;
        if is_invoke {
            txns_since += 1;
        }
        if txns_since >= epoch_txns || fed == events.len() {
            let t0 = Instant::now();
            let epoch = stream.seal_epoch();
            let seal_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Batch re-check of the same prefix (the cost a non-
            // incremental service would pay per epoch). Sampled every
            // `batch_every` epochs to keep large runs affordable.
            let batch_ms = if epoch_ix.is_multiple_of(batch_every) {
                let prefix = EventLog::from_events(events[..fed].to_vec())
                    .unwrap()
                    .pair()
                    .unwrap();
                let t0 = Instant::now();
                let report = Checker::new(opts).check(&prefix);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    serde_json::to_string(&epoch.report).unwrap(),
                    "streaming differential violated at epoch {epoch_ix}"
                );
                format!("{ms:.3}")
            } else {
                "null".to_string()
            };
            rows.push(format!(
                "    {{\"epoch\": {}, \"prefix_txns\": {}, \"seal_ms\": {:.3}, \"batch_recheck_ms\": {}, \"dirty_keys\": {}, \"scoped_txns\": {}, \"rebuilt\": {}}}",
                epoch_ix,
                epoch.txns,
                seal_ms,
                batch_ms,
                epoch.frontier.dirty_keys,
                epoch.frontier.scoped_txns,
                epoch.rebuilt,
            ));
            eprintln!(
                "epoch {epoch_ix}: prefix {} txns, seal {seal_ms:.1} ms, batch {batch_ms} ms",
                epoch.txns
            );
            txns_since = 0;
            epoch_ix += 1;
        }
    }

    println!("{{");
    println!("  \"stream\": \"{n_txns} txns, {epoch_txns}-txn epochs, list-append paper_perf, serializable sim\",");
    println!("  \"epochs\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
