//! §7.1–§7.4 case studies: run each simulated database bug and print the
//! anomaly inventory the paper reports, plus one example explanation.
//!
//! Usage: `case_studies [tidb|yugabyte|fauna|dgraph|all]` (default: all).

use elle_core::{CheckOptions, Checker, RegisterOptions, Report};
use elle_dbsim::{Bug, DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;

struct Scenario {
    name: &'static str,
    paper: &'static str,
    claimed: &'static str,
    kind: ObjectKind,
    isolation: IsolationLevel,
    bug: Bug,
    opts: CheckOptions,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "tidb",
            paper: "§7.1 TiDB 2.1.7–3.0.0-beta.1: silent transaction retry",
            claimed: "snapshot isolation",
            kind: ObjectKind::ListAppend,
            isolation: IsolationLevel::SnapshotIsolation,
            bug: Bug::SilentRetry,
            opts: CheckOptions::snapshot_isolation(),
        },
        Scenario {
            name: "yugabyte",
            paper: "§7.2 YugaByte DB 1.3.1: stale read timestamps after failover",
            claimed: "strict serializability",
            kind: ObjectKind::ListAppend,
            isolation: IsolationLevel::StrictSerializable,
            bug: Bug::StaleReadTimestamp {
                period: 400,
                window: 120,
                lag: 0,
            },
            opts: CheckOptions::strict_serializable(),
        },
        Scenario {
            name: "fauna",
            paper: "§7.3 FaunaDB 2.6.0: index reads miss tentative writes",
            claimed: "strict serializability",
            kind: ObjectKind::ListAppend,
            isolation: IsolationLevel::StrictSerializable,
            bug: Bug::IndexMissesOwnWrites { prob: 0.25 },
            opts: CheckOptions::strict_serializable(),
        },
        Scenario {
            name: "dgraph",
            paper: "§7.4 Dgraph 1.1.1: fresh-shard nil reads",
            claimed: "snapshot isolation + per-key linearizability",
            kind: ObjectKind::Register,
            isolation: IsolationLevel::SnapshotIsolation,
            bug: Bug::FreshShardNilReads {
                period: 300,
                window: 90,
                shards: 4,
            },
            opts: CheckOptions::snapshot_isolation()
                .with_process_edges(true)
                .with_realtime_edges(true)
                .with_registers(RegisterOptions {
                    initial_state: true,
                    writes_follow_reads: true,
                    sequential_keys: true,
                    linearizable_keys: true,
                }),
        },
    ]
}

fn run_scenario(s: &Scenario, seed: u64) -> (History, Report) {
    let params = GenParams {
        n_txns: 600,
        min_txn_len: 2,
        max_txn_len: 5,
        active_keys: 4,
        writes_per_key: 128,
        read_prob: 0.5,
        kind: s.kind,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(s.isolation, s.kind)
        .with_processes(8)
        .with_seed(seed)
        .with_bug(s.bug);
    let h = run_workload(params, db).expect("history pairs");
    let r = Checker::new(s.opts).check(&h);
    (h, r)
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    for s in scenarios() {
        if which != "all" && which != s.name {
            continue;
        }
        println!("════════════════════════════════════════════════════════");
        println!("{}", s.paper);
        println!("claimed: {}", s.claimed);
        println!("injected bug: {:?}", s.bug);
        println!("────────────────────────────────────────────────────────");

        // Aggregate over a few seeds, as the paper aggregates over runs.
        let mut counts: std::collections::BTreeMap<elle_core::AnomalyType, usize> =
            Default::default();
        let mut example: Option<String> = None;
        for seed in 1..=4 {
            let (_, r) = run_scenario(&s, seed);
            for (t, n) in &r.anomaly_counts {
                *counts.entry(*t).or_insert(0) += n;
            }
            if example.is_none() {
                example = r
                    .anomalies
                    .iter()
                    .find(|a| a.typ.is_cycle() || !a.explanation.is_empty())
                    .map(|a| format!("{a}"));
            }
        }
        if counts.is_empty() {
            println!("no anomalies (unexpected for a bugged engine!)");
        } else {
            println!("anomalies over 4 runs × 600 txns:");
            for (t, n) in &counts {
                println!("  {t}: {n}");
            }
        }
        let (_, r) = run_scenario(&s, 1);
        println!(
            "verdict: claimed model {}",
            if r.ok() { "HOLDS (!!)" } else { "VIOLATED" }
        );
        println!(
            "strongest tenable: {}",
            r.strongest_satisfiable
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        if let Some(e) = example {
            println!("example witness:\n{e}");
        }
        println!();
    }
}
