//! Figures 2 & 3: the paper's G-single cycle over keys 250–256, rendered
//! as a textual explanation (Figure 2) and as Graphviz DOT (Figure 3,
//! with `--dot`).

use elle_core::{AnomalyType, CheckOptions, Checker};
use elle_history::HistoryBuilder;

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");

    // Seed transactions establish the version orders the paper's reads
    // imply: 253 = [1 3 4], 255 = [2 3 4 5 8], 256 = [1 2 4 3].
    let mut b = HistoryBuilder::new();
    b.txn(9)
        .append(253, 1)
        .append(253, 3)
        .append(253, 4)
        .commit();
    b.txn(9)
        .append(255, 2)
        .append(255, 3)
        .append(255, 4)
        .append(255, 5)
        .commit();
    b.txn(9).append(256, 1).append(256, 2).commit();

    // The paper's T1, T2, T3 (Figure 2), concurrent with one another.
    let t1 = b
        .txn(0)
        .append(250, 10)
        .read_list(253, [1, 3, 4])
        .read_list(255, [2, 3, 4, 5])
        .append(256, 3)
        .at(10, Some(20))
        .commit();
    let t2 = b
        .txn(1)
        .append(255, 8)
        .read_list(253, [1, 3, 4])
        .at(11, Some(19))
        .commit();
    let t3 = b
        .txn(2)
        .append(256, 4)
        .read_list(255, [2, 3, 4, 5, 8])
        .read_list(256, [1, 2, 4])
        .read_list(253, [1, 3, 4])
        .at(12, Some(18))
        .commit();
    // A final observer witnessing that T1's append of 3 to 256 landed
    // after T3's append of 4.
    b.txn(9)
        .read_list(256, [1, 2, 4, 3])
        .at(21, Some(22))
        .commit();

    let history = b.build();
    let report = Checker::new(CheckOptions::strict_serializable()).check(&history);

    let Some(anomaly) = report.of_type(AnomalyType::GSingle).next() else {
        eprintln!("expected a G-single cycle; report:\n{}", report.summary());
        std::process::exit(1);
    };

    if dot {
        // Figure 3: the cycle as a graph.
        print!("{}", elle_core::explain::cycle_dot(&anomaly.steps));
    } else {
        println!("G-single (read skew), as in Figure 2 of the paper:");
        println!();
        print!("{}", anomaly.explanation);
        println!();
        println!(
            "(involving transactions {}; T1/T2/T3 of the paper are {}, {}, {})",
            anomaly
                .txns
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            t1,
            t2,
            t3
        );
    }
}
