//! Figure 1: the object/datatype table, demonstrated live.
//!
//! Prints each object's initial version and write semantics, then runs a
//! two-write-one-read demo through the simulator to show the version the
//! paper's table predicts.

use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind, SimDb};
use elle_history::{Mop, ProcessId};

fn demo(kind: ObjectKind, writes: [Mop; 2]) -> String {
    let mut queue = vec![
        vec![writes[0].clone()],
        vec![writes[1].clone()],
        vec![Mop::read(0)],
    ]
    .into_iter();
    let mut source = |_p: ProcessId| queue.next();
    let cfg = DbConfig::new(IsolationLevel::StrictSerializable, kind).with_processes(1);
    let h = SimDb::new(cfg).run_history(&mut source).expect("pairs");
    match &h.txns().last().unwrap().mops[0] {
        Mop::Read { value: Some(v), .. } => v.to_string(),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Figure 1: Example objects");
    println!();
    println!(
        "{:<12} {:<10} {:<8} {:<34} demo: two writes then a read",
        "Object", "Versions", "x_init", "Write semantics"
    );
    let rows = [
        (
            "Register",
            "Any",
            "nil",
            "w(xi, a) -> (a, nil)",
            demo(ObjectKind::Register, [Mop::write(0, 1), Mop::write(0, 2)]),
        ),
        (
            "Counter",
            "Integers",
            "0",
            "w(xi, a) -> (xi + a, nil)",
            demo(
                ObjectKind::Counter,
                [Mop::increment(0, 1), Mop::increment(0, 2)],
            ),
        ),
        (
            "Set",
            "Add Sets",
            "{}",
            "w(xi, a) -> (xi ∪ {a}, nil)",
            demo(
                ObjectKind::Set,
                [Mop::add_to_set(0, 1), Mop::add_to_set(0, 2)],
            ),
        ),
        (
            "List",
            "Lists",
            "[]",
            "w([e1..en], a) -> ([e1..en, a], nil)",
            demo(
                ObjectKind::ListAppend,
                [Mop::append(0, 1), Mop::append(0, 2)],
            ),
        ),
    ];
    for (obj, versions, init, semantics, result) in rows {
        println!("{obj:<12} {versions:<10} {init:<8} {semantics:<34} r(x) = {result}");
    }
    println!();
    println!(
        "Only list append is traceable: its final version above encodes the\n\
         entire version history, which is what lets Elle recover ww/wr/rw\n\
         dependencies (§3 of the paper)."
    );
}
