//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Traceability**: run the *same schedule* as list-append vs register
//!    workloads and compare what the checker recovers (§3's motivation for
//!    richer datatypes).
//! 2. **Recoverability**: corrupt a history by folding append arguments
//!    onto a small range (duplicates) and watch inference degrade
//!    (§4.2.3's unique-argument requirement).
//! 3. **Edge sources**: value edges only vs +process vs +realtime — what
//!    each order contributes (§5.1).
//! 4. **Transitive reduction**: realtime edge counts with and without the
//!    interval-order reduction.

use elle_core::{CheckOptions, Checker, DepGraph};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::{History, Mop};
use std::time::Instant;

fn contended(kind: ObjectKind, iso: IsolationLevel, seed: u64) -> History {
    let params = GenParams {
        n_txns: 800,
        min_txn_len: 2,
        max_txn_len: 5,
        active_keys: 4,
        writes_per_key: 128,
        read_prob: 0.5,
        kind,
        seed,
        final_reads: false,
    };
    let db = DbConfig::new(iso, kind).with_processes(8).with_seed(seed);
    run_workload(params, db).expect("history pairs")
}

fn count_by_base(r: &elle_core::Report) -> String {
    let mut out: Vec<String> = Vec::new();
    for (t, n) in &r.anomaly_counts {
        out.push(format!("{t}={n}"));
    }
    if out.is_empty() {
        "none".to_string()
    } else {
        out.join(", ")
    }
}

fn main() {
    println!("── Ablation 1: traceability (list-append vs register) ──");
    println!("same generator shape, same weak engine (read committed):");
    for kind in [ObjectKind::ListAppend, ObjectKind::Register] {
        let h = contended(kind, IsolationLevel::ReadCommitted, 11);
        let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
        let edges: usize = r.stats.edges.values().sum();
        println!(
            "  {kind:?}: {} dependency edges, anomalies: {}",
            edges,
            count_by_base(&r)
        );
    }
    println!(
        "  (lists recover full version orders; registers only what §5's\n\
         assumptions license — expect fewer edges and weaker findings)"
    );
    println!();

    println!("── Ablation 2: recoverability (unique vs duplicated arguments) ──");
    let h = contended(ObjectKind::ListAppend, IsolationLevel::ReadCommitted, 13);
    let r = Checker::new(CheckOptions::strict_serializable()).check(&h);
    println!("  unique arguments:     {}", count_by_base(&r));
    let corrupted = fold_elements(&h, 17);
    let r2 = Checker::new(CheckOptions::strict_serializable()).check(&corrupted);
    println!("  arguments mod 17:     {}", count_by_base(&r2));
    println!(
        "  (duplicate writes destroy the element→transaction mapping; keys\n\
         are excluded from inference and real anomalies go unreported)"
    );
    println!();

    println!("── Ablation 3: edge sources (value / +process / +realtime) ──");
    let h = {
        // A serializable engine with stale read-only snapshots: clean at
        // the value level, dirty at session/realtime levels.
        let params = GenParams::paper_perf(1_000).with_seed(23);
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(8)
            .with_seed(23)
            .with_stale_readonly(0.8, 6);
        run_workload(params, db).expect("history pairs")
    };
    for (label, process, realtime) in [
        ("value edges only ", false, false),
        ("value + process  ", true, false),
        ("value + realtime ", true, true),
    ] {
        let opts = CheckOptions::strict_serializable()
            .with_process_edges(process)
            .with_realtime_edges(realtime);
        let t0 = Instant::now();
        let r = Checker::new(opts).check(&h);
        println!(
            "  {label}: {:>7.3}s  anomalies: {}",
            t0.elapsed().as_secs_f64(),
            count_by_base(&r)
        );
    }
    println!();

    println!("── Ablation 4: realtime transitive reduction ──");
    let h = contended(ObjectKind::ListAppend, IsolationLevel::Serializable, 29);
    let committed: Vec<&elle_history::Transaction> = h.committed().collect();
    // Reduced edges (what the checker materializes):
    let mut reduced = DepGraph::with_txns(h.len());
    elle_core::add_realtime_edges(&mut reduced, &h);
    reduced.build();
    // Full order for comparison:
    let mut full = 0usize;
    for a in &committed {
        for b in &committed {
            if let Some(ca) = a.complete_index {
                if ca < b.invoke_index {
                    full += 1;
                }
            }
        }
    }
    println!(
        "  committed txns: {}, full realtime order: {} edges, reduction: {} edges",
        committed.len(),
        full,
        reduced.edge_count()
    );
    println!("  (the reduction preserves all cycles at a fraction of the edges)");
}

/// Corrupt a history by folding elements onto a small range, destroying
/// argument uniqueness (and thus recoverability).
fn fold_elements(h: &History, modulus: u64) -> History {
    let mut txns = h.txns().to_vec();
    for t in &mut txns {
        for m in &mut t.mops {
            if let Mop::Append { elem, .. } = m {
                elem.0 %= modulus;
            }
            if let Mop::Read {
                value: Some(elle_history::ReadValue::List(v)),
                ..
            } = m
            {
                for e in v {
                    e.0 %= modulus;
                }
            }
        }
    }
    History::from_txns(txns)
}
