//! Figure 4: runtime vs history length for Elle and Knossos at various
//! concurrencies.
//!
//! The paper's setup (§7.5): histories from a simulated
//! serializable-snapshot-isolated database; transactions of 1–5 operations
//! over 100 keys with 100 appends per key; history lengths up to 100,000
//! operations; concurrencies c ∈ {1, 5, 10, 20, 40, 100}; Knossos capped
//! at 100 seconds.
//!
//! Defaults here are scaled down so the sweep finishes in minutes; pass
//! `--full` for the paper-scale sweep and `--budget <secs>` to change the
//! Knossos cap (default 10 s, paper used 100 s).
//!
//! Output: CSV on stdout —
//! `ops,concurrency,elle_s,elle_anomalies,knossos_s,knossos_outcome`.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_knossos::{KnossosOptions, KnossosOutcome};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let budget = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(if full { 100 } else { 10 });

    // Transaction counts; ~3 mops per txn on average.
    let lengths: Vec<usize> = if full {
        vec![1_000, 3_000, 10_000, 33_000, 100_000]
    } else {
        vec![300, 1_000, 3_000, 10_000]
    };
    let concurrencies: Vec<usize> = vec![1, 5, 10, 20, 40, 100];

    println!("ops,concurrency,elle_s,elle_anomalies,knossos_s,knossos_outcome");
    for &c in &concurrencies {
        for &n_txns in &lengths {
            let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64 ^ c as u64);
            let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
                .with_processes(c)
                .with_seed(7 * c as u64 + n_txns as u64);
            let h = run_workload(params, db).expect("history pairs");
            let ops = h.mop_count();

            let t0 = Instant::now();
            let report = Checker::new(CheckOptions::strict_serializable()).check(&h);
            let elle_s = t0.elapsed().as_secs_f64();

            let kres = elle_knossos::check(
                &h,
                KnossosOptions::default().with_budget(Duration::from_secs(budget)),
            );
            let outcome = match kres.outcome {
                KnossosOutcome::Ok => "ok",
                KnossosOutcome::Violation => "violation",
                KnossosOutcome::Unknown => "timeout",
            };
            println!(
                "{ops},{c},{elle_s:.4},{},{:.4},{outcome}",
                report.anomalies.len(),
                kres.elapsed.as_secs_f64(),
            );
        }
    }
}
