//! §7.5 scaling claims, Elle only: "able to check histories of hundreds
//! of thousands of transactions in tens of seconds … primarily linear in
//! the length of a history and effectively constant with respect to
//! concurrency."
//!
//! Sweeps history length (to 300k txns by default, 1M with `--full`) and
//! concurrency, printing CSV: `txns,ops,concurrency,elle_s,ops_per_s`.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let timing = std::env::args().any(|a| a == "--timing");
    let lengths: Vec<usize> = if full {
        vec![10_000, 30_000, 100_000, 300_000, 1_000_000]
    } else {
        vec![10_000, 30_000, 100_000, 300_000]
    };

    println!("txns,ops,concurrency,elle_s,ops_per_s");
    // Length sweep at fixed concurrency.
    for &n in &lengths {
        row(n, 20, timing);
    }
    // Concurrency sweep at fixed length: "effectively constant".
    for c in [1, 5, 10, 20, 40, 100, 1000] {
        row(if full { 100_000 } else { 30_000 }, c, timing);
    }
}

fn row(n_txns: usize, c: usize, timing: bool) {
    let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(c)
        .with_seed(n_txns as u64 + c as u64);
    let h = run_workload(params, db).expect("history pairs");
    let ops = h.mop_count();
    let checker = Checker::new(CheckOptions::strict_serializable());
    let t0 = Instant::now();
    let (report, stages) = if timing {
        let (r, s) = checker.check_timed(&h);
        (r, Some(s))
    } else {
        (checker.check(&h), None)
    };
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.ok(), "serializable engine must stay clean");
    println!(
        "{n_txns},{ops},{c},{secs:.3},{:.0}",
        ops as f64 / secs.max(1e-9)
    );
    if let Some(stages) = stages {
        eprintln!("# {n_txns} txns, {c} procs:");
        eprint!("{}", stages.render());
    }
}
