//! §7.5 scaling claims, Elle only: "able to check histories of hundreds
//! of thousands of transactions in tens of seconds … primarily linear in
//! the length of a history and effectively constant with respect to
//! concurrency."
//!
//! Sweeps history length (to 300k txns by default, 1M with `--full`) and
//! concurrency, printing CSV: `txns,ops,concurrency,elle_s,ops_per_s`.
//!
//! `--lengths 256000,1000000` overrides the length sweep (and skips the
//! concurrency sweep); `--samples 3` re-checks each row that many times
//! and reports the median — the container's wall clock is noisy, so
//! paired before/after comparisons want medians over single shots.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let timing = std::env::args().any(|a| a == "--timing");
    let samples: usize = arg_value("--samples")
        .map(|v| v.parse().expect("--samples N"))
        .unwrap_or(1)
        .max(1);
    let lengths_override: Option<Vec<usize>> = arg_value("--lengths").map(|v| {
        v.split(',')
            .map(|s| s.trim().parse().expect("--lengths n1,n2,…"))
            .collect()
    });
    let lengths: Vec<usize> = match &lengths_override {
        Some(l) => l.clone(),
        None if full => vec![10_000, 30_000, 100_000, 300_000, 512_000, 1_000_000],
        None => vec![10_000, 30_000, 100_000, 300_000],
    };

    println!("txns,ops,concurrency,elle_s,ops_per_s");
    // Length sweep at fixed concurrency.
    for &n in &lengths {
        row(n, 20, timing, samples);
    }
    // Concurrency sweep at fixed length: "effectively constant".
    if lengths_override.is_none() {
        for c in [1, 5, 10, 20, 40, 100, 1000] {
            row(if full { 100_000 } else { 30_000 }, c, timing, samples);
        }
    }
}

fn row(n_txns: usize, c: usize, timing: bool, samples: usize) {
    let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(c)
        .with_seed(n_txns as u64 + c as u64);
    let h = run_workload(params, db).expect("history pairs");
    let ops = h.mop_count();
    let checker = Checker::new(CheckOptions::strict_serializable());
    let mut times = Vec::with_capacity(samples);
    let mut last_stages = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let (report, stages) = if timing {
            let (r, s) = checker.check_timed(&h);
            (r, Some(s))
        } else {
            (checker.check(&h), None)
        };
        times.push(t0.elapsed().as_secs_f64());
        last_stages = stages;
        assert!(report.ok(), "serializable engine must stay clean");
    }
    times.sort_by(f64::total_cmp);
    let secs = times[times.len() / 2];
    println!(
        "{n_txns},{ops},{c},{secs:.3},{:.0}",
        ops as f64 / secs.max(1e-9)
    );
    if let Some(stages) = last_stages {
        eprintln!("# {n_txns} txns, {c} procs:");
        eprint!("{}", stages.render());
    }
}
