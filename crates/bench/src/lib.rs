//! Bench harness crate; see the binaries in src/bin and benches/.
