//! Criterion microbenchmarks for the graph substrate: Tarjan SCC and
//! cycle search on the legacy `DiGraph` vs. the frozen CSR, plus the
//! freeze cost, edge-mask lookups, and the interval-order reduction.
//! `BENCH_graph.json` at the repo root records these series.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elle_graph::{
    find_cycle_with_single, interval_order_reduction, tarjan_scc, DiGraph, EdgeClass, EdgeMask,
    Interval, Scratch,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: u32, edges_per_vertex: u32, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DiGraph::with_vertices(n as usize);
    for v in 0..n {
        for _ in 0..edges_per_vertex {
            let w = rng.gen_range(0..n);
            let class = match rng.gen_range(0..3) {
                0 => EdgeClass::Ww,
                1 => EdgeClass::Wr,
                _ => EdgeClass::Rw,
            };
            g.add_edge(v, w, class);
        }
    }
    g
}

fn bench_tarjan(c: &mut Criterion) {
    let mut grp = c.benchmark_group("tarjan_scc");
    for n in [10_000u32, 100_000] {
        let g = random_graph(n, 3, 1);
        let csr = g.freeze();
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::new("digraph", n), &g, |b, g| {
            b.iter(|| tarjan_scc(g, EdgeMask::ALL))
        });
        grp.bench_with_input(BenchmarkId::new("csr", n), &csr, |b, csr| {
            let mut scratch = Scratch::new();
            b.iter(|| csr.tarjan_scc(EdgeMask::ALL, &mut scratch))
        });
    }
    grp.finish();
}

fn bench_freeze(c: &mut Criterion) {
    let mut grp = c.benchmark_group("freeze");
    for n in [10_000u32, 100_000] {
        let g = random_graph(n, 3, 1);
        grp.throughput(Throughput::Elements(g.edge_count() as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| g.freeze())
        });
    }
    grp.finish();
}

fn bench_edge_mask(c: &mut Criterion) {
    // The hot lookup removed from the Tarjan inner loop: hash-map probe
    // (legacy) vs. sorted-row binary search (CSR).
    let mut grp = c.benchmark_group("edge_mask_lookup");
    let n = 10_000u32;
    let g = random_graph(n, 3, 7);
    let csr = g.freeze();
    let mut rng = SmallRng::seed_from_u64(9);
    let probes: Vec<(u32, u32)> = (0..10_000)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    grp.throughput(Throughput::Elements(probes.len() as u64));
    grp.bench_with_input(BenchmarkId::new("digraph", n), &probes, |b, probes| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(s, d) in probes {
                acc += g.edge_mask(s, d).0 as u32;
            }
            black_box(acc)
        })
    });
    grp.bench_with_input(BenchmarkId::new("csr", n), &probes, |b, probes| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(s, d) in probes {
                acc += csr.edge_mask(s, d).0 as u32;
            }
            black_box(acc)
        })
    });
    grp.finish();
}

fn bench_cycle_search(c: &mut Criterion) {
    let mut grp = c.benchmark_group("g_single_search");
    for n in [10_000u32, 100_000] {
        let g = random_graph(n, 3, 2);
        let csr = g.freeze();
        let sccs = tarjan_scc(&g, EdgeMask::ALL);
        let comp = sccs.into_iter().max_by_key(Vec::len).unwrap_or_default();
        grp.bench_with_input(BenchmarkId::new("digraph", n), &comp, |b, comp| {
            b.iter(|| {
                find_cycle_with_single(&g, comp, EdgeMask::RW, EdgeMask::WW | EdgeMask::WR, 4)
            })
        });
        grp.bench_with_input(BenchmarkId::new("csr", n), &comp, |b, comp| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                csr.find_cycle_with_single(
                    comp,
                    EdgeMask::RW,
                    EdgeMask::WW | EdgeMask::WR,
                    4,
                    &mut scratch,
                )
            })
        });
    }
    grp.finish();
}

/// Edge construction: the legacy hash-indexed `DiGraph` build + freeze
/// versus the sort-based `EdgeBuf` bulk build — the hot path this
/// substrate exists for (dependency-graph assembly from flat edge
/// emissions).
fn bench_edge_construction(c: &mut Criterion) {
    use elle_graph::EdgeBuf;
    let mut grp = c.benchmark_group("edge_construction");
    for n in [10_000u32, 100_000] {
        let epv = 5u32;
        // Pre-generate the raw edge tuples once so both legs measure
        // construction only.
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let tuples: Vec<(u32, u32, EdgeClass)> = (0..n)
            .flat_map(|v| {
                let mut out = Vec::with_capacity(epv as usize);
                for _ in 0..epv {
                    let w = rng.gen_range(0..n);
                    let class = match rng.gen_range(0..3) {
                        0 => EdgeClass::Ww,
                        1 => EdgeClass::Wr,
                        _ => EdgeClass::Rw,
                    };
                    out.push((v, w, class));
                }
                out
            })
            .collect();
        grp.throughput(Throughput::Elements(tuples.len() as u64));
        grp.bench_with_input(BenchmarkId::new("hash_digraph", n), &tuples, |b, tuples| {
            b.iter(|| {
                let mut g = DiGraph::with_vertices(n as usize);
                for &(s, d, c) in tuples {
                    g.add_edge(s, d, c);
                }
                g.freeze()
            })
        });
        grp.bench_with_input(BenchmarkId::new("sort_edgebuf", n), &tuples, |b, tuples| {
            b.iter(|| {
                let mut buf = EdgeBuf::with_capacity(tuples.len());
                for &(s, d, c) in tuples {
                    buf.push(s, d, EdgeMask::of(c));
                }
                buf.build(n as usize)
            })
        });
    }
    grp.finish();
}

fn bench_interval_reduction(c: &mut Criterion) {
    let mut grp = c.benchmark_group("interval_order_reduction");
    for n in [10_000usize, 100_000] {
        // p-way staggered intervals.
        let p = 20;
        let items: Vec<Interval> = (0..n)
            .map(|i| Interval {
                invoke: i * 2,
                complete: Some(i * 2 + p),
            })
            .collect();
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| interval_order_reduction(items))
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_tarjan,
    bench_freeze,
    bench_edge_mask,
    bench_cycle_search,
    bench_edge_construction,
    bench_interval_reduction
);
criterion_main!(benches);
