//! Criterion microbenchmarks for the graph substrate: Tarjan SCC, cycle
//! search, and the interval-order reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elle_graph::{
    find_cycle_with_single, interval_order_reduction, tarjan_scc, DiGraph, EdgeClass, EdgeMask,
    Interval,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: u32, edges_per_vertex: u32, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DiGraph::with_vertices(n as usize);
    for v in 0..n {
        for _ in 0..edges_per_vertex {
            let w = rng.gen_range(0..n);
            let class = match rng.gen_range(0..3) {
                0 => EdgeClass::Ww,
                1 => EdgeClass::Wr,
                _ => EdgeClass::Rw,
            };
            g.add_edge(v, w, class);
        }
    }
    g
}

fn bench_tarjan(c: &mut Criterion) {
    let mut grp = c.benchmark_group("tarjan_scc");
    for n in [10_000u32, 100_000] {
        let g = random_graph(n, 3, 1);
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| tarjan_scc(g, EdgeMask::ALL))
        });
    }
    grp.finish();
}

fn bench_cycle_search(c: &mut Criterion) {
    let mut grp = c.benchmark_group("g_single_search");
    let g = random_graph(10_000, 3, 2);
    let sccs = tarjan_scc(&g, EdgeMask::ALL);
    let comp = sccs.into_iter().max_by_key(Vec::len).unwrap_or_default();
    grp.bench_function("largest_component", |b| {
        b.iter(|| find_cycle_with_single(&g, &comp, EdgeMask::RW, EdgeMask::WW | EdgeMask::WR, 4))
    });
    grp.finish();
}

fn bench_interval_reduction(c: &mut Criterion) {
    let mut grp = c.benchmark_group("interval_order_reduction");
    for n in [10_000usize, 100_000] {
        // p-way staggered intervals.
        let p = 20;
        let items: Vec<Interval> = (0..n)
            .map(|i| Interval {
                invoke: i * 2,
                complete: Some(i * 2 + p),
            })
            .collect();
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| interval_order_reduction(items))
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_tarjan,
    bench_cycle_search,
    bench_interval_reduction
);
criterion_main!(benches);
