//! Criterion microbenchmarks for the checker itself: §7.5's claim is
//! linearity in history length and insensitivity to concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;

fn history(n_txns: usize, processes: usize, iso: IsolationLevel) -> History {
    let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64);
    let db = DbConfig::new(iso, ObjectKind::ListAppend)
        .with_processes(processes)
        .with_seed(n_txns as u64 + processes as u64);
    run_workload(params, db).expect("history pairs")
}

fn bench_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("elle_check_length");
    g.sample_size(10);
    for n in [1_000usize, 4_000, 10_000, 16_000, 64_000] {
        let h = history(n, 20, IsolationLevel::Serializable);
        g.throughput(Throughput::Elements(h.mop_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(h))
        });
    }
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("elle_check_concurrency");
    g.sample_size(10);
    for procs in [1usize, 10, 100] {
        let h = history(4_000, procs, IsolationLevel::Serializable);
        g.bench_with_input(BenchmarkId::from_parameter(procs), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(h))
        });
    }
    g.finish();
}

fn bench_anomalous(c: &mut Criterion) {
    // Checking a history *with* anomalies (cycle search does real work).
    let mut g = c.benchmark_group("elle_check_anomalous");
    g.sample_size(10);
    let h = history(4_000, 20, IsolationLevel::ReadCommitted);
    g.bench_function("read_committed_4k", |b| {
        b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(&h))
    });
    g.finish();
}

criterion_group!(benches, bench_length, bench_concurrency, bench_anomalous);
criterion_main!(benches);
