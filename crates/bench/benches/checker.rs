//! Criterion microbenchmarks for the checker itself: §7.5's claim is
//! linearity in history length and insensitivity to concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;

/// `CRITERION_QUICK=1` (the CI smoke) truncates the length series —
/// still a multi-point sweep so the extended-series path is exercised,
/// but without the 512k/1M points whose generation alone is minutes
/// (those are recorded offline into `BENCH_checker.json`).
fn quick() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1")
}

fn history(n_txns: usize, processes: usize, iso: IsolationLevel) -> History {
    let params = GenParams::paper_perf(n_txns).with_seed(n_txns as u64);
    let db = DbConfig::new(iso, ObjectKind::ListAppend)
        .with_processes(processes)
        .with_seed(n_txns as u64 + processes as u64);
    run_workload(params, db).expect("history pairs")
}

fn bench_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("elle_check_length");
    g.sample_size(10);
    let sizes: &[usize] = if quick() {
        &[1_000, 4_000, 16_000]
    } else {
        &[
            1_000, 4_000, 10_000, 16_000, 64_000, 256_000, 512_000, 1_000_000,
        ]
    };
    for &n in sizes {
        let h = history(n, 20, IsolationLevel::Serializable);
        g.throughput(Throughput::Elements(h.mop_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(h))
        });
    }
    g.finish();
}

/// The early-acyclic certificate on a clean history: one Tarjan pass
/// under the full mask versus the per-class passes it skips.
fn bench_acyclic_certificate(c: &mut Criterion) {
    use elle_core::datatype::{run_mode, Parallelism};
    use elle_core::{
        add_process_edges, add_realtime_edges, find_cycle_anomalies_mode, CycleSearchOptions,
        DataType, KeyTypes, ProvenanceIndex,
    };
    let n = if quick() { 2_000 } else { 16_000 };
    let h = history(n, 20, IsolationLevel::Serializable);
    let elems = ProvenanceIndex::build(&h);
    let keys = KeyTypes::infer(&h).keys_of(DataType::List);
    let out = run_mode::<elle_core::list_append::ListAppend>(
        &h,
        &elems,
        &keys,
        (),
        Parallelism::Sequential,
    );
    let mut deps = out.deps;
    add_process_edges(&mut deps, &h);
    add_realtime_edges(&mut deps, &h);
    let csr = deps.freeze();
    let base = CycleSearchOptions::default();

    let mut g = c.benchmark_group("elle_cycle_search_clean");
    g.sample_size(10);
    for (name, certificate) in [("certificate", true), ("all_class_passes", false)] {
        g.bench_function(&format!("{name}_{n}"), |b| {
            b.iter(|| {
                find_cycle_anomalies_mode(
                    &deps,
                    &csr,
                    &h,
                    CycleSearchOptions {
                        certificate,
                        ..base
                    },
                    Parallelism::Sequential,
                )
            })
        });
    }
    g.finish();
}

/// One epoch's incremental seal versus re-running the batch checker on
/// the same prefix: the streaming pitch in one number. The stream is
/// pre-ingested up to the final epoch; the benchmark then measures the
/// cost of analyzing the last epoch's delta (clone-reset per iteration
/// is hoisted out by re-ingesting; see `stream_epochs` for the full
/// per-epoch series).
fn bench_stream_epoch(c: &mut Criterion) {
    use elle_history::EventLog;
    use elle_stream::StreamChecker;
    let n = if quick() { 2_000 } else { 16_000 };
    let epoch = n / 8;
    let params = GenParams::paper_perf(n).with_seed(n as u64);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(20)
        .with_seed(n as u64 + 20);
    let log = elle_gen::run_workload_log(params, db);
    let events = log.events();

    let mut g = c.benchmark_group("elle_stream_epoch");
    g.sample_size(10);
    // Incremental: ingest everything, sealing along the way; measure a
    // fresh full run divided into epochs (amortized per-seal cost).
    g.bench_function(&format!("incremental_all_epochs_{n}"), |b| {
        b.iter(|| {
            let mut s = StreamChecker::new(CheckOptions::strict_serializable());
            let mut txns = 0usize;
            let mut reports = 0usize;
            for ev in events {
                if ev.kind == elle_history::EventKind::Invoke {
                    txns += 1;
                }
                s.ingest_event(ev).unwrap();
                if txns == epoch {
                    s.seal_epoch();
                    reports += 1;
                    txns = 0;
                }
            }
            s.seal_epoch();
            reports + 1
        })
    });
    // Batch: re-check each prefix from scratch (what a non-incremental
    // service pays for the same verdict cadence).
    g.bench_function(&format!("batch_recheck_all_epochs_{n}"), |b| {
        b.iter(|| {
            let mut txns = 0usize;
            let mut reports = 0usize;
            let mut cut = 0usize;
            for (i, ev) in events.iter().enumerate() {
                if ev.kind == elle_history::EventKind::Invoke {
                    txns += 1;
                }
                if txns == epoch || i + 1 == events.len() {
                    cut = i + 1;
                    let prefix = EventLog::from_events(events[..cut].to_vec())
                        .unwrap()
                        .pair()
                        .unwrap();
                    Checker::new(CheckOptions::strict_serializable()).check(&prefix);
                    reports += 1;
                    txns = 0;
                }
            }
            (reports, cut)
        })
    });
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("elle_check_concurrency");
    g.sample_size(10);
    for procs in [1usize, 10, 100] {
        let h = history(4_000, procs, IsolationLevel::Serializable);
        g.bench_with_input(BenchmarkId::from_parameter(procs), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(h))
        });
    }
    g.finish();
}

fn bench_anomalous(c: &mut Criterion) {
    // Checking a history *with* anomalies (cycle search does real work).
    let mut g = c.benchmark_group("elle_check_anomalous");
    g.sample_size(10);
    let h = history(4_000, 20, IsolationLevel::ReadCommitted);
    g.bench_function("read_committed_4k", |b| {
        b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(&h))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_length,
    bench_concurrency,
    bench_anomalous,
    bench_acyclic_certificate,
    bench_stream_epoch
);
criterion_main!(benches);
