//! Criterion microbenchmarks for the database simulator: transaction
//! throughput per isolation level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};

fn bench_isolation_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbsim_run_4k_txns");
    g.sample_size(10);
    for (label, iso) in [
        ("read_uncommitted", IsolationLevel::ReadUncommitted),
        ("read_committed", IsolationLevel::ReadCommitted),
        ("snapshot_isolation", IsolationLevel::SnapshotIsolation),
        ("serializable", IsolationLevel::Serializable),
        ("strict_serializable", IsolationLevel::StrictSerializable),
    ] {
        g.throughput(Throughput::Elements(4_000));
        g.bench_with_input(BenchmarkId::from_parameter(label), &iso, |b, &iso| {
            b.iter(|| {
                let params = GenParams::paper_perf(4_000);
                let db = DbConfig::new(iso, ObjectKind::ListAppend)
                    .with_processes(16)
                    .with_seed(3);
                run_workload(params, db).expect("history pairs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_isolation_levels);
criterion_main!(benches);
