//! `sat_vs_dfs`: the dbcop-style engine comparison (`npc_vs_sat` in
//! their repo). Three verdict engines on the same histories:
//!
//! * `cycle` — Elle's sound-but-incomplete cycle search (linear-ish),
//! * `sat`   — the complete CEGAR order solver (`elle-sat`),
//! * `dfs`   — the WGL-style linearization search (`elle-knossos`),
//!   exponential in concurrency (Figure 4's blow-up).
//!
//! Three sweeps: history length at fixed concurrency (where `sat`
//! should track `cycle` within a constant factor), concurrency at fixed
//! length (where `dfs` departs), and a *hostile* sweep of adversarial
//! register histories built to detonate the DFS — the blow-up the
//! simulator's valid histories never trigger because their real-time
//! order guides the search straight to a linearization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::{History, HistoryBuilder};
use elle_knossos::KnossosOptions;
use elle_sat::{SatModel, SatOptions};
use std::time::Duration;

/// `CRITERION_QUICK=1` (the CI smoke) truncates all three sweeps.
fn quick() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1")
}

/// A serializable list-append run the DFS can also digest: low
/// concurrency, list objects only.
fn history(n_txns: usize, processes: usize) -> History {
    let params = GenParams {
        n_txns,
        min_txn_len: 1,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 32,
        read_prob: 0.5,
        kind: ObjectKind::ListAppend,
        seed: (n_txns as u64) ^ ((processes as u64) << 32),
        final_reads: false,
    };
    let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
        .with_processes(processes)
        .with_seed(n_txns as u64 + processes as u64);
    run_workload(params, db).expect("history pairs")
}

fn bench_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_vs_dfs_length");
    g.sample_size(10);
    let sizes: &[usize] = if quick() {
        &[50, 100]
    } else {
        &[50, 100, 200, 400, 800]
    };
    for &n in sizes {
        let h = history(n, 3);
        g.bench_with_input(BenchmarkId::new("cycle", n), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::serializable()).check(h))
        });
        g.bench_with_input(BenchmarkId::new("sat", n), &h, |b, h| {
            b.iter(|| elle_sat::check(h, SatModel::Serializable, &SatOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("dfs", n), &h, |b, h| {
            b.iter(|| {
                elle_knossos::check(
                    h,
                    KnossosOptions::default().with_budget(Duration::from_secs(10)),
                )
            })
        });
    }
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_vs_dfs_concurrency");
    g.sample_size(10);
    let procs: &[usize] = if quick() { &[2, 4] } else { &[2, 4, 6, 8] };
    for &p in procs {
        let h = history(120, p);
        g.bench_with_input(BenchmarkId::new("cycle", p), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::serializable()).check(h))
        });
        g.bench_with_input(BenchmarkId::new("sat", p), &h, |b, h| {
            b.iter(|| elle_sat::check(h, SatModel::Serializable, &SatOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("dfs", p), &h, |b, h| {
            b.iter(|| {
                elle_knossos::check(
                    h,
                    KnossosOptions::default().with_budget(Duration::from_secs(10)),
                )
            })
        });
    }
    g.finish();
}

/// A hostile register history for the WGL search (duplicated as a
/// correctness pin in `crates/bench/tests/hostile_generators.rs`):
/// writer 0 is fenced in real time before `writers - 1` mutually
/// concurrent overwrites of the same register, and a trailing read
/// observes a stale value.
///
/// * `valid = true` — the **needle**: the read observes writer 1, so a
///   linearization exists but only with writer 1 ordered *last* in the
///   concurrent block. The completion-order-guided DFS tries it first
///   and backtracks through most of the block before finding it.
/// * `valid = false` — the **refutation**: the read observes the fenced
///   writer 0, which real-time order makes impossible. Proving that
///   requires exhausting every interleaving of the block: states and
///   time grow as `~writers · 2^writers` (Figure 4's blow-up), where
///   the valid sweeps above stay near-linear.
///
/// The refutation is also an incompleteness witness for the other two
/// engines: the cycle search's register version inference cannot order
/// the concurrent unread overwrites (no cycle, verdict stays ok), and
/// the SAT engine's PL-3 model carries no real-time obligations — only
/// the exponential DFS refutes this history.
fn hostile_register(writers: usize, valid: bool) -> History {
    let mut b = HistoryBuilder::new();
    // The fence: completes before every other writer invokes.
    b.txn(0).write(0, 0).at(0, Some(1)).commit();
    let base = 2;
    for i in 1..writers {
        b.txn(i as u32)
            .write(0, i as u64)
            .at(base + i, Some(base + writers + i))
            .commit();
    }
    let tail = base + 2 * writers + 2;
    let target = if valid { 1 } else { 0 };
    b.txn(writers as u32)
        .read_register(0, Some(target))
        .at(tail, Some(tail + 1))
        .commit();
    b.build()
}

fn bench_hostile(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_vs_dfs_hostile");
    g.sample_size(10);
    let writers: &[usize] = if quick() {
        &[8, 10]
    } else {
        &[8, 10, 12, 14, 16]
    };
    for &n in writers {
        for (tag, valid) in [("needle", true), ("refute", false)] {
            let h = hostile_register(n, valid);
            g.bench_with_input(BenchmarkId::new(&format!("cycle_{tag}"), n), &h, |b, h| {
                b.iter(|| Checker::new(CheckOptions::strict_serializable()).check(h))
            });
            g.bench_with_input(BenchmarkId::new(&format!("sat_{tag}"), n), &h, |b, h| {
                b.iter(|| elle_sat::check(h, SatModel::Serializable, &SatOptions::default()))
            });
            g.bench_with_input(BenchmarkId::new(&format!("dfs_{tag}"), n), &h, |b, h| {
                b.iter(|| {
                    elle_knossos::check(
                        h,
                        KnossosOptions::default().with_budget(Duration::from_secs(60)),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_length, bench_concurrency, bench_hostile);
criterion_main!(benches);
