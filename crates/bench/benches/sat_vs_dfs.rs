//! `sat_vs_dfs`: the dbcop-style engine comparison (`npc_vs_sat` in
//! their repo). Three verdict engines on the same histories:
//!
//! * `cycle` — Elle's sound-but-incomplete cycle search (linear-ish),
//! * `sat`   — the complete CEGAR order solver (`elle-sat`),
//! * `dfs`   — the WGL-style linearization search (`elle-knossos`),
//!   exponential in concurrency (Figure 4's blow-up).
//!
//! Two sweeps: history length at fixed concurrency (where `sat` should
//! track `cycle` within a constant factor), and concurrency at fixed
//! length (where `dfs` departs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;
use elle_knossos::KnossosOptions;
use elle_sat::{SatModel, SatOptions};
use std::time::Duration;

/// `CRITERION_QUICK=1` (the CI smoke) truncates both sweeps.
fn quick() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1")
}

/// A serializable list-append run the DFS can also digest: low
/// concurrency, list objects only.
fn history(n_txns: usize, processes: usize) -> History {
    let params = GenParams {
        n_txns,
        min_txn_len: 1,
        max_txn_len: 4,
        active_keys: 4,
        writes_per_key: 32,
        read_prob: 0.5,
        kind: ObjectKind::ListAppend,
        seed: (n_txns as u64) ^ ((processes as u64) << 32),
        final_reads: false,
    };
    let db = DbConfig::new(IsolationLevel::StrictSerializable, ObjectKind::ListAppend)
        .with_processes(processes)
        .with_seed(n_txns as u64 + processes as u64);
    run_workload(params, db).expect("history pairs")
}

fn bench_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_vs_dfs_length");
    g.sample_size(10);
    let sizes: &[usize] = if quick() {
        &[50, 100]
    } else {
        &[50, 100, 200, 400, 800]
    };
    for &n in sizes {
        let h = history(n, 3);
        g.bench_with_input(BenchmarkId::new("cycle", n), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::serializable()).check(h))
        });
        g.bench_with_input(BenchmarkId::new("sat", n), &h, |b, h| {
            b.iter(|| elle_sat::check(h, SatModel::Serializable, &SatOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("dfs", n), &h, |b, h| {
            b.iter(|| {
                elle_knossos::check(
                    h,
                    KnossosOptions::default().with_budget(Duration::from_secs(10)),
                )
            })
        });
    }
    g.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_vs_dfs_concurrency");
    g.sample_size(10);
    let procs: &[usize] = if quick() { &[2, 4] } else { &[2, 4, 6, 8] };
    for &p in procs {
        let h = history(120, p);
        g.bench_with_input(BenchmarkId::new("cycle", p), &h, |b, h| {
            b.iter(|| Checker::new(CheckOptions::serializable()).check(h))
        });
        g.bench_with_input(BenchmarkId::new("sat", p), &h, |b, h| {
            b.iter(|| elle_sat::check(h, SatModel::Serializable, &SatOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("dfs", p), &h, |b, h| {
            b.iter(|| {
                elle_knossos::check(
                    h,
                    KnossosOptions::default().with_budget(Duration::from_secs(10)),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_length, bench_concurrency);
criterion_main!(benches);
