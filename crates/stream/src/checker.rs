//! The incremental epoch-based stream checker.
//!
//! [`StreamChecker`] ingests events continuously and, at each epoch
//! seal, produces a [`Report`] **byte-identical** to running the batch
//! [`Checker`](elle_core::Checker) over the full prefix ingested so far
//! — while paying, per epoch, for the epoch's *delta* rather than for
//! the history's length. See the module docs in [`crate`] for the
//! frontier-state contract.
//!
//! ## How incrementality works
//!
//! * **Pairing** — a [`StreamingPairer`] resolves invocations in place;
//!   raw events are dropped at ingest.
//! * **Indexes** — [`KeyTypes`] and [`ElemIndex`] are folded forward
//!   per event.
//! * **Datatype analysis** — per-key results ([`KeySink`]s) are cached.
//!   A key is *dirty* in an epoch iff a new or changed transaction
//!   touched it; only dirty keys are re-analyzed, with the gather pass
//!   scoped to their posting lists (the **gather-delta** phase), through
//!   exactly the same [`analyze_keys`] driver the batch checker uses
//!   (the **finalize** phase).
//! * **Graph** — the accumulated [`DepGraph`] spine is carried across
//!   epochs. A dirty key's new edge multiset is diffed against its
//!   cached one: pure growth (the overwhelmingly common case for
//!   traceable workloads) pushes just the delta into the flat pending
//!   buffer; any retraction (new duplicate poisoning a key, a register
//!   version order changing shape, a counter's `rr` chain re-linking)
//!   falls back to rebuilding the graph from the cached sinks — still
//!   never re-running per-key analysis for clean keys. Canonical
//!   witness presentation ([`DepGraph::present`]) makes the carried
//!   graph report exactly like a batch-built one.
//! * **Seal** — [`DepGraph::build`] sorts the epoch's delta and
//!   two-way-merges it into the carried sorted spine (untouched runs
//!   block-copied, witnesses carried by arena address — no hash
//!   probes); the CSR snapshot is then re-frozen linearly from the
//!   spine.
//! * **Cycle search** — the same certificate-gated search as batch:
//!   one Tarjan pass under the full mask; per-class passes only over
//!   the cyclic region.
//!
//! Derived orders append incrementally too: process chains extend at
//! the frontier, and the real-time interval-order reduction is computed
//! per newly-committed transaction from the completion frontier —
//! event indices are monotone, so earlier edges never change.
//! Database-timestamp edges are appended likewise while commit
//! timestamps arrive in order, and trigger a rebuild when they do not.

use elle_core::counter;
use elle_core::datatype::{
    self, analyze_keys, duplicate_anomalies, AnalysisCtx, DatatypeAnalysis, GatherStats, KeySink,
    Parallelism,
};
use elle_core::AnomalyType;
use elle_core::{
    assemble_report, find_cycle_anomalies_frozen, Anomaly, CheckOptions, CheckStats,
    CycleSearchOptions, DataType, DepGraph, ElemIndex, GatherBuf, KeySlots, KeyTypes, Report,
    StageTimings, Witness,
};
use elle_graph::{EdgeMask, Scratch};
use elle_history::{
    Elem, Event, EventKind, History, Ingest, Key, Mop, PairingError, ProcessId, Recovered,
    RecoveryPolicy, StreamingPairer, Transaction, TxnId, TxnStatus,
};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

type Edge = (TxnId, TxnId, Witness);

/// How the checker bounds its resident state (§bounded-memory
/// streaming). Retirement is *provably cycle-safe*: only closed
/// transactions outside every live SCC whose keys are fully quiescent
/// are retired, so every verdict over the retained window remains
/// byte-identical to the unbounded run as long as no needed witness
/// crossed the retirement boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Never retire (the classic unbounded checker).
    #[default]
    Unbounded,
    /// After each seal, retire down to at most this many retained
    /// transactions (subject to the safety clamps).
    TxnCount(usize),
    /// Retire (geometrically) whenever
    /// [`StreamChecker::resident_bytes`] exceeds this budget.
    Bytes(usize),
}

/// Per-epoch window gauges, reported when a [`WindowPolicy`] other
/// than [`WindowPolicy::Unbounded`] is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Transactions retired from the window since stream start.
    pub retired_txns: usize,
    /// Transactions still resident (open ones included).
    pub retained_txns: usize,
    /// Deterministic resident-state estimate, in bytes.
    pub resident_bytes: usize,
    /// `false` once any retired key was re-touched: anomalies needing
    /// the evicted evidence are indeterminate (marked
    /// [`AnomalyType::WindowEvicted`]), never fabricated.
    pub exact: bool,
}

/// The smallest retained suffix a byte-budget retirement will keep;
/// prevents a tiny budget from thrashing the window down to nothing.
const MIN_RETAIN_TXNS: usize = 16;

/// A cached per-key analysis result with its anomalies **interned**
/// behind [`Arc`]: epoch report assembly clones pointers, not
/// explanation strings, so sealing no longer pays O(total anomalies)
/// in string copies on anomaly-dense (e.g. read-uncommitted) streams.
#[derive(Debug)]
struct CachedSink {
    anomalies: Vec<Arc<Anomaly>>,
    edges: Vec<Edge>,
    observed_elems: Vec<elle_history::Elem>,
}

impl From<KeySink> for CachedSink {
    fn from(sink: KeySink) -> CachedSink {
        CachedSink {
            anomalies: sink.anomalies.into_iter().map(Arc::new).collect(),
            edges: sink.edges,
            observed_elems: sink.observed_elems,
        }
    }
}

fn intern(anomalies: Vec<Anomaly>) -> Vec<Arc<Anomaly>> {
    anomalies.into_iter().map(Arc::new).collect()
}

/// Per-datatype cached analysis state.
#[derive(Debug, Default)]
struct DtCache {
    /// Internal-consistency anomalies per transaction (only transactions
    /// that produced any).
    internal: BTreeMap<TxnId, Vec<Arc<Anomaly>>>,
    /// The latest per-key sink, keyed and iterated in sorted key order.
    sinks: BTreeMap<Key, CachedSink>,
    /// Retired-prefix summaries (windowed mode): anomalies whose
    /// evidence left the window are kept as finished facts, so
    /// cumulative reports never lose them. Internal anomalies of
    /// retired transactions, in id order.
    retired_internal: Vec<Arc<Anomaly>>,
    /// Duplicate-write anomalies of retired keys.
    retired_dups: BTreeMap<Key, Vec<Arc<Anomaly>>>,
    /// Sink anomalies of retired keys (their edges were folded into the
    /// retired edge counts).
    retired_sinks: BTreeMap<Key, Vec<Arc<Anomaly>>>,
}

impl DtCache {
    fn has_retired(&self) -> bool {
        !self.retired_internal.is_empty()
            || !self.retired_dups.is_empty()
            || !self.retired_sinks.is_empty()
    }
}

/// Counter analysis cache (the counter pipeline is not trait-driven).
#[derive(Debug, Default)]
struct CounterCache {
    internal: BTreeMap<TxnId, Vec<Arc<Anomaly>>>,
    sinks: BTreeMap<Key, (Vec<Arc<Anomaly>>, Vec<Edge>)>,
    retired_internal: Vec<Arc<Anomaly>>,
    retired_sinks: BTreeMap<Key, Vec<Arc<Anomaly>>>,
}

/// Incremental coverage statistics (§3): which committed writes were
/// ever observed. `observed` only grows (observation contributions are
/// monotone in the read set), so counts update in O(delta).
#[derive(Debug, Default)]
struct Coverage {
    observed: FxHashSet<(Key, Elem)>,
    /// Multiplicity of element-carrying writes by may-have-committed
    /// transactions, per `(key, elem)`.
    pairs: FxHashMap<(Key, Elem), u32>,
    committed_writes: usize,
    observed_writes: usize,
}

impl Coverage {
    fn add_write(&mut self, key: Key, e: Elem) {
        self.committed_writes += 1;
        *self.pairs.entry((key, e)).or_insert(0) += 1;
        if self.observed.contains(&(key, e)) {
            self.observed_writes += 1;
        }
    }

    fn retract_write(&mut self, key: Key, e: Elem) {
        self.committed_writes -= 1;
        *self.pairs.get_mut(&(key, e)).expect("write was counted") -= 1;
        if self.observed.contains(&(key, e)) {
            self.observed_writes -= 1;
        }
    }

    fn observe(&mut self, key: Key, e: Elem) {
        if self.observed.insert((key, e)) {
            self.observed_writes += *self.pairs.get(&(key, e)).unwrap_or(&0) as usize;
        }
    }
}

/// Flat posting lists: which transactions touch each key, as sorted
/// `(key, txn)` pairs — the stream-side counterpart of the flat gather
/// buffer. Ingest appends to an unsorted per-epoch `tail` (with a
/// per-transaction linear dedup, mirroring the old per-key
/// `last() != Some(&id)` check); each seal sorts the tail once and
/// two-pointer-merges it into `sorted`. [`TxnPostings::scope_of`] then
/// reads per-key runs straight out of the sorted pairs — no hash map,
/// and no per-seal re-sort of the dirty keys' combined scope.
#[derive(Debug, Default)]
struct TxnPostings {
    /// `(key, txn)` pairs, lexicographically sorted; each pair unique.
    sorted: Vec<(Key, TxnId)>,
    /// This epoch's unsorted appendix.
    tail: Vec<(Key, TxnId)>,
}

impl TxnPostings {
    /// Append one transaction's touched keys. `tail_start` is the tail
    /// length when this transaction's first mop arrived; the linear
    /// rescan from it deduplicates keys within the transaction (mop
    /// counts are small).
    fn note(&mut self, key: Key, id: TxnId, tail_start: usize) {
        if !self.tail[tail_start..].iter().any(|&(k, _)| k == key) {
            self.tail.push((key, id));
        }
    }

    fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Merge the epoch tail into the sorted run (one sort of the tail,
    /// one linear merge — pairs are unique, so no dedup pass).
    fn seal(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        self.tail.sort_unstable();
        let old = std::mem::take(&mut self.sorted);
        let mut merged: Vec<(Key, TxnId)> = Vec::with_capacity(old.len() + self.tail.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < self.tail.len() {
            if old[i] <= self.tail[j] {
                merged.push(old[i]);
                i += 1;
            } else {
                merged.push(self.tail[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&self.tail[j..]);
        self.sorted = merged;
        self.tail.clear();
    }

    /// The run of transactions touching `key`, ascending.
    fn run(&self, key: Key) -> &[(Key, TxnId)] {
        let lo = self.sorted.partition_point(|&(k, _)| k < key);
        let hi = self.sorted.partition_point(|&(k, _)| k <= key);
        &self.sorted[lo..hi]
    }

    /// The union of the dirty keys' posting runs, sorted and
    /// deduplicated — the gather-delta transaction scope. A k-way merge
    /// over already-sorted runs; must be called after [`seal`].
    fn scope_of(&self, dirty_sorted: &[Key]) -> Vec<TxnId> {
        debug_assert!(self.tail.is_empty(), "scope_of before seal");
        let runs: Vec<&[(Key, TxnId)]> = dirty_sorted
            .iter()
            .map(|&k| self.run(k))
            .filter(|r| !r.is_empty())
            .collect();
        match runs.len() {
            0 => Vec::new(),
            1 => runs[0].iter().map(|&(_, t)| t).collect(),
            _ => {
                use std::cmp::Reverse;
                use std::collections::BinaryHeap;
                let total: usize = runs.iter().map(|r| r.len()).sum();
                let mut scope: Vec<TxnId> = Vec::with_capacity(total);
                let mut heap: BinaryHeap<Reverse<(TxnId, usize, usize)>> = runs
                    .iter()
                    .enumerate()
                    .map(|(r, run)| Reverse((run[0].1, r, 0)))
                    .collect();
                while let Some(Reverse((t, r, i))) = heap.pop() {
                    if scope.last() != Some(&t) {
                        scope.push(t);
                    }
                    if let Some(&(_, next)) = runs[r].get(i + 1) {
                        heap.push(Reverse((next, r, i + 1)));
                    }
                }
                scope
            }
        }
    }
}

/// The frontier sizes a deployment watches: memory tracks these, not
/// the epoch count.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FrontierStats {
    /// Invocations awaiting completion.
    pub open_txns: usize,
    /// Keys with cached per-key analysis state.
    pub cached_keys: usize,
    /// Keys dirtied (re-analyzed) this epoch.
    pub dirty_keys: usize,
    /// Transactions the gather-delta phase walked this epoch.
    pub scoped_txns: usize,
    /// Events quarantined by the recovery policy since stream start.
    #[serde(default)]
    pub quarantined_events: usize,
}

/// One sealed epoch's outcome.
#[derive(Debug)]
pub struct EpochReport {
    /// Epoch ordinal (0-based).
    pub epoch: usize,
    /// Events ingested since the previous seal.
    pub events: usize,
    /// Transactions in the prefix (open ones included).
    pub txns: usize,
    /// The verdict — byte-identical to `Checker::check` on the prefix.
    pub report: Report,
    /// Whether this seal took the graph-rebuild fallback (a per-key
    /// retraction, reassigned key datatype, or out-of-order commit
    /// timestamps) instead of the delta-append fast path.
    pub rebuilt: bool,
    /// Frontier sizes at seal time.
    pub frontier: FrontierStats,
    /// Per-stage wall-clock breakdown of the seal.
    pub timings: StageTimings,
    /// `Some(panic message)` when the seal panicked and was isolated:
    /// the verdict for this epoch is **indeterminate** (the embedded
    /// report is a placeholder with a warning), the checker's state was
    /// rebuilt from the paired history, and subsequent epochs keep
    /// sealing. Only [`StreamChecker::seal_epoch_guarded`] sets this.
    pub poisoned: Option<String>,
    /// Window gauges, `Some` iff a bounded [`WindowPolicy`] is active.
    pub window: Option<WindowStats>,
}

/// A portable capture of a [`StreamChecker`]'s rebuildable state: the
/// synthesized accepted-event sequence (derived from the paired history
/// and the open-invocation table) plus the counters replay cannot
/// recompute. Produced by [`StreamChecker::snapshot`], consumed by
/// [`StreamChecker::restore`] — the crash-consistency primitive behind
/// `elle-serve`'s per-tenant snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckerSnapshot {
    /// Epoch ordinal at capture time (the next seal's number).
    pub epoch: usize,
    /// Events quarantined by the recovery policy since stream start.
    pub quarantined: usize,
    /// Events ingested since the last seal (the partial epoch).
    pub events_this_epoch: usize,
    /// The accepted event sequence, sorted by index. Replaying it under
    /// [`RecoveryPolicy::Quarantine`] reproduces the paired history and
    /// its transaction ids exactly.
    pub events: Vec<Event>,
    /// Windowed-mode carry: everything retirement folded out of the
    /// replayable state. `None` for unbounded checkers that never
    /// retired, so their snapshots are unchanged.
    pub window: Option<WindowCarry>,
}

/// The retired-prefix facts a [`CheckerSnapshot`] must carry beside the
/// replayable events: replay rebuilds the retained window, and this
/// struct restores what the window no longer contains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowCarry {
    /// Transactions retired (the restored pairer's id base).
    pub base: u32,
    /// The active retirement policy.
    pub policy: WindowPolicy,
    /// Distinct IDSG edges per class folded out of the graph spine,
    /// indexed by `EdgeClass` discriminant (always 8 entries).
    pub retired_edge_counts: Vec<usize>,
    /// Total micro-ops across retired transactions.
    pub retired_mops: usize,
    /// Committed transactions among the retired prefix.
    pub retired_committed: usize,
    /// Aborted transactions among the retired prefix.
    pub retired_aborted: usize,
    /// Committed element writes folded out of the retired prefix.
    pub retired_committed_writes: usize,
    /// Observed `(key, element)` write pairs folded out of the retired
    /// prefix.
    pub retired_observed_writes: usize,
    /// Max invoke index folded out of the pruned realtime-completion
    /// prefix.
    pub rt_seed_max: usize,
    /// The realtime completion frontier, `(complete index, txn id)` —
    /// carried whole because retired entries can still bound retained
    /// transactions' interval-order windows.
    pub rt_completes: Vec<(usize, u32)>,
    /// Running max of invoke indices over `rt_completes` prefixes
    /// (seeded: includes pruned entries' contributions).
    pub rt_prefix_max_invoke: Vec<usize>,
    /// Per-process last committed transaction where that transaction is
    /// retired (retained ones are rebuilt by replay).
    pub proc_last_retired: Vec<(u32, u32)>,
    /// Keys wholly retired from the window, sorted.
    pub retired_keys: Vec<Key>,
    /// Type bitmasks of retired keys (their evidence is gone from the
    /// history, but partitions and conflict warnings must not change).
    pub retired_key_masks: Vec<(Key, u8)>,
    /// Sticky `WindowEvicted` markers for compromised keys.
    pub evicted: Vec<(Key, Anomaly)>,
    /// Retired anomaly stashes: list, register, set, counter.
    pub stashes: Vec<DtStashCarry>,
}

/// One datatype's retired anomaly stash in portable form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DtStashCarry {
    /// Internal (single-transaction) anomalies among retired txns.
    pub internal: Vec<Anomaly>,
    /// Per-key duplicate-write anomalies over retired keys.
    pub dups: Vec<(Key, Vec<Anomaly>)>,
    /// Per-key analysis anomalies for retired keys' final sinks.
    pub sinks: Vec<(Key, Vec<Anomaly>)>,
}

/// The incremental checker. Feed events with
/// [`StreamChecker::ingest_event`]; seal epochs with
/// [`StreamChecker::seal_epoch`] whenever a watermark fires.
#[derive(Debug)]
pub struct StreamChecker {
    opts: CheckOptions,
    pairer: StreamingPairer,
    kt: KeyTypes,
    elems: ElemIndex,
    /// Transactions touching each key, as flat sorted `(key, txn)`
    /// pairs — the gather-delta scope for dirty keys.
    postings: TxnPostings,
    list: DtCache,
    reg: DtCache,
    set: DtCache,
    counter: CounterCache,
    /// Datatype each cached key was last analyzed under, to detect
    /// (rare, conflict-driven) reassignment.
    assigned: FxHashMap<Key, DataType>,
    coverage: Coverage,

    // ── Carried graph: the sealed sorted spine plus the epoch's flat
    //    pending delta; each seal two-way-merges the sorted delta into
    //    the spine and re-freezes linearly. ──────────────────────────────
    deps: DepGraph,

    // ── Derived-order frontiers. ──────────────────────────────────────
    proc_last: FxHashMap<ProcessId, TxnId>,
    /// Committed transactions by completion index (arrival order keeps
    /// this sorted).
    rt_completes: Vec<(usize, TxnId)>,
    /// Running max of invoke indices over `rt_completes` prefixes.
    rt_prefix_max_invoke: Vec<usize>,
    /// Stamped committed transactions sorted by commit timestamp.
    ts_commits: Vec<(u64, TxnId)>,
    ts_prefix_max_start: Vec<u64>,
    /// Max commit/start timestamp seen; a new commit below this voids
    /// the timestamp fast path for the epoch.
    ts_max_seen: u64,

    // ── Running statistics. ───────────────────────────────────────────
    mops: usize,
    n_committed: usize,
    n_aborted: usize,

    // ── Epoch delta. ──────────────────────────────────────────────────
    delta_txns: Vec<TxnId>,
    newly_committed: Vec<TxnId>,
    events_this_epoch: usize,
    needs_rebuild: bool,
    key_types_changed: bool,
    epoch: usize,

    // ── Robustness. ───────────────────────────────────────────────────
    /// Events quarantined by the recovery policy since stream start.
    quarantined: usize,
    /// Test hook: panic at the start of sealing this epoch ordinal, to
    /// exercise the poisoned-epoch recovery path deterministically.
    panic_at_epoch: Option<usize>,

    // ── Windowed retirement (bounded-memory streaming). ──────────────
    window: WindowPolicy,
    /// Distinct IDSG edges per class whose source was retired, indexed
    /// by `EdgeClass` discriminant; folded into the reported edge
    /// counts via [`DepGraph::set_extra_counts`].
    retired_edge_counts: [usize; 8],
    /// Scalars of retired transactions, kept only so snapshots can
    /// restore the full-prefix statistics.
    retired_mops: usize,
    retired_committed: usize,
    retired_aborted: usize,
    /// Coverage contributions of retired keys, re-applied when the
    /// conflict-driven coverage rebuild recomputes from the retained
    /// history.
    retired_committed_writes: usize,
    retired_observed_writes: usize,
    /// Max invoke index over pruned `rt_completes` prefix entries; the
    /// seed for the running prefix-max when the array drains.
    rt_seed_max: usize,
    /// Keys wholly retired from the window, sorted ascending. A later
    /// touch makes the key *compromised*: it is excluded from per-key
    /// analysis (its version evidence is gone) and gets a sticky
    /// [`AnomalyType::WindowEvicted`] marker instead.
    retired_keys: Vec<Key>,
    /// One marker per compromised key.
    evicted: BTreeMap<Key, Arc<Anomaly>>,
}

impl StreamChecker {
    /// A stream checker judging against the given options.
    pub fn new(opts: CheckOptions) -> StreamChecker {
        StreamChecker {
            opts,
            pairer: StreamingPairer::new(),
            kt: KeyTypes::new(),
            elems: ElemIndex::new(),
            postings: TxnPostings::default(),
            list: DtCache::default(),
            reg: DtCache::default(),
            set: DtCache::default(),
            counter: CounterCache::default(),
            assigned: FxHashMap::default(),
            coverage: Coverage::default(),
            deps: DepGraph::with_txns(0),
            proc_last: FxHashMap::default(),
            rt_completes: Vec::new(),
            rt_prefix_max_invoke: Vec::new(),
            ts_commits: Vec::new(),
            ts_prefix_max_start: Vec::new(),
            ts_max_seen: 0,
            mops: 0,
            n_committed: 0,
            n_aborted: 0,
            delta_txns: Vec::new(),
            newly_committed: Vec::new(),
            events_this_epoch: 0,
            needs_rebuild: false,
            key_types_changed: false,
            epoch: 0,
            quarantined: 0,
            panic_at_epoch: None,
            window: WindowPolicy::Unbounded,
            retired_edge_counts: [0; 8],
            retired_mops: 0,
            retired_committed: 0,
            retired_aborted: 0,
            retired_committed_writes: 0,
            retired_observed_writes: 0,
            rt_seed_max: 0,
            retired_keys: Vec::new(),
            evicted: BTreeMap::new(),
        }
    }

    /// A stream checker with a bounded-memory [`WindowPolicy`].
    pub fn with_window(opts: CheckOptions, window: WindowPolicy) -> StreamChecker {
        StreamChecker {
            window,
            ..StreamChecker::new(opts)
        }
    }

    /// The active retirement policy.
    pub fn window_policy(&self) -> WindowPolicy {
        self.window
    }

    /// Change the retirement policy (takes effect at the next seal).
    /// `elle-serve` tightens the window this way when a tenant crosses
    /// its hard resident-byte limit.
    pub fn set_window_policy(&mut self, window: WindowPolicy) {
        self.window = window;
    }

    /// Transactions retired from the window since stream start.
    pub fn retired_txns(&self) -> usize {
        self.pairer.history().base() as usize
    }

    /// A deterministic estimate of resident incremental state, in
    /// bytes. Length-based (never capacity-based) so identical streams
    /// report identical gauges; element payloads (list read values) are
    /// charged at their header size only.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let history = self.pairer.history();
        let mut total = 0usize;
        for t in history.txns() {
            total += size_of::<Transaction>() + t.mops.len() * size_of::<Mop>();
        }
        total += self.postings.sorted.len() * size_of::<(Key, TxnId)>();
        total += self.elems.resident_bytes();
        total += self.deps.resident_bytes();
        for cache in [&self.list, &self.reg, &self.set] {
            for sink in cache.sinks.values() {
                total += sink.edges.len() * size_of::<Edge>()
                    + sink.observed_elems.len() * size_of::<Elem>()
                    + sink.anomalies.len() * size_of::<Arc<Anomaly>>();
            }
        }
        for (anoms, edges) in self.counter.sinks.values() {
            total += edges.len() * size_of::<Edge>() + anoms.len() * size_of::<Arc<Anomaly>>();
        }
        total +=
            (self.coverage.pairs.len() + self.coverage.observed.len()) * size_of::<(Key, Elem)>();
        total += self.rt_completes.len() * size_of::<(usize, TxnId)>()
            + self.rt_prefix_max_invoke.len() * size_of::<usize>();
        total += self.ts_commits.len() * size_of::<(u64, TxnId)>()
            + self.ts_prefix_max_start.len() * size_of::<u64>();
        total
    }

    /// Window gauges, `Some` iff a bounded policy is active.
    fn window_stats(&self) -> Option<WindowStats> {
        (self.window != WindowPolicy::Unbounded).then(|| {
            let history = self.pairer.history();
            let base = history.base() as usize;
            WindowStats {
                retired_txns: base,
                retained_txns: history.len() - base,
                resident_bytes: self.resident_bytes(),
                exact: self.evicted.is_empty(),
            }
        })
    }

    /// The policy's unclamped retirement watermark for this seal, or
    /// `None` when nothing should retire. Timestamp edges disable
    /// retirement outright: they are not id-forward, so a retired
    /// prefix could still gain incoming edges.
    fn retire_target(&self) -> Option<u32> {
        if self.opts.timestamp_edges {
            return None;
        }
        let history = self.pairer.history();
        let base = history.base() as usize;
        let n = history.len();
        let target = match self.window {
            WindowPolicy::Unbounded => return None,
            WindowPolicy::TxnCount(w) => n.saturating_sub(w),
            WindowPolicy::Bytes(budget) => {
                if self.resident_bytes() <= budget {
                    return None;
                }
                // Geometric: retire half the retained suffix per seal
                // until the budget holds or the clamps stop us.
                let retained = n - base;
                let keep = (retained / 2).max(MIN_RETAIN_TXNS.min(retained));
                n - keep
            }
        };
        (target > base).then_some(target as u32)
    }

    /// Lower `r` until every key's touchers are wholly on one side of
    /// it. Datatype edges live within a key, so key quiescence is what
    /// makes prefix retirement edge-complete: a retained key never
    /// holds an edge into the retired prefix.
    fn clamp_quiescent(&self, mut r: u32) -> u32 {
        let s = &self.postings.sorted;
        debug_assert!(self.postings.tail.is_empty(), "clamp before seal");
        loop {
            let mut changed = false;
            let mut i = 0;
            while i < s.len() {
                let key = s[i].0;
                let mut j = i + 1;
                while j < s.len() && s[j].0 == key {
                    j += 1;
                }
                let (min_t, max_t) = (s[i].1 .0, s[j - 1].1 .0);
                if min_t < r && max_t >= r {
                    r = min_t;
                    changed = true;
                }
                i = j;
            }
            if !changed {
                return r;
            }
        }
    }

    /// Retire the prefix `[base, r)`: fold its facts into summaries,
    /// drop its state from every index, and advance the window base.
    /// Callers must have clamped `r` (open invocations, live SCCs, key
    /// quiescence).
    fn retire_to(&mut self, r: u32) {
        let history = self.pairer.history();
        let old_base = history.base();
        debug_assert!(r > old_base);

        // Scalars of the retiring transactions (snapshot carry only —
        // the live running stats already include them).
        for t in &history.txns()[..(r - old_base) as usize] {
            self.retired_mops += t.mops.len();
            match t.status {
                TxnStatus::Committed => self.retired_committed += 1,
                TxnStatus::Aborted => self.retired_aborted += 1,
                TxnStatus::Indeterminate => {}
            }
        }

        // Keys wholly on the retired side (quiescence guarantees no
        // straddlers); ascending because postings are sorted.
        let mut retiring: Vec<Key> = Vec::new();
        {
            let s = &self.postings.sorted;
            let mut i = 0;
            while i < s.len() {
                let key = s[i].0;
                let mut j = i + 1;
                while j < s.len() && s[j].0 == key {
                    j += 1;
                }
                if s[j - 1].1 .0 < r {
                    retiring.push(key);
                } else {
                    debug_assert!(s[i].1 .0 >= r, "key {key} straddles watermark {r}");
                }
                i = j;
            }
        }

        // Stash finished facts before the indexes forget them: internal
        // anomalies of retired transactions, and the retiring keys'
        // duplicate-write and sink anomalies.
        {
            let list_keys = self.kt.keys_of(DataType::List);
            stash_retired_dt::<elle_core::list_append::ListAppend>(
                &mut self.list,
                &list_keys,
                &retiring,
                history,
                &self.elems,
                r,
            );
            let reg_keys = self.kt.keys_of(DataType::Register);
            stash_retired_dt::<elle_core::rw_register::RwRegister>(
                &mut self.reg,
                &reg_keys,
                &retiring,
                history,
                &self.elems,
                r,
            );
            let set_keys = self.kt.keys_of(DataType::Set);
            stash_retired_dt::<elle_core::set_add::SetAdd>(
                &mut self.set,
                &set_keys,
                &retiring,
                history,
                &self.elems,
                r,
            );
            let counter_keys = self.kt.keys_of(DataType::Counter);
            let live = self.counter.internal.split_off(&TxnId(r));
            let retired_part = std::mem::replace(&mut self.counter.internal, live);
            for (_, list) in retired_part {
                self.counter.retired_internal.extend(list);
            }
            for &k in retiring
                .iter()
                .filter(|k| counter_keys.binary_search(k).is_ok())
            {
                if let Some((anoms, _)) = self.counter.sinks.remove(&k) {
                    if !anoms.is_empty() {
                        self.counter
                            .retired_sinks
                            .entry(k)
                            .or_default()
                            .extend(anoms);
                    }
                }
            }
        }

        // Fold the retiring keys' coverage contributions into scalars;
        // their (key, elem) entries leave the maps. The live totals are
        // unchanged — only the conflict-driven coverage rebuild (which
        // recomputes from the retained history) needs the fold.
        let mut folded_committed = 0usize;
        let mut folded_observed = 0usize;
        {
            let observed = &self.coverage.observed;
            self.coverage.pairs.retain(|&(k, e), c| {
                if retiring.binary_search(&k).is_ok() {
                    folded_committed += *c as usize;
                    if observed.contains(&(k, e)) {
                        folded_observed += *c as usize;
                    }
                    false
                } else {
                    true
                }
            });
        }
        self.coverage
            .observed
            .retain(|&(k, _)| retiring.binary_search(&k).is_err());
        self.retired_committed_writes += folded_committed;
        self.retired_observed_writes += folded_observed;

        // Drop the retiring keys from every per-key index.
        self.elems.retire_keys(&retiring);
        self.postings
            .sorted
            .retain(|&(k, _)| retiring.binary_search(&k).is_err());
        for &k in &retiring {
            self.assigned.remove(&k);
        }

        // Compact the graph spine: the retired prefix's edges fold into
        // the per-class extra counts the report keeps quoting.
        let dropped = self.deps.retire_below(r);
        for (c, d) in dropped.into_iter().enumerate() {
            self.retired_edge_counts[c] += d;
        }

        // Prune the realtime completion frontier: the prefix that no
        // future (or replayed) interval-order window can reach, and
        // whose entries are retired. Surviving prefix-max values are
        // running maxes over the *full* original array, so draining in
        // parallel keeps them exact; the seed covers the drained part.
        if self.opts.realtime_edges && !self.rt_completes.is_empty() {
            let min_open_invoke = self
                .pairer
                .open_entries()
                .first()
                .map(|&(_, id, _)| history.get(id).invoke_index)
                .unwrap_or(usize::MAX);
            let j = self
                .rt_completes
                .partition_point(|&(c, _)| c < min_open_invoke);
            let s_star = if j > 0 {
                self.rt_prefix_max_invoke[j - 1]
            } else {
                0
            };
            let mut p = 0;
            while p < self.rt_completes.len() {
                let (c, id) = self.rt_completes[p];
                if c < s_star && id.0 < r {
                    p += 1;
                } else {
                    break;
                }
            }
            if p > 0 {
                self.rt_seed_max = self.rt_seed_max.max(self.rt_prefix_max_invoke[p - 1]);
                self.rt_completes.drain(..p);
                self.rt_prefix_max_invoke.drain(..p);
            }
        }

        // Advance the window base (drops the retired transactions).
        self.pairer.retire_prefix(r);

        // Remember the retired keys: a later touch compromises them.
        if self.retired_keys.is_empty() {
            self.retired_keys = retiring;
        } else {
            self.retired_keys.extend(retiring);
            self.retired_keys.sort_unstable();
            self.retired_keys.dedup();
        }
    }

    /// Re-derive every retained committed transaction's realtime edges
    /// from the carried completion frontier — the windowed rebuild
    /// path. Per-transaction windows over the final array equal the
    /// incremental per-commit computation (completion indices are
    /// monotone, so later entries never enter an earlier window), and
    /// retired sources are skipped without recounting: their edges were
    /// folded into the retired edge counts when first derived.
    fn replay_realtime_edges(&self, deps: &mut DepGraph, history: &History, base: u32) {
        for t in history.txns() {
            if t.status != TxnStatus::Committed {
                continue;
            }
            let k = self
                .rt_completes
                .partition_point(|&(c, _)| c < t.invoke_index);
            if k == 0 {
                continue;
            }
            let s = self.rt_prefix_max_invoke[k - 1];
            let lo = self.rt_completes.partition_point(|&(c, _)| c < s);
            for &(c, a) in &self.rt_completes[lo..k] {
                if a.0 >= base {
                    deps.add(
                        a,
                        t.id,
                        Witness::Realtime {
                            complete: c,
                            invoke: t.invoke_index,
                        },
                    );
                }
            }
        }
    }

    /// The paired prefix ingested so far.
    pub fn history(&self) -> &History {
        self.pairer.history()
    }

    /// Transactions ingested so far (open invocations included).
    pub fn txn_count(&self) -> usize {
        self.pairer.history().len()
    }

    /// Epochs sealed so far.
    pub fn epochs_sealed(&self) -> usize {
        self.epoch
    }

    /// Ingest one event. The event is *not* retained: the pairer's open
    /// table plus the paired history are the only pairing state.
    pub fn ingest_event(&mut self, ev: &Event) -> Result<(), PairingError> {
        self.ingest_event_with(ev, RecoveryPolicy::Strict)
            .map(|_| ())
    }

    /// Ingest one event under a [`RecoveryPolicy`]. `Strict` is exactly
    /// [`StreamChecker::ingest_event`]; `Quarantine` repairs pairing
    /// violations (skip / adopt orphan / abandon open — see
    /// [`elle_history::ingest`]) and folds the repaired transaction into
    /// the incremental state. Returns what recovery did, so callers can
    /// attach source positions to diagnostics.
    pub fn ingest_event_with(
        &mut self,
        ev: &Event,
        policy: RecoveryPolicy,
    ) -> Result<Recovered, PairingError> {
        let recovered = self.pairer.feed_with(ev, policy)?;
        match &recovered {
            Recovered::Ingested(Ingest::Invoked(id)) => self.note_invoked(*id),
            Recovered::Ingested(Ingest::Completed(id)) => self.note_completed(*id),
            Recovered::Skipped(_) => self.quarantined += 1,
            Recovered::Adopted(id, _) => {
                self.note_adopted(*id);
                self.quarantined += 1;
            }
            Recovered::Abandoned { admitted, .. } => {
                // The abandoned transaction's indexed state is already
                // exactly right: an open invocation that will never
                // complete. Only the admitted invocation is new.
                self.note_invoked(*admitted);
                self.quarantined += 1;
            }
        }
        self.events_this_epoch += 1;
        Ok(recovered)
    }

    /// Events quarantined by the recovery policy since stream start.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    fn note_invoked(&mut self, id: TxnId) {
        let t = self.pairer.history().get(id);
        self.kt.note_txn(t);
        self.elems.index_txn(t);
        self.mops += t.mops.len();
        let tail_start = self.postings.tail_len();
        for m in &t.mops {
            self.postings.note(m.key(), id, tail_start);
        }
        // Open transactions may have committed: their writes count
        // until an abort proves otherwise (batch counts indeterminate
        // writers the same way).
        for (_, k, e) in t.elem_writes() {
            self.coverage.add_write(k, e);
        }
        self.delta_txns.push(id);
    }

    fn note_completed(&mut self, id: TxnId) {
        let t = self.pairer.history().get(id);
        self.kt.note_txn(t);
        self.elems.update_status(t);
        self.delta_txns.push(id);
        match t.status {
            TxnStatus::Committed => {
                self.n_committed += 1;
                self.newly_committed.push(id);
            }
            TxnStatus::Aborted => {
                self.n_aborted += 1;
                let writes: Vec<(Key, Elem)> = t.elem_writes().map(|(_, k, e)| (k, e)).collect();
                for (k, e) in writes {
                    self.coverage.retract_write(k, e);
                }
            }
            TxnStatus::Indeterminate => {}
        }
    }

    /// Fold an adopted orphan — born already completed — into the
    /// incremental state: the invoke-side bookkeeping with the final
    /// mops and status, plus the completion-side counters.
    fn note_adopted(&mut self, id: TxnId) {
        let t = self.pairer.history().get(id);
        self.kt.note_txn(t);
        // `index_txn` stamps each write with the transaction's *current*
        // status — final for an adopted orphan, so no `update_status`.
        self.elems.index_txn(t);
        self.mops += t.mops.len();
        let tail_start = self.postings.tail_len();
        for m in &t.mops {
            self.postings.note(m.key(), id, tail_start);
        }
        match t.status {
            TxnStatus::Committed => {
                self.n_committed += 1;
                self.newly_committed.push(id);
            }
            TxnStatus::Aborted => {
                self.n_aborted += 1;
            }
            TxnStatus::Indeterminate => {}
        }
        if t.status.may_have_committed() {
            for (_, k, e) in t.elem_writes() {
                self.coverage.add_write(k, e);
            }
        }
        self.delta_txns.push(id);
    }

    /// Ingest every event of a log in order.
    pub fn ingest_log(&mut self, log: &elle_history::EventLog) -> Result<(), PairingError> {
        for ev in log.events() {
            self.ingest_event(ev)?;
        }
        Ok(())
    }

    /// Seal the current epoch: run the incremental analysis over the
    /// epoch's delta and report on the entire prefix ingested so far.
    pub fn seal_epoch(&mut self) -> EpochReport {
        if self.panic_at_epoch == Some(self.epoch) {
            panic!("injected seal panic (epoch {})", self.epoch);
        }
        let mut timings = StageTimings::default();
        let mut clock = Instant::now();
        fn lap(timings: &mut StageTimings, name: &str, clock: &mut Instant) {
            timings
                .stages
                .push((name.to_string(), clock.elapsed().as_secs_f64()));
            *clock = Instant::now();
        }

        // ── Delta sets. ───────────────────────────────────────────────
        self.delta_txns.sort_unstable();
        self.delta_txns.dedup();
        self.postings.seal();
        let history = self.pairer.history();
        let mut dirty: FxHashSet<Key> = FxHashSet::default();
        for &id in &self.delta_txns {
            for m in &history.get(id).mops {
                dirty.insert(m.key());
            }
        }
        // Compromised keys: a retired key re-touched by the live stream.
        // Its version evidence left the window, so re-analysis could
        // fabricate anomalies (every old writer looks missing) — exclude
        // it from per-key analysis and pin a sticky indeterminacy
        // marker instead.
        if !self.retired_keys.is_empty() {
            let compromised: Vec<Key> = dirty
                .iter()
                .copied()
                .filter(|k| self.retired_keys.binary_search(k).is_ok())
                .collect();
            for k in compromised {
                dirty.remove(&k);
                self.evicted
                    .entry(k)
                    .or_insert_with(|| Arc::new(window_evicted_anomaly(k)));
            }
        }
        // Datatype reassignment (conflicted keys): evict stale sinks and
        // force the rebuild path — internal caches keyed on the old
        // partition are stale too.
        for &k in &dirty {
            let now = self.kt.get(k);
            match self.assigned.get(&k) {
                Some(prev) if Some(*prev) != now => {
                    self.key_types_changed = true;
                    self.needs_rebuild = true;
                    for cache in [&mut self.list, &mut self.reg, &mut self.set] {
                        cache.sinks.remove(&k);
                    }
                    self.counter.sinks.remove(&k);
                }
                _ => {}
            }
            if let Some(ty) = now {
                self.assigned.insert(k, ty);
            }
        }
        lap(&mut timings, "delta bookkeeping", &mut clock);

        // ── Datatype refresh: internal passes over the delta txns,
        //    per-key re-analysis of dirty keys with gather scoped to
        //    their postings. ───────────────────────────────────────────
        let history = self.pairer.history();
        let full_internal = self.key_types_changed;
        let mut scoped_txn_count = 0usize;
        let mut dirty_count = 0usize;
        let mut gather = GatherStats::default();
        let mut dt_delta_edges: Vec<Vec<Edge>> = Vec::with_capacity(4);
        {
            let list_keys = self.kt.keys_of(DataType::List);
            let (r, edges) = refresh_dt::<elle_core::list_append::ListAppend>(
                history,
                &self.elems,
                &list_keys,
                (),
                &dirty,
                &self.postings,
                &self.delta_txns,
                full_internal,
                &mut self.list,
                &mut self.coverage,
                &mut scoped_txn_count,
                &mut dirty_count,
                &mut gather,
            );
            self.needs_rebuild |= r;
            dt_delta_edges.push(edges);
            let reg_keys = self.kt.keys_of(DataType::Register);
            let (r, edges) = refresh_dt::<elle_core::rw_register::RwRegister>(
                history,
                &self.elems,
                &reg_keys,
                self.opts.registers,
                &dirty,
                &self.postings,
                &self.delta_txns,
                full_internal,
                &mut self.reg,
                &mut self.coverage,
                &mut scoped_txn_count,
                &mut dirty_count,
                &mut gather,
            );
            self.needs_rebuild |= r;
            dt_delta_edges.push(edges);
            let set_keys = self.kt.keys_of(DataType::Set);
            let (r, edges) = refresh_dt::<elle_core::set_add::SetAdd>(
                history,
                &self.elems,
                &set_keys,
                (),
                &dirty,
                &self.postings,
                &self.delta_txns,
                full_internal,
                &mut self.set,
                &mut self.coverage,
                &mut scoped_txn_count,
                &mut dirty_count,
                &mut gather,
            );
            self.needs_rebuild |= r;
            dt_delta_edges.push(edges);
        }
        // Counter refresh (not trait-driven, same shape).
        {
            let counter_keys = KeySlots::new(self.kt.keys_of(DataType::Counter));
            let cache = &mut self.counter;
            if full_internal {
                cache.internal.clear();
                for a in counter::internal_anomalies(history.txns().iter(), &counter_keys) {
                    cache
                        .internal
                        .entry(a.txns[0])
                        .or_default()
                        .push(Arc::new(a));
                }
            } else {
                for &id in &self.delta_txns {
                    cache.internal.remove(&id);
                }
                let delta_iter = self.delta_txns.iter().map(|id| history.get(*id));
                for a in counter::internal_anomalies(delta_iter, &counter_keys) {
                    cache
                        .internal
                        .entry(a.txns[0])
                        .or_default()
                        .push(Arc::new(a));
                }
            }
            let mut dirty_counter: Vec<Key> = dirty
                .iter()
                .copied()
                .filter(|k| counter_keys.contains(*k))
                .collect();
            dirty_counter.sort_unstable();
            dirty_count += dirty_counter.len();
            let scope = self.postings.scope_of(&dirty_counter);
            scoped_txn_count += scope.len();
            let dirty_slots = KeySlots::from_sorted(dirty_counter);
            let start = Instant::now();
            let mut buf = GatherBuf::new();
            counter::gather(
                scope.iter().map(|id| history.get(*id)),
                &dirty_slots,
                &mut buf,
            );
            let buf_bytes = buf.footprint_bytes();
            let grouped = buf.group(dirty_slots.len());
            gather.absorb(GatherStats {
                secs: start.elapsed().as_secs_f64(),
                buf_bytes: buf_bytes.max(grouped.footprint_bytes()),
            });
            let mut delta_edges: Vec<Edge> = Vec::new();
            for slot in grouped.occupied() {
                let key = dirty_slots.key(slot);
                let data = counter::CounterKeyData::from_occs(grouped.run(slot));
                let (anomalies, edges) = counter::analyze_key(history, key, &data);
                let old = cache.sinks.get(&key).map_or(&[][..], |(_, e)| e.as_slice());
                match edge_delta(old, &edges) {
                    Some(mut delta) => delta_edges.append(&mut delta),
                    None => self.needs_rebuild = true,
                }
                cache.sinks.insert(key, (intern(anomalies), edges));
            }
            dt_delta_edges.push(delta_edges);
        }
        if self.key_types_changed {
            // A key changed datatype: its old contribution to the
            // observed-pair set is stale (the new datatype may observe
            // different pairs, or none). Rebuild coverage from the
            // refreshed sinks — only on this rare, conflict-driven path.
            self.coverage = Coverage::default();
            for cache in [&self.list, &self.reg, &self.set] {
                for (key, sink) in &cache.sinks {
                    for &e in &sink.observed_elems {
                        self.coverage.observed.insert((*key, e));
                    }
                }
            }
            for t in history.txns() {
                if !t.status.may_have_committed() {
                    continue;
                }
                for (_, k, e) in t.elem_writes() {
                    self.coverage.add_write(k, e);
                }
            }
            // Retired transactions are gone from the history; re-apply
            // their folded write/observation scalars so the full-prefix
            // coverage counts survive the rebuild.
            self.coverage.committed_writes += self.retired_committed_writes;
            self.coverage.observed_writes += self.retired_observed_writes;
        }
        // The gather scans ran inside the refresh drivers; split their
        // share out of the delta-analysis lap so both stages read true.
        timings.stages.push(("gather".to_string(), gather.secs));
        timings.stages.push((
            "datatype delta analysis".to_string(),
            (clock.elapsed().as_secs_f64() - gather.secs).max(0.0),
        ));
        timings.gather_buf_peak = gather.buf_bytes;
        clock = Instant::now();

        // ── Derived orders for newly committed transactions. ──────────
        let history = self.pairer.history();
        let base = history.base();
        // An order edge whose source was retired crosses the window
        // boundary: the batch checker counts it, but adding it to the
        // carried graph would resurrect a retired vertex — fold it into
        // the retired edge counts at creation instead. (Boundary edges
        // are always id-forward and freshly targeted, hence distinct.)
        let mut boundary_counts = [0usize; 8];
        let emit = |edges: &mut Vec<Edge>, counts: &mut [usize; 8], a: TxnId, b, w: Witness| {
            if a.0 < base {
                counts[w.class() as usize] += 1;
            } else {
                edges.push((a, b, w));
            }
        };
        let mut order_edges: Vec<Edge> = Vec::new();
        for &id in &self.newly_committed {
            let t = history.get(id);
            if self.opts.process_edges {
                if let Some(prev) = self.proc_last.insert(t.process, id) {
                    emit(
                        &mut order_edges,
                        &mut boundary_counts,
                        prev,
                        id,
                        Witness::Process { process: t.process },
                    );
                }
            }
            if self.opts.realtime_edges {
                let complete = t.complete_index.expect("committed txns completed");
                // A restored windowed checker pre-loads the carried
                // completion frontier whole; replayed commits find
                // their entry already present (completion indices are
                // strictly monotone otherwise) and must neither re-push
                // nor re-emit — the restore-forced rebuild re-derives
                // their edges from the carried frontier.
                let preloaded = self
                    .rt_completes
                    .last()
                    .is_some_and(|&(c, _)| c >= complete);
                if !preloaded {
                    let k = self
                        .rt_completes
                        .partition_point(|(c, _)| *c < t.invoke_index);
                    if k > 0 {
                        let s = self.rt_prefix_max_invoke[k - 1];
                        let lo = self.rt_completes.partition_point(|(c, _)| *c < s);
                        for &(c, a) in &self.rt_completes[lo..k] {
                            emit(
                                &mut order_edges,
                                &mut boundary_counts,
                                a,
                                id,
                                Witness::Realtime {
                                    complete: c,
                                    invoke: t.invoke_index,
                                },
                            );
                        }
                    }
                    let prev_max = self
                        .rt_prefix_max_invoke
                        .last()
                        .copied()
                        .unwrap_or(self.rt_seed_max);
                    self.rt_completes.push((complete, id));
                    self.rt_prefix_max_invoke.push(prev_max.max(t.invoke_index));
                }
            }
            if self.opts.timestamp_edges {
                if let Some((start, commit)) = t.timestamps {
                    if commit < self.ts_max_seen {
                        // Out-of-order logical clocks: earlier epochs'
                        // timestamp edges may be stale — rebuild.
                        self.needs_rebuild = true;
                        let at = self.ts_commits.partition_point(|(c, _)| *c < commit);
                        self.ts_commits.insert(at, (commit, id));
                        recompute_prefix_max(
                            history,
                            &self.ts_commits,
                            &mut self.ts_prefix_max_start,
                        );
                    } else {
                        let k = self.ts_commits.partition_point(|(c, _)| *c < start);
                        if k > 0 {
                            let s = self.ts_prefix_max_start[k - 1];
                            let lo = self.ts_commits.partition_point(|(c, _)| *c < s);
                            for &(c, a) in &self.ts_commits[lo..k] {
                                order_edges.push((a, id, Witness::Timestamp { commit: c, start }));
                            }
                        }
                        let prev_max = self.ts_prefix_max_start.last().copied().unwrap_or(0);
                        self.ts_commits.push((commit, id));
                        self.ts_prefix_max_start.push(prev_max.max(start));
                    }
                    self.ts_max_seen = self.ts_max_seen.max(commit).max(start);
                }
            }
        }
        for (c, n) in boundary_counts.into_iter().enumerate() {
            self.retired_edge_counts[c] += n;
        }
        lap(&mut timings, "derived orders", &mut clock);

        // ── Apply to the carried graph (or rebuild it). ───────────────
        let rebuilt = self.needs_rebuild;
        let n = history.len();
        if self.needs_rebuild {
            let mut deps = DepGraph::with_txns(n);
            for cache in [&self.list, &self.reg, &self.set] {
                for sink in cache.sinks.values() {
                    for (a, b, w) in &sink.edges {
                        deps.add(*a, *b, w.clone());
                    }
                }
            }
            for (_, edges) in self.counter.sinks.values() {
                for (a, b, w) in edges {
                    deps.add(*a, *b, w.clone());
                }
            }
            if self.opts.process_edges {
                elle_core::add_process_edges(&mut deps, history);
            }
            if self.opts.realtime_edges {
                if base == 0 {
                    elle_core::add_realtime_edges(&mut deps, history);
                } else {
                    // Retained-only recomputation would mis-bound the
                    // interval-order windows (a retired completer can
                    // still define a retained transaction's frontier):
                    // re-derive from the carried completion arrays,
                    // skipping retired sources — those edges are
                    // already folded into the retired edge counts.
                    self.replay_realtime_edges(&mut deps, history, base);
                }
            }
            if self.opts.timestamp_edges {
                elle_core::add_timestamp_edges(&mut deps, history);
            }
            self.deps = deps;
        } else {
            for part in dt_delta_edges {
                self.deps.reserve_edges(part.len());
                for (a, b, w) in part {
                    self.deps.add(a, b, w);
                }
            }
            for (a, b, w) in order_edges {
                self.deps.add(a, b, w);
            }
        }
        self.deps.ensure_txns(n);
        lap(&mut timings, "graph delta", &mut clock);

        // ── Seal: two-way merge of the epoch's sorted edge delta into
        //    the carried sorted spine (block-copying untouched runs). ──
        self.deps.build();
        timings.edge_buf_peak = self.deps.take_edge_buf_peak();
        lap(&mut timings, "edge build", &mut clock);

        // ── Freeze (linear — the spine is already sorted) and search. ─
        let csr = self.deps.freeze();
        lap(&mut timings, "freeze", &mut clock);
        let history = self.pairer.history();
        let cycles = find_cycle_anomalies_frozen(
            &self.deps,
            &csr,
            history,
            CycleSearchOptions {
                process_edges: self.opts.process_edges,
                realtime_edges: self.opts.realtime_edges,
                timestamp_edges: self.opts.timestamp_edges,
                max_per_type: self.opts.max_cycles_per_type,
                certificate: true,
            },
        );
        lap(&mut timings, "cycle search", &mut clock);

        // ── Windowed retirement: drop the provably cycle-safe prefix. ─
        if let Some(target) = self.retire_target() {
            let mut r = target;
            // Clamp 1: every multi-vertex SCC stays whole and resident —
            // reported cycles must keep reporting, so their members are
            // pinned for the stream's lifetime.
            let mut scratch = Scratch::default();
            for scc in csr.tarjan_scc(EdgeMask::ALL, &mut scratch) {
                if let Some(&m) = scc.iter().min() {
                    r = r.min(m);
                }
            }
            drop(csr);
            // Clamp 2: open invocations (and everything after them) stay.
            if let Some(&(_, min_open, _)) = self.pairer.open_entries().first() {
                r = r.min(min_open.0);
            }
            // Clamp 3: key quiescence — every key wholly retired or
            // wholly retained, iterated to a fixpoint (lowering the
            // watermark can make another key straddle it).
            r = self.clamp_quiescent(r);
            if r > self.pairer.history().base() {
                self.retire_to(r);
            }
            lap(&mut timings, "retirement", &mut clock);
        } else {
            drop(csr);
        }
        self.deps.set_extra_counts(self.retired_edge_counts);
        let history = self.pairer.history();

        // ── Assemble the report in batch order. ───────────────────────
        use datatype::Vocab;
        let mut anomalies: Vec<Arc<Anomaly>> = Vec::new();
        let parts: [(&DtCache, &Vocab, DataType); 3] = [
            (
                &self.list,
                &<elle_core::list_append::ListAppend as DatatypeAnalysis>::VOCAB,
                DataType::List,
            ),
            (
                &self.reg,
                &<elle_core::rw_register::RwRegister as DatatypeAnalysis>::VOCAB,
                DataType::Register,
            ),
            (
                &self.set,
                &<elle_core::set_add::SetAdd as DatatypeAnalysis>::VOCAB,
                DataType::Set,
            ),
        ];
        for (cache, vocab, dt) in parts {
            let keys = KeySlots::new(self.kt.keys_of(dt));
            if keys.is_empty() && !cache.has_retired() {
                continue;
            }
            // Retired-prefix facts first; `assemble_report`'s stable
            // sort on (type, txns) canonicalizes the final order, and
            // retired/live anomalies never tie (their txn ids live on
            // opposite sides of the watermark).
            anomalies.extend(cache.retired_internal.iter().cloned());
            for list in cache.internal.values() {
                anomalies.extend(list.iter().cloned());
            }
            for list in cache.retired_dups.values() {
                anomalies.extend(list.iter().cloned());
            }
            if !keys.is_empty() {
                let cx = AnalysisCtx {
                    history,
                    elems: &self.elems,
                    keys,
                    config: (),
                    scope: None,
                };
                let (dups, _) = duplicate_anomalies(&cx, vocab);
                anomalies.extend(intern(dups));
            }
            for list in cache.retired_sinks.values() {
                anomalies.extend(list.iter().cloned());
            }
            for sink in cache.sinks.values() {
                anomalies.extend(sink.anomalies.iter().cloned());
            }
        }
        if !self.kt.keys_of(DataType::Counter).is_empty()
            || !self.counter.retired_internal.is_empty()
            || !self.counter.retired_sinks.is_empty()
        {
            anomalies.extend(self.counter.retired_internal.iter().cloned());
            for list in self.counter.internal.values() {
                anomalies.extend(list.iter().cloned());
            }
            for list in self.counter.retired_sinks.values() {
                anomalies.extend(list.iter().cloned());
            }
            for (anoms, _) in self.counter.sinks.values() {
                anomalies.extend(anoms.iter().cloned());
            }
        }
        anomalies.extend(self.evicted.values().cloned());
        anomalies.extend(intern(cycles));

        let warnings: Vec<String> = self
            .kt
            .conflicts
            .iter()
            .map(|k| {
                format!("key {k} is used as more than one datatype; its inferences are unreliable")
            })
            .collect();
        let stats = CheckStats {
            txns: n,
            mops: self.mops,
            committed: self.n_committed,
            aborted: self.n_aborted,
            indeterminate: n - self.n_committed - self.n_aborted,
            edges: BTreeMap::new(), // filled by assemble_report
            committed_writes: self.coverage.committed_writes,
            observed_writes: self.coverage.observed_writes,
        };
        let report = assemble_report(self.opts.expected, anomalies, &self.deps, stats, warnings);
        lap(&mut timings, "report assembly", &mut clock);
        timings.pool_peak = elle_core::pool::take_peak_bytes();
        timings.quarantined_events = self.quarantined;
        let window = self.window_stats();
        if let Some(w) = &window {
            timings.resident_bytes = w.resident_bytes;
            timings.retired_txns = w.retired_txns;
        }

        let out = EpochReport {
            epoch: self.epoch,
            events: self.events_this_epoch,
            txns: n,
            report,
            rebuilt,
            frontier: FrontierStats {
                open_txns: self.pairer.open_count(),
                cached_keys: self.list.sinks.len()
                    + self.reg.sinks.len()
                    + self.set.sinks.len()
                    + self.counter.sinks.len(),
                dirty_keys: dirty_count,
                scoped_txns: scoped_txn_count,
                quarantined_events: self.quarantined,
            },
            timings,
            poisoned: None,
            window,
        };
        // ── Reclaim epoch-delta state: memory tracks the frontier. ────
        self.delta_txns = Vec::new();
        self.newly_committed = Vec::new();
        self.events_this_epoch = 0;
        self.needs_rebuild = false;
        self.key_types_changed = false;
        self.epoch += 1;
        out
    }

    /// Seal with panic isolation: a panic anywhere in the seal is
    /// caught, the epoch is reported as **poisoned** (indeterminate
    /// verdict carrying the panic message), the checker's incremental
    /// state is rebuilt from the paired history — which sealing never
    /// mutates, so it survives a mid-seal panic intact — and subsequent
    /// epochs keep sealing normally (the rebuilt state takes the full
    /// batch-equivalent path on its next seal).
    pub fn seal_epoch_guarded(&mut self) -> EpochReport {
        match catch_unwind(AssertUnwindSafe(|| self.seal_epoch())) {
            Ok(out) => out,
            Err(payload) => {
                let message = elle_core::panic_message(payload.as_ref());
                self.recover_from_history();
                let n = self.txn_count();
                let stats = CheckStats {
                    txns: n,
                    mops: self.mops,
                    committed: self.n_committed,
                    aborted: self.n_aborted,
                    indeterminate: n - self.n_committed - self.n_aborted,
                    edges: BTreeMap::new(),
                    committed_writes: self.coverage.committed_writes,
                    observed_writes: self.coverage.observed_writes,
                };
                let warnings = vec![format!(
                    "epoch {} poisoned by a checker panic: {message}; \
                     state rebuilt from the paired history",
                    self.epoch
                )];
                let report = assemble_report(
                    self.opts.expected,
                    Vec::new(),
                    &DepGraph::with_txns(0),
                    stats,
                    warnings,
                );
                let timings = StageTimings {
                    quarantined_events: self.quarantined,
                    ..StageTimings::default()
                };
                let events = self.events_this_epoch;
                // The poisoned epoch is consumed: its delta is folded
                // into the rebuilt (all-delta) state and the ordinal
                // advances so the stream keeps its epoch numbering.
                self.events_this_epoch = 0;
                let out = EpochReport {
                    epoch: self.epoch,
                    events,
                    txns: n,
                    report,
                    rebuilt: true,
                    frontier: FrontierStats {
                        open_txns: self.pairer.open_count(),
                        cached_keys: 0,
                        dirty_keys: 0,
                        scoped_txns: 0,
                        quarantined_events: self.quarantined,
                    },
                    timings,
                    poisoned: Some(message),
                    window: self.window_stats(),
                };
                self.epoch += 1;
                out
            }
        }
    }

    /// Capture everything needed to reconstruct this checker in
    /// another process: the synthesized accepted-event sequence (the
    /// same replay path [`StreamChecker::seal_epoch_guarded`]'s
    /// in-process recovery uses) plus the carried counters — the epoch
    /// ordinal, the quarantine gauge, and the partial epoch's event
    /// count — so a [`StreamChecker::restore`]d checker's next
    /// [`EpochReport`] is byte-stable with the pre-crash numbering.
    pub fn snapshot(&self) -> CheckerSnapshot {
        CheckerSnapshot {
            epoch: self.epoch,
            quarantined: self.quarantined,
            events_this_epoch: self.events_this_epoch,
            events: self.synthesize_events(),
            window: self.window_carry(),
        }
    }

    /// The retired-prefix carry for [`StreamChecker::snapshot`]:
    /// `Some` iff a bounded policy is active or anything has retired.
    fn window_carry(&self) -> Option<WindowCarry> {
        let base = self.pairer.history().base();
        if self.window == WindowPolicy::Unbounded && base == 0 {
            return None;
        }
        let unpack = |list: &[Arc<Anomaly>]| -> Vec<Anomaly> {
            list.iter().map(|a| (**a).clone()).collect()
        };
        let unpack_map = |m: &BTreeMap<Key, Vec<Arc<Anomaly>>>| -> Vec<(Key, Vec<Anomaly>)> {
            m.iter().map(|(k, v)| (*k, unpack(v))).collect()
        };
        let stash_of = |cache: &DtCache| DtStashCarry {
            internal: unpack(&cache.retired_internal),
            dups: unpack_map(&cache.retired_dups),
            sinks: unpack_map(&cache.retired_sinks),
        };
        let mut proc_last_retired: Vec<(u32, u32)> = self
            .proc_last
            .iter()
            .filter(|&(_, id)| id.0 < base)
            .map(|(&p, &id)| (p.0, id.0))
            .collect();
        proc_last_retired.sort_unstable();
        Some(WindowCarry {
            base,
            policy: self.window,
            retired_edge_counts: self.retired_edge_counts.to_vec(),
            retired_mops: self.retired_mops,
            retired_committed: self.retired_committed,
            retired_aborted: self.retired_aborted,
            retired_committed_writes: self.retired_committed_writes,
            retired_observed_writes: self.retired_observed_writes,
            rt_seed_max: self.rt_seed_max,
            rt_completes: self.rt_completes.iter().map(|&(c, id)| (c, id.0)).collect(),
            rt_prefix_max_invoke: self.rt_prefix_max_invoke.clone(),
            proc_last_retired,
            retired_keys: self.retired_keys.clone(),
            retired_key_masks: self
                .retired_keys
                .iter()
                .map(|&k| (k, self.kt.mask_of(k)))
                .collect(),
            evicted: self
                .evicted
                .iter()
                .map(|(k, a)| (*k, (**a).clone()))
                .collect(),
            stashes: vec![
                stash_of(&self.list),
                stash_of(&self.reg),
                stash_of(&self.set),
                DtStashCarry {
                    internal: unpack(&self.counter.retired_internal),
                    dups: Vec::new(),
                    sinks: unpack_map(&self.counter.retired_sinks),
                },
            ],
        })
    }

    /// Rebuild a checker from a [`CheckerSnapshot`]: feed the
    /// synthesized events through a fresh checker under
    /// [`RecoveryPolicy::Quarantine`] (adopted orphans re-enter as bare
    /// completions and re-adopt; abandoned opens re-abandon), then
    /// restore the epoch ordinal and quarantine gauge the replay itself
    /// cannot know. The restored checker's next seal takes the full
    /// batch-equivalent path, so its report is byte-identical to an
    /// uninterrupted run's.
    pub fn restore(opts: CheckOptions, snap: &CheckerSnapshot) -> StreamChecker {
        let mut fresh = StreamChecker::new(opts);
        if let Some(c) = &snap.window {
            // Pre-replay: the id base (so replayed transactions keep
            // their original ids), the carried realtime frontier, the
            // retired processes' chain tails, and the retired keys'
            // type masks.
            fresh.window = c.policy;
            fresh.pairer = StreamingPairer::with_base(c.base);
            fresh.rt_seed_max = c.rt_seed_max;
            fresh.rt_completes = c
                .rt_completes
                .iter()
                .map(|&(i, id)| (i, TxnId(id)))
                .collect();
            fresh.rt_prefix_max_invoke = c.rt_prefix_max_invoke.clone();
            for &(p, id) in &c.proc_last_retired {
                fresh.proc_last.insert(ProcessId(p), TxnId(id));
            }
            for &(k, mask) in &c.retired_key_masks {
                fresh.kt.preload_mask(k, mask);
            }
        }
        for ev in &snap.events {
            // Synthesized events can only trip the violations recovery
            // repairs (orphan adoption, open abandonment); Quarantine
            // absorbs them and reproduces the same transactions.
            let _ = fresh.ingest_event_with(ev, RecoveryPolicy::Quarantine);
        }
        if let Some(c) = &snap.window {
            for (slot, &v) in fresh
                .retired_edge_counts
                .iter_mut()
                .zip(c.retired_edge_counts.iter())
            {
                *slot = v;
            }
            fresh.retired_mops = c.retired_mops;
            fresh.mops += c.retired_mops;
            fresh.retired_committed = c.retired_committed;
            fresh.n_committed += c.retired_committed;
            fresh.retired_aborted = c.retired_aborted;
            fresh.n_aborted += c.retired_aborted;
            fresh.retired_committed_writes = c.retired_committed_writes;
            fresh.coverage.committed_writes += c.retired_committed_writes;
            fresh.retired_observed_writes = c.retired_observed_writes;
            fresh.coverage.observed_writes += c.retired_observed_writes;
            fresh.retired_keys = c.retired_keys.clone();
            fresh.evicted = c
                .evicted
                .iter()
                .map(|(k, a)| (*k, Arc::new(a.clone())))
                .collect();
            if let [l, rg, st, ct] = c.stashes.as_slice() {
                apply_stash(&mut fresh.list, l);
                apply_stash(&mut fresh.reg, rg);
                apply_stash(&mut fresh.set, st);
                fresh.counter.retired_internal =
                    ct.internal.iter().cloned().map(Arc::new).collect();
                fresh.counter.retired_sinks = ct
                    .sinks
                    .iter()
                    .map(|(k, v)| (*k, v.iter().cloned().map(Arc::new).collect()))
                    .collect();
            }
            // The first seal must rebuild: replayed commits' realtime
            // edges come from the carried frontier, not per-commit
            // re-derivation (see the derived-orders preload guard).
            fresh.needs_rebuild = true;
        }
        fresh.epoch = snap.epoch;
        fresh.quarantined = snap.quarantined;
        fresh.events_this_epoch = snap.events_this_epoch;
        fresh
    }

    /// The check options this checker judges against.
    pub fn options(&self) -> CheckOptions {
        self.opts
    }

    /// Synthesize the accepted event sequence the paired history
    /// encodes, sorted by index. Transaction ids are reproduced exactly
    /// on replay — ids are assigned in accepted-event index order, and
    /// synthesis emits events in that same order.
    fn synthesize_events(&self) -> Vec<Event> {
        let open_ts: FxHashMap<TxnId, Option<u64>> = self
            .pairer
            .open_entries()
            .into_iter()
            .map(|(_, id, ts)| (id, ts))
            .collect();
        let history = self.pairer.history();
        let mut events: Vec<Event> = Vec::with_capacity(history.len() * 2);
        for t in history.txns() {
            let kind = match t.status {
                TxnStatus::Committed => EventKind::Ok,
                TxnStatus::Aborted => EventKind::Fail,
                TxnStatus::Indeterminate => EventKind::Info,
            };
            match t.complete_index {
                // Adopted orphan: one completion event, re-adopted on
                // replay.
                Some(ci) if ci == t.invoke_index => events.push(Event {
                    index: ci,
                    process: t.process,
                    kind,
                    mops: t.mops.clone(),
                    time_ns: None,
                }),
                complete => {
                    events.push(Event {
                        index: t.invoke_index,
                        process: t.process,
                        kind: EventKind::Invoke,
                        mops: t.mops.iter().map(Mop::to_invocation).collect(),
                        time_ns: t
                            .timestamps
                            .map(|(s, _)| s)
                            .or_else(|| open_ts.get(&t.id).copied().flatten()),
                    });
                    if let Some(ci) = complete {
                        events.push(Event {
                            index: ci,
                            process: t.process,
                            kind,
                            mops: t.mops.clone(),
                            time_ns: t.timestamps.map(|(_, c)| c),
                        });
                    }
                }
            }
        }
        events.sort_unstable_by_key(|e| e.index);
        events
    }

    /// Rebuild every piece of incremental state from the paired history
    /// (the one structure sealing never mutates), via the same
    /// snapshot → restore path service restarts use, carrying the test
    /// panic hook over.
    fn recover_from_history(&mut self) {
        let fresh = StreamChecker::restore(self.opts, &self.snapshot());
        debug_assert_eq!(fresh.pairer.history(), self.pairer.history());
        let panic_at = self.panic_at_epoch;
        *self = fresh;
        self.panic_at_epoch = panic_at;
    }

    /// Test hook: make the seal of epoch ordinal `epoch` panic, to
    /// exercise poisoned-epoch isolation deterministically.
    #[doc(hidden)]
    pub fn inject_seal_panic(&mut self, epoch: usize) {
        self.panic_at_epoch = Some(epoch);
    }
}

/// Re-intern one datatype's carried stash on restore.
fn apply_stash(cache: &mut DtCache, carry: &DtStashCarry) {
    let pack = |v: &[Anomaly]| -> Vec<Arc<Anomaly>> { v.iter().cloned().map(Arc::new).collect() };
    cache.retired_internal = pack(&carry.internal);
    cache.retired_dups = carry.dups.iter().map(|(k, v)| (*k, pack(v))).collect();
    cache.retired_sinks = carry.sinks.iter().map(|(k, v)| (*k, pack(v))).collect();
}

/// The sticky indeterminacy marker for a compromised key: evidence the
/// live stream now needs was retired from the window. It violates no
/// isolation model (the verdict stays whatever the retained evidence
/// says) — it flags that anomalies needing the evicted history can
/// neither be confirmed nor ruled out for this key.
fn window_evicted_anomaly(k: Key) -> Anomaly {
    Anomaly {
        typ: AnomalyType::WindowEvicted,
        txns: Vec::new(),
        key: Some(k),
        steps: Vec::new(),
        explanation: format!(
            "key {k} was touched after its version evidence was retired from the \
             window; anomalies that would need the evicted history are \
             indeterminate for this key"
        ),
    }
}

/// Move one datatype's retired facts into its stash: internal anomalies
/// of transactions below the watermark, and the retiring keys'
/// duplicate-write and sink anomalies. Runs *before* the element index
/// forgets the keys, so the duplicate anomalies render exactly as the
/// batch checker would have rendered them.
fn stash_retired_dt<D: DatatypeAnalysis>(
    cache: &mut DtCache,
    dt_keys: &[Key],
    retiring: &[Key],
    history: &History,
    elems: &ElemIndex,
    r: u32,
) {
    let live = cache.internal.split_off(&TxnId(r));
    let retired_part = std::mem::replace(&mut cache.internal, live);
    for (_, list) in retired_part {
        cache.retired_internal.extend(list);
    }
    let mine: Vec<Key> = retiring
        .iter()
        .copied()
        .filter(|k| dt_keys.binary_search(k).is_ok())
        .collect();
    if mine.is_empty() {
        return;
    }
    let cx = AnalysisCtx {
        history,
        elems,
        keys: KeySlots::from_sorted(mine.clone()),
        config: (),
        scope: None,
    };
    let (dups, _) = duplicate_anomalies(&cx, &D::VOCAB);
    for d in dups {
        let k = d.key.expect("duplicate-write anomalies carry their key");
        cache.retired_dups.entry(k).or_default().push(Arc::new(d));
    }
    for &k in &mine {
        if let Some(sink) = cache.sinks.remove(&k) {
            if !sink.anomalies.is_empty() {
                cache
                    .retired_sinks
                    .entry(k)
                    .or_default()
                    .extend(sink.anomalies);
            }
        }
    }
}

/// Multiset difference `new − old`, or `None` when `old ⊄ new` (a
/// retraction, which voids the delta-append fast path).
fn edge_delta(old: &[Edge], new: &[Edge]) -> Option<Vec<Edge>> {
    // Common case: the old list is a prefix of the new one.
    if new.len() >= old.len() && new[..old.len()] == *old {
        return Some(new[old.len()..].to_vec());
    }
    let mut counts: FxHashMap<&Edge, i64> = FxHashMap::default();
    for e in old {
        *counts.entry(e).or_insert(0) += 1;
    }
    let mut delta: Vec<Edge> = Vec::new();
    for e in new {
        match counts.get_mut(e) {
            Some(c) if *c > 0 => *c -= 1,
            _ => delta.push(e.clone()),
        }
    }
    if counts.values().any(|c| *c > 0) {
        return None;
    }
    Some(delta)
}

/// Recompute the timestamp prefix-max array after a middle insertion.
fn recompute_prefix_max(history: &History, commits: &[(u64, TxnId)], out: &mut Vec<u64>) {
    out.clear();
    let mut running = 0u64;
    for &(_, id) in commits {
        let (start, _) = history.get(id).timestamps.expect("stamped");
        running = running.max(start);
        out.push(running);
    }
}

/// Refresh one trait-driven datatype: internal pass over the delta
/// transactions, per-key re-analysis of the dirty keys. Returns
/// `(retraction, delta edges)`.
#[allow(clippy::too_many_arguments)]
fn refresh_dt<D: DatatypeAnalysis>(
    history: &History,
    elems: &ElemIndex,
    keys_full: &[Key],
    config: D::Config,
    dirty: &FxHashSet<Key>,
    postings: &TxnPostings,
    delta_txns: &[TxnId],
    full_internal: bool,
    cache: &mut DtCache,
    coverage: &mut Coverage,
    scoped_txn_count: &mut usize,
    dirty_count: &mut usize,
    gather: &mut GatherStats,
) -> (bool, Vec<Edge>) {
    let keys_full = KeySlots::new(keys_full.to_vec());

    // Internal pass, scoped to the delta (or everything after a key
    // reassignment invalidated the partition).
    let cx_internal = AnalysisCtx {
        history,
        elems,
        keys: keys_full,
        config,
        scope: if full_internal {
            None
        } else {
            Some(delta_txns)
        },
    };
    if full_internal {
        cache.internal.clear();
    } else {
        for id in delta_txns {
            cache.internal.remove(id);
        }
    }
    for a in datatype::internal_anomalies::<D>(&cx_internal) {
        cache
            .internal
            .entry(a.txns[0])
            .or_default()
            .push(Arc::new(a));
    }

    // Poison set over the full key partition (cheap: walks the sorted
    // duplicate list).
    let (_, poisoned) = duplicate_anomalies(&cx_internal, &D::VOCAB);

    // Gather-delta + finalize over the dirty keys.
    let mut dirty_sorted: Vec<Key> = dirty
        .iter()
        .copied()
        .filter(|k| cx_internal.keys.contains(*k))
        .collect();
    dirty_sorted.sort_unstable();
    *dirty_count += dirty_sorted.len();
    let scope = postings.scope_of(&dirty_sorted);
    *scoped_txn_count += scope.len();
    let cx = AnalysisCtx {
        history,
        elems,
        keys: KeySlots::from_sorted(dirty_sorted),
        config,
        scope: Some(&scope),
    };
    let mut retraction = false;
    let mut delta_edges: Vec<Edge> = Vec::new();
    let (pairs, gather_stats) = analyze_keys::<D>(&cx, &poisoned, Parallelism::Auto);
    gather.absorb(gather_stats);
    for (key, sink) in pairs {
        for &e in &sink.observed_elems {
            coverage.observe(key, e);
        }
        let old = cache.sinks.get(&key).map(|s| s.edges.as_slice());
        match edge_delta(old.unwrap_or(&[]), &sink.edges) {
            Some(mut delta) => delta_edges.append(&mut delta),
            None => retraction = true,
        }
        cache.sinks.insert(key, sink.into());
    }
    (retraction, delta_edges)
}
