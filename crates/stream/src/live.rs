//! Live mode: check a simulated workload while it runs.
//!
//! [`run_live`] wires `elle_gen`'s workload generator and
//! `elle_dbsim`'s scheduler straight into a [`StreamChecker`]: every
//! event is ingested the moment the simulated client records it, epochs
//! seal by transaction-count watermark, and the caller observes each
//! verdict as it lands — no complete history ever materializes outside
//! the checker's own frontier.

use crate::{EpochPolicy, EpochReport, StreamChecker, WindowPolicy};
use elle_core::CheckOptions;
use elle_dbsim::{DbConfig, SimDb};
use elle_gen::{GenParams, Workload};
use elle_history::{EventKind, RecoveryPolicy};
use std::time::Instant;

/// Generate and run a workload against the simulator, checking it live.
/// `on_epoch` fires at every seal (including the final, end-of-stream
/// seal). Returns the final epoch's report.
pub fn run_live(
    params: GenParams,
    db: DbConfig,
    policy: EpochPolicy,
    opts: CheckOptions,
    on_epoch: impl FnMut(&EpochReport),
) -> EpochReport {
    run_live_windowed(params, db, policy, opts, WindowPolicy::Unbounded, on_epoch)
}

/// [`run_live`] under a bounded-memory retirement window.
pub fn run_live_windowed(
    params: GenParams,
    db: DbConfig,
    policy: EpochPolicy,
    opts: CheckOptions,
    window: WindowPolicy,
    mut on_epoch: impl FnMut(&EpochReport),
) -> EpochReport {
    let mut checker = StreamChecker::with_window(opts, window);
    let mut workload = Workload::new(params);
    let mut txns_since = 0usize;
    let mut events_since = 0usize;
    let mut since_seal = Instant::now();
    SimDb::new(db).run_with(&mut workload, |ev| {
        // The simulator emits well-formed streams, but a pairing slip
        // must not take the whole live run down: quarantine it and let
        // the diagnostic surface in the epoch's frontier stats.
        let _ = checker.ingest_event_with(ev, RecoveryPolicy::Quarantine);
        events_since += 1;
        if ev.kind == EventKind::Invoke {
            txns_since += 1;
        }
        if policy.should_seal(txns_since, events_since, since_seal) {
            let report = checker.seal_epoch_guarded();
            on_epoch(&report);
            txns_since = 0;
            events_since = 0;
            since_seal = Instant::now();
        }
    });
    let last = checker.seal_epoch_guarded();
    on_epoch(&last);
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_dbsim::{IsolationLevel, ObjectKind};

    #[test]
    fn live_run_seals_multiple_epochs_and_matches_batch() {
        let params = GenParams::contended(120, ObjectKind::ListAppend).with_seed(7);
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(4)
            .with_seed(7);
        let mut n = 0usize;
        let last = run_live(
            params,
            db,
            EpochPolicy::every_txns(25),
            CheckOptions::strict_serializable(),
            |_| n += 1,
        );
        assert!(n >= 4, "expected several epochs, got {n}");
        assert_eq!(last.txns, 120);
        // The final verdict equals a batch check of the same workload.
        let h = elle_gen::run_workload(
            GenParams::contended(120, ObjectKind::ListAppend).with_seed(7),
            DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
                .with_processes(4)
                .with_seed(7),
        )
        .unwrap();
        let batch = elle_core::Checker::new(CheckOptions::strict_serializable()).check(&h);
        assert_eq!(
            serde_json::to_string(&last.report).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }
}
