//! Epoch watermarks: when to seal.

use std::time::{Duration, Instant};

/// When the stream checker should seal the current epoch.
///
/// Watermarks compose with *or*: the epoch seals as soon as any enabled
/// watermark fires. Checking is the caller's loop (`elle-stream` checks
/// after every ingested event); the policy only answers "now?".
#[derive(Debug, Clone, Copy)]
pub struct EpochPolicy {
    /// Seal after this many newly ingested transactions (counted at
    /// invocation).
    pub txns: Option<usize>,
    /// Seal after this many ingested events.
    pub events: Option<usize>,
    /// Seal when this much wall-clock time has passed since the last
    /// seal (for live tailing; meaningless for file replay).
    pub wall: Option<Duration>,
}

impl EpochPolicy {
    /// Seal every `n` transactions.
    pub fn every_txns(n: usize) -> EpochPolicy {
        EpochPolicy {
            txns: Some(n.max(1)),
            events: None,
            wall: None,
        }
    }

    /// Seal every `n` events.
    pub fn every_events(n: usize) -> EpochPolicy {
        EpochPolicy {
            txns: None,
            events: Some(n.max(1)),
            wall: None,
        }
    }

    /// Add a wall-clock watermark.
    pub fn with_wall(mut self, d: Duration) -> EpochPolicy {
        self.wall = Some(d);
        self
    }

    /// Should the epoch seal, given progress since the last seal?
    pub fn should_seal(&self, txns: usize, events: usize, since_seal: Instant) -> bool {
        self.txns.is_some_and(|n| txns >= n)
            || self.events.is_some_and(|n| events >= n)
            || self.wall.is_some_and(|d| since_seal.elapsed() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_fire_independently() {
        let now = Instant::now();
        let p = EpochPolicy::every_txns(10);
        assert!(!p.should_seal(9, 1000, now));
        assert!(p.should_seal(10, 0, now));
        let p = EpochPolicy::every_events(5);
        assert!(!p.should_seal(100, 4, now));
        assert!(p.should_seal(0, 5, now));
        let p = EpochPolicy::every_txns(10).with_wall(Duration::ZERO);
        assert!(p.should_seal(0, 0, now), "elapsed ≥ zero fires");
    }

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(EpochPolicy::every_txns(0).txns, Some(1));
        assert_eq!(EpochPolicy::every_events(0).events, Some(1));
    }
}
