//! # elle-stream
//!
//! Incremental, epoch-based checking of **live** histories: the batch
//! Elle checker turned into an online pipeline. A [`StreamChecker`]
//! ingests events continuously (from the NDJSON wire format, an
//! [`EventLog`](elle_history::EventLog), or directly from the
//! `elle_dbsim` simulator in live mode), seals an *epoch* whenever a
//! watermark fires, and at each seal re-analyzes only the epoch's delta
//! before producing a full-prefix verdict.
//!
//! ## The epoch lifecycle
//!
//! ```text
//! ingest ─▶ seal ─▶ delta-analyze ─▶ merge+freeze ─▶ search ─▶ report
//!   │                   │                │                      │
//!   │   only dirty keys re-analyzed      │      same report as batch
//!   │   (gather scoped to their txns)    │      on the whole prefix
//!   └── events dropped after pairing     └── sorted edge delta merged
//!                                            into the carried spine
//! ```
//!
//! ## The correctness anchor
//!
//! At every epoch boundary the report is **byte-for-byte identical** to
//! [`Checker::check`](elle_core::Checker::check) on the prefix ingested
//! so far, in both parallel and `ELLE_SEQUENTIAL=1` modes — enforced by
//! the differential property tests in `crates/stream/tests/`, which
//! replay randomly generated histories under random epoch splits.
//!
//! ## The frontier-state contract
//!
//! Between epochs the checker carries exactly:
//!
//! * the paired prefix (required: any future anomaly may name any past
//!   transaction) and the open-invocation table — raw events are
//!   dropped at ingest;
//! * the incremental key-typing and element→writer indexes;
//! * per-key posting lists and the latest per-key analysis sinks
//!   (anomalies interned behind `Arc`, so report assembly clones
//!   pointers);
//! * the accumulated dependency graph's sorted spine;
//! * per-process / completion-order frontiers for the derived orders;
//! * monotone coverage counters.
//!
//! Everything epoch-scoped (delta transaction lists, dirty-key sets,
//! gather scratch) is released at seal, so steady-state memory tracks
//! the active window — open transactions and live keys — plus the
//! prefix itself, not the number of epochs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checker;
mod epoch;
mod live;

pub use checker::{
    CheckerSnapshot, DtStashCarry, EpochReport, FrontierStats, StreamChecker, WindowCarry,
    WindowPolicy, WindowStats,
};
pub use epoch::EpochPolicy;
pub use live::{run_live, run_live_windowed};
