//! The streaming differential: at **every** epoch boundary, the stream
//! checker's report must serialize to exactly the same JSON bytes as
//! the batch checker run over the prefix ingested so far. Histories are
//! generated across isolation levels, object kinds, and fault plans;
//! epoch boundaries are arbitrary event positions. The CI matrix runs
//! this suite in both scheduling modes (parallel and
//! `ELLE_SEQUENTIAL=1`), so the differential is enforced for both.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
use elle_gen::GenParams;
use elle_history::EventLog;
use elle_stream::StreamChecker;
use proptest::prelude::*;

fn arb_log() -> impl Strategy<Value = (EventLog, CheckOptions)> {
    (
        any::<u64>(),  // seed
        1usize..=6,    // processes
        20usize..=100, // txns
        1usize..=4,    // active keys — contended
        prop_oneof![
            Just(IsolationLevel::ReadUncommitted),
            Just(IsolationLevel::ReadCommitted),
            Just(IsolationLevel::SnapshotIsolation),
            Just(IsolationLevel::Serializable),
            Just(IsolationLevel::StrictSerializable),
        ],
        prop_oneof![
            Just(ObjectKind::ListAppend),
            Just(ObjectKind::Register),
            Just(ObjectKind::Set),
            Just(ObjectKind::Counter),
        ],
        prop::bool::ANY, // faults
        prop::bool::ANY, // expose db timestamps + check them
        0usize..=2,      // register assumption level
    )
        .prop_map(
            |(seed, procs, n, keys, iso, kind, faults, timestamps, reg_level)| {
                let params = GenParams {
                    n_txns: n,
                    min_txn_len: 1,
                    max_txn_len: 5,
                    active_keys: keys,
                    writes_per_key: 16,
                    read_prob: 0.5,
                    kind,
                    seed,
                    final_reads: true,
                };
                let mut db = DbConfig::new(iso, kind)
                    .with_processes(procs)
                    .with_seed(seed ^ 0x5eed)
                    .with_faults(if faults {
                        FaultPlan::typical()
                    } else {
                        FaultPlan::none()
                    });
                if timestamps {
                    db = db.with_timestamps(true);
                }
                let mut opts = CheckOptions::strict_serializable().with_timestamp_edges(timestamps);
                let mut reg = elle_core::RegisterOptions::default();
                if reg_level >= 1 {
                    reg.sequential_keys = true;
                }
                if reg_level >= 2 {
                    reg.linearizable_keys = true;
                }
                opts = opts.with_registers(reg);
                let log = elle_gen::run_workload_log(params, db);
                (log, opts)
            },
        )
}

/// Check report equality at each cut: the stream ingests events up to
/// the cut, seals, and must reproduce `Checker::check` on the paired
/// prefix byte-for-byte.
fn assert_differential(log: &EventLog, opts: CheckOptions, cuts: &[usize]) -> Result<(), String> {
    let mut stream = StreamChecker::new(opts);
    let batch = Checker::new(opts);
    let events = log.events();
    let mut fed = 0usize;
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (events.len() + 1)).collect();
    cuts.push(events.len());
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        while fed < cut {
            stream
                .ingest_event(&events[fed])
                .expect("generated logs are well-formed");
            fed += 1;
        }
        let epoch = stream.seal_epoch();
        let prefix = EventLog::from_events(events[..cut].to_vec())
            .unwrap()
            .pair()
            .expect("prefix pairs");
        let want = batch.check(&prefix);
        let got_s = serde_json::to_string(&epoch.report).unwrap();
        let want_s = serde_json::to_string(&want).unwrap();
        prop_assert_eq!(
            got_s,
            want_s,
            "divergence at cut {} of {} (epoch {})",
            cut,
            events.len(),
            epoch.epoch
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_equals_batch_at_every_epoch(
        (log, opts) in arb_log(),
        cuts in prop::collection::vec(0usize..10_000, 0..6),
    ) {
        assert_differential(&log, opts, &cuts)?;
    }

    /// Degenerate split: seal after every single event. Exercises the
    /// open-transaction frontier hard (most seals see half-finished
    /// transactions).
    #[test]
    fn stream_equals_batch_event_by_event(
        (log, opts) in arb_log(),
    ) {
        let n = log.events().len().min(40);
        let cuts: Vec<usize> = (0..n).collect();
        assert_differential(&log, opts, &cuts)?;
    }
}
