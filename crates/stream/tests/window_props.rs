//! Windowed-retirement differentials: a bounded-memory checker must be
//! **exactly** the unbounded checker wherever its window says `exact`,
//! must say `Indeterminate(window-evicted)` — never silence, never
//! fabrication — where it is not, and must actually hold resident
//! memory flat under a byte budget while the unbounded checker grows.

use elle_core::{AnomalyType, CheckOptions};
use elle_history::{events_from_ndjson, history_to_ndjson, Event, History, HistoryBuilder};
use elle_stream::{StreamChecker, WindowCarry, WindowPolicy};
use proptest::prelude::*;

/// SplitMix64: deterministic per-index randomness without an RNG dep.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key-rotating list-append history: every `span` transactions the
/// active key advances and the previous key is never touched again —
/// the Jepsen-style workload shape windowed retirement is built for
/// (a hot key pins its touchers; a rotated-away key quiesces and can
/// be retired).
fn rotating_history(seed: u64, n_txns: usize, span: usize, procs: u32) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..n_txns {
        let key = (i / span.max(1)) as u64;
        let p = (mix(seed, i as u64) % u64::from(procs.max(1))) as u32;
        let t = b.txn(p).append(key, i as u64);
        let t = if mix(seed, i as u64) & 2 != 0 {
            t.read(key)
        } else {
            t
        };
        t.commit();
    }
    b.build()
}

fn events_of(h: &History) -> Vec<Event> {
    events_from_ndjson(&history_to_ndjson(h))
        .expect("builder histories round-trip")
        .into_events()
}

/// Feed both checkers the same events with seals every `per_epoch`
/// transactions (2 events per builder transaction). Wherever the
/// windowed checker claims `exact`, its report must serialize to the
/// unbounded checker's bytes; wherever it does not, it must carry the
/// `window-evicted` marker. Returns the transactions retired in total.
fn assert_windowed_differential(
    events: &[Event],
    opts: CheckOptions,
    window: WindowPolicy,
    per_epoch: usize,
) -> Result<usize, String> {
    let mut windowed = StreamChecker::with_window(opts, window);
    let mut unbounded = StreamChecker::new(opts);
    let mut since = 0usize;
    let mut retired = 0usize;
    let check = |w: &mut StreamChecker, u: &mut StreamChecker| -> Result<usize, String> {
        let ew = w.seal_epoch();
        let eu = u.seal_epoch();
        prop_assert!(eu.window.is_none(), "unbounded epochs carry no window");
        let stats = ew.window.expect("windowed epochs carry window stats");
        prop_assert_eq!(stats.retained_txns + stats.retired_txns, eu.txns);
        if stats.exact {
            prop_assert_eq!(
                serde_json::to_string(&ew.report).unwrap(),
                serde_json::to_string(&eu.report).unwrap(),
                "exact windowed epoch {} diverged (retired {})",
                ew.epoch,
                stats.retired_txns
            );
        } else {
            prop_assert!(
                ew.report
                    .anomaly_counts
                    .contains_key(&AnomalyType::WindowEvicted),
                "inexact epoch must say window-evicted"
            );
        }
        Ok(stats.retired_txns)
    };
    for ev in events {
        windowed.ingest_event(ev).expect("well-formed");
        unbounded.ingest_event(ev).expect("well-formed");
        since += 1;
        if since >= per_epoch * 2 {
            retired = check(&mut windowed, &mut unbounded)?;
            since = 0;
        }
    }
    retired = retired.max(check(&mut windowed, &mut unbounded)?);
    Ok(retired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rotating workloads under txn-count windows: every epoch stays
    /// exact (no retired key is ever touched again), so every verdict
    /// must be byte-identical to the unbounded checker's.
    #[test]
    fn windowed_equals_unbounded_on_rotating_keys(
        seed in any::<u64>(),
        n in 40usize..140,
        span in 2usize..6,
        window in 8usize..48,
        per_epoch in 3usize..9,
        derived in 0usize..3,
    ) {
        let h = rotating_history(seed, n, span, 4);
        let events = events_of(&h);
        let mut opts = CheckOptions::strict_serializable();
        if derived >= 1 {
            opts = opts.with_process_edges(true);
        }
        if derived >= 2 {
            opts = opts.with_realtime_edges(true);
        }
        let retired = assert_windowed_differential(
            &events, opts, WindowPolicy::TxnCount(window), per_epoch)?;
        // The differential must actually exercise retirement when the
        // window is much smaller than the history.
        if n > 2 * window + 2 * span {
            prop_assert!(retired > 0, "window {} never retired over {} txns", window, n);
        }
    }

    /// Byte budgets: same exactness contract, driven by resident size
    /// instead of a count.
    #[test]
    fn byte_budget_stays_exact_on_rotating_keys(
        seed in any::<u64>(),
        n in 60usize..140,
        span in 2usize..5,
        budget in 8usize..64,
    ) {
        let h = rotating_history(seed, n, span, 4);
        let events = events_of(&h);
        let opts = CheckOptions::strict_serializable();
        assert_windowed_differential(
            &events, opts, WindowPolicy::Bytes(budget * 1024), 5)?;
    }
}

/// A retired key that is touched again: the checker must *say* it can
/// no longer judge that key — a sticky `Indeterminate(window-evicted)`
/// marker — rather than silently rejudging from partial evidence.
#[test]
fn evicted_witness_reports_window_evicted() {
    let mut b = HistoryBuilder::new();
    for i in 0..6u64 {
        b.txn(0).append(1, i).commit();
    }
    for i in 6..30u64 {
        b.txn(0).append(2, i).commit();
    }
    // The late toucher of the retired key 1.
    b.txn(0).append(1, 99).read(1).commit();
    b.txn(0).append(3, 100).commit();
    let events = events_of(&b.build());
    let opts = CheckOptions::strict_serializable();
    let mut checker = StreamChecker::with_window(opts, WindowPolicy::TxnCount(8));
    // Epoch 0: everything before the late toucher. Key 1 quiesced at
    // txn 5, so the retirement watermark can pass it.
    for ev in &events[..60] {
        checker.ingest_event(ev).expect("well-formed");
    }
    let e0 = checker.seal_epoch();
    let w0 = e0.window.expect("windowed");
    assert!(w0.exact, "nothing evicted yet");
    assert!(
        w0.retired_txns >= 6,
        "key 1's touchers must be retired, got {}",
        w0.retired_txns
    );
    assert!(checker.retired_txns() >= 6);
    // Epoch 1: key 1 comes back. Its version evidence is gone.
    for ev in &events[60..] {
        checker.ingest_event(ev).expect("well-formed");
    }
    let e1 = checker.seal_epoch();
    let w1 = e1.window.expect("windowed");
    assert!(!w1.exact, "touching a retired key makes the epoch inexact");
    assert_eq!(
        e1.report
            .anomaly_counts
            .get(&AnomalyType::WindowEvicted)
            .copied(),
        Some(1),
        "exactly one compromised key"
    );
    // Never fabricated: the marker is indeterminate, not a violation.
    assert!(e1.report.ok(), "window-evicted must not fail the model");
    // Sticky: later epochs that never touch key 1 still disclose it.
    let e2 = checker.seal_epoch();
    assert!(!e2.window.expect("windowed").exact);
    assert_eq!(
        e2.report
            .anomaly_counts
            .get(&AnomalyType::WindowEvicted)
            .copied(),
        Some(1)
    );
}

/// Timestamp edges admit id-backward ordering, so retirement is
/// disabled under them: the window reports but never retires.
#[test]
fn timestamps_disable_retirement() {
    let mut b = HistoryBuilder::new();
    for i in 0..40u64 {
        b.txn(0)
            .append(i / 4, i)
            .timestamps(2 * i, 2 * i + 1)
            .commit();
    }
    let events = events_of(&b.build());
    let opts = CheckOptions::strict_serializable().with_timestamp_edges(true);
    let mut checker = StreamChecker::with_window(opts, WindowPolicy::TxnCount(4));
    for ev in &events {
        checker.ingest_event(ev).expect("well-formed");
    }
    let e = checker.seal_epoch();
    let w = e.window.expect("windowed");
    assert_eq!(w.retired_txns, 0);
    assert!(w.exact);
}

/// The long-run soak the tentpole exists for: ≥500 epochs of a
/// key-rotating stream under a tight byte budget. The windowed
/// checker's residency must stay flat (within 2× of its post-warmup
/// floor) while the unbounded checker grows without bound.
#[test]
fn soak_resident_bytes_stays_flat_over_500_epochs() {
    let n_txns = 1500usize;
    let span = 3usize;
    let per_epoch = 3usize; // 500 epochs
    let budget = 48 * 1024usize;
    let h = rotating_history(0xE11E_50A7, n_txns, span, 4);
    let events = events_of(&h);
    let opts = CheckOptions::strict_serializable();
    let mut windowed = StreamChecker::with_window(opts, WindowPolicy::Bytes(budget));
    let mut unbounded = StreamChecker::new(opts);
    let mut since = 0usize;
    let mut epochs = 0usize;
    let mut floor = usize::MAX;
    let mut peak_after_warmup = 0usize;
    for ev in &events {
        windowed.ingest_event(ev).expect("well-formed");
        unbounded.ingest_event(ev).expect("well-formed");
        since += 1;
        if since >= per_epoch * 2 {
            since = 0;
            let ew = windowed.seal_epoch();
            unbounded.seal_epoch();
            epochs += 1;
            let stats = ew.window.expect("windowed");
            assert!(stats.exact, "rotating keys never compromise the window");
            // Warmup: let the window fill and the first retirements
            // land before measuring flatness.
            if epochs > 50 {
                floor = floor.min(stats.resident_bytes);
                peak_after_warmup = peak_after_warmup.max(stats.resident_bytes);
            }
        }
    }
    assert!(epochs >= 500, "soak must cover 500 epochs, got {epochs}");
    assert!(
        windowed.retired_txns() > n_txns / 2,
        "the soak must retire most of the stream, retired {}",
        windowed.retired_txns()
    );
    // Byte-budget retirement keeps half the retained set, so residency
    // oscillates inside [budget/2, ~budget]: flat means the peak never
    // escapes 2× the configured budget, epoch after epoch.
    assert!(
        peak_after_warmup <= 2 * budget,
        "windowed residency not flat: budget {budget}, floor {floor}, peak {peak_after_warmup}"
    );
    assert!(
        floor >= budget / 4,
        "floor {floor} suspiciously low — retirement overshooting"
    );
    let final_windowed = windowed.resident_bytes();
    let final_unbounded = unbounded.resident_bytes();
    assert!(
        final_unbounded > 4 * final_windowed,
        "unbounded ({final_unbounded}) must dwarf windowed ({final_windowed})"
    );
}

/// Snapshot + restore under an active window: the carry must bring
/// back everything retirement folded out, so the restored checker's
/// next verdicts are byte-identical to the uninterrupted checker's.
#[test]
fn windowed_snapshot_restore_is_byte_identical() {
    let h = rotating_history(77, 90, 3, 4);
    let events = events_of(&h);
    let opts = CheckOptions::strict_serializable().with_process_edges(true);
    let mut original = StreamChecker::with_window(opts, WindowPolicy::TxnCount(12));
    let split = 120usize; // 60 txns in, mid-stream
    let mut since = 0usize;
    for ev in &events[..split] {
        original.ingest_event(ev).expect("well-formed");
        since += 1;
        if since >= 20 {
            since = 0;
            original.seal_epoch();
        }
    }
    assert!(
        original.retired_txns() > 0,
        "the snapshot must span retirement"
    );
    let snap = original.snapshot();
    let carry = snap.window.as_ref().expect("windowed snapshots carry");
    // The carry is what elle-serve persists: it must survive the wire.
    let wire = serde_json::to_string(carry).expect("carry serializes");
    let back: WindowCarry = serde_json::from_str(&wire).expect("carry parses");
    assert_eq!(carry, &back);
    let mut restored = StreamChecker::restore(opts, &snap);
    assert_eq!(restored.window_policy(), WindowPolicy::TxnCount(12));
    assert_eq!(restored.retired_txns(), original.retired_txns());
    for ev in &events[split..] {
        original.ingest_event(ev).expect("well-formed");
        restored.ingest_event(ev).expect("well-formed");
    }
    let eo = original.seal_epoch();
    let er = restored.seal_epoch();
    assert_eq!(
        serde_json::to_string(&eo.report).unwrap(),
        serde_json::to_string(&er.report).unwrap(),
        "restored verdict must be byte-identical"
    );
    assert_eq!(eo.window, er.window);
}
