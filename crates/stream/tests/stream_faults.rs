//! Failure-handling properties of the streaming checker: quarantined
//! ingest degrades soundly instead of erroring, a panic inside a seal
//! poisons exactly one epoch and the rebuilt state matches the batch
//! checker afterwards, and simulator fault schedules stream end to end
//! without a panic.

use elle_core::{CheckOptions, Checker};
use elle_dbsim::{DbConfig, FaultSchedule, IsolationLevel, ObjectKind};
use elle_gen::GenParams;
use elle_history::{
    events_from_ndjson_with, history_to_ndjson, Event, EventKind, EventLog, Mop, ProcessId,
    Recovered, RecoveryPolicy,
};
use elle_stream::StreamChecker;

fn ev(index: usize, p: u32, kind: EventKind, mops: Vec<Mop>) -> Event {
    Event {
        index,
        process: ProcessId(p),
        kind,
        mops,
        time_ns: None,
    }
}

#[test]
fn quarantine_skips_regressed_index_and_keeps_checking() {
    let mut s = StreamChecker::new(CheckOptions::serializable());
    s.ingest_event_with(
        &ev(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]),
        RecoveryPolicy::Quarantine,
    )
    .unwrap();
    s.ingest_event_with(
        &ev(1, 0, EventKind::Ok, vec![Mop::append(1, 1)]),
        RecoveryPolicy::Quarantine,
    )
    .unwrap();
    // A replayed (duplicate) wire event regresses the index: skipped.
    let dup = s
        .ingest_event_with(
            &ev(1, 0, EventKind::Ok, vec![Mop::append(1, 1)]),
            RecoveryPolicy::Quarantine,
        )
        .unwrap();
    assert!(matches!(dup, Recovered::Skipped(_)));
    assert_eq!(s.quarantined(), 1);
    let epoch = s.seal_epoch_guarded();
    assert!(epoch.poisoned.is_none());
    assert!(epoch.report.ok());
    assert_eq!(epoch.frontier.quarantined_events, 1);
    assert_eq!(epoch.txns, 1, "the duplicate created no extra txn");
}

#[test]
fn orphan_completion_is_adopted_under_quarantine() {
    let mut s = StreamChecker::new(CheckOptions::serializable());
    // A completion whose invocation was lost upstream: adopted as a
    // point-interval transaction so its data still feeds inference.
    let got = s
        .ingest_event_with(
            &ev(5, 3, EventKind::Ok, vec![Mop::append(9, 2)]),
            RecoveryPolicy::Quarantine,
        )
        .unwrap();
    assert!(matches!(got, Recovered::Adopted(..)));
    s.ingest_event_with(
        &ev(6, 1, EventKind::Invoke, vec![Mop::read(9)]),
        RecoveryPolicy::Quarantine,
    )
    .unwrap();
    s.ingest_event_with(
        &ev(7, 1, EventKind::Ok, vec![Mop::read_list(9, [2])]),
        RecoveryPolicy::Quarantine,
    )
    .unwrap();
    let epoch = s.seal_epoch_guarded();
    // The adopted write is visible to the reader: no garbage read.
    assert!(epoch.report.ok(), "adopted orphan supplies the write");
    assert_eq!(epoch.txns, 2);
    assert_eq!(s.quarantined(), 1);
}

#[test]
fn poisoned_seal_isolates_one_epoch_and_recovers() {
    let l = {
        let mut l = EventLog::new();
        l.push(ProcessId(0), EventKind::Invoke, vec![Mop::append(1, 1)]);
        l.push(ProcessId(0), EventKind::Ok, vec![Mop::append(1, 1)]);
        l.push(ProcessId(1), EventKind::Invoke, vec![Mop::read(1)]);
        l.push(ProcessId(1), EventKind::Ok, vec![Mop::read_list(1, [1])]);
        l.push(ProcessId(2), EventKind::Invoke, vec![Mop::append(1, 2)]);
        l.push(ProcessId(2), EventKind::Ok, vec![Mop::append(1, 2)]);
        l
    };
    let opts = CheckOptions::serializable();
    let mut s = StreamChecker::new(opts);
    s.inject_seal_panic(1);

    for e in &l.events()[..2] {
        s.ingest_event(e).unwrap();
    }
    let e0 = s.seal_epoch_guarded();
    assert!(e0.poisoned.is_none());
    assert!(e0.report.ok());

    for e in &l.events()[2..4] {
        s.ingest_event(e).unwrap();
    }
    let e1 = s.seal_epoch_guarded();
    let msg = e1.poisoned.as_deref().expect("epoch 1 must be poisoned");
    assert!(msg.contains("injected seal panic"), "payload: {msg}");
    assert_eq!(e1.epoch, 1);
    assert_eq!(e1.events, 2);
    assert_eq!(e1.txns, 2, "recovered state holds the full prefix");
    assert_eq!(e1.report.warnings.len(), 1);
    assert!(e1.report.ok(), "poisoned verdict is indeterminate-clean");

    // The next epoch seals normally and matches batch on the prefix.
    for e in &l.events()[4..] {
        s.ingest_event(e).unwrap();
    }
    let e2 = s.seal_epoch_guarded();
    assert!(e2.poisoned.is_none());
    assert_eq!(e2.epoch, 2);
    let batch = Checker::new(opts).check(&l.pair().unwrap());
    assert_eq!(
        serde_json::to_string(&e2.report).unwrap(),
        serde_json::to_string(&batch).unwrap(),
        "post-poison epoch diverged from batch"
    );
}

#[test]
fn poisoned_seal_recovery_preserves_open_invocations() {
    let mut s = StreamChecker::new(CheckOptions::serializable());
    s.inject_seal_panic(0);
    s.ingest_event(&ev(0, 0, EventKind::Invoke, vec![Mop::append(1, 1)]))
        .unwrap();
    s.ingest_event(&ev(1, 1, EventKind::Invoke, vec![Mop::read(1)]))
        .unwrap();
    let e0 = s.seal_epoch_guarded();
    assert!(e0.poisoned.is_some());
    assert_eq!(e0.frontier.open_txns, 2, "open table survives the panic");
    // Completions for both still pair against the recovered open table.
    s.ingest_event(&ev(2, 0, EventKind::Ok, vec![Mop::append(1, 1)]))
        .unwrap();
    s.ingest_event(&ev(3, 1, EventKind::Ok, vec![Mop::read_list(1, [1])]))
        .unwrap();
    let e1 = s.seal_epoch_guarded();
    assert!(e1.poisoned.is_none());
    assert_eq!(e1.txns, 2);
    assert_eq!(e1.frontier.open_txns, 0);
    assert!(e1.report.ok());
}

#[test]
fn duplicate_only_fault_schedule_streams_to_the_clean_verdict() {
    let params = GenParams::contended(150, ObjectKind::ListAppend).with_seed(33);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(33);
    let clean = elle_gen::run_workload_log(params, db);
    let sched = FaultSchedule {
        duplicate_prob: 0.2,
        ..FaultSchedule::none()
    };
    let (wire, faults) = sched.apply(&clean);
    assert!(!faults.is_empty(), "schedule injected nothing");
    let (log, diags) =
        events_from_ndjson_with(&wire, RecoveryPolicy::Quarantine).expect("quarantine never errs");
    assert_eq!(diags.len(), faults.len(), "every duplicate diagnosed");

    let opts = CheckOptions::strict_serializable();
    let mut s = StreamChecker::new(opts);
    for (i, e) in log.events().iter().enumerate() {
        s.ingest_event(e).unwrap();
        if i % 40 == 39 {
            s.seal_epoch_guarded();
        }
    }
    let last = s.seal_epoch_guarded();
    let batch = Checker::new(opts).check(&clean.pair().unwrap());
    assert_eq!(
        serde_json::to_string(&last.report).unwrap(),
        serde_json::to_string(&batch).unwrap(),
        "exact duplicates must be absorbed without changing the verdict"
    );
}

#[test]
fn typical_fault_schedule_streams_without_panicking() {
    for seed in 0..8u64 {
        let params = GenParams::contended(120, ObjectKind::ListAppend).with_seed(seed);
        let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
            .with_processes(4)
            .with_seed(seed);
        let clean = elle_gen::run_workload_log(params, db);
        let (wire, _) = FaultSchedule::typical(seed).apply(&clean);
        let (log, _) = events_from_ndjson_with(&wire, RecoveryPolicy::Quarantine).unwrap();
        let mut s = StreamChecker::new(CheckOptions::serializable());
        for (i, e) in log.events().iter().enumerate() {
            let _ = s
                .ingest_event_with(e, RecoveryPolicy::Quarantine)
                .expect("quarantine ingest never errors");
            if i % 50 == 49 {
                let epoch = s.seal_epoch_guarded();
                assert!(epoch.poisoned.is_none(), "seed {seed}: real seal panicked");
            }
        }
        let last = s.seal_epoch_guarded();
        assert!(last.poisoned.is_none());
    }
}

#[test]
fn snapshot_restore_mid_stream_is_byte_identical() {
    // Damage a generated wire, stream half of it (sealing once), then
    // fork: one checker continues live, the other is rebuilt from a
    // snapshot. Both must produce byte-identical epoch reports — same
    // epoch ordinal, same carried quarantine gauge, same verdict.
    let params = GenParams::contended(140, ObjectKind::ListAppend).with_seed(21);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(4)
        .with_seed(21);
    let clean = elle_gen::run_workload_log(params, db);
    let (wire, _) = FaultSchedule::typical(21).apply(&clean);
    let (log, _) = events_from_ndjson_with(&wire, RecoveryPolicy::Quarantine).unwrap();
    let events = log.events();
    let opts = CheckOptions::strict_serializable();

    let mut live = StreamChecker::new(opts);
    for e in &events[..events.len() / 2] {
        live.ingest_event_with(e, RecoveryPolicy::Quarantine)
            .unwrap();
    }
    live.seal_epoch_guarded();
    for e in &events[events.len() / 2..3 * events.len() / 4] {
        live.ingest_event_with(e, RecoveryPolicy::Quarantine)
            .unwrap();
    }

    let snap = live.snapshot();
    let mut restored = StreamChecker::restore(opts, &snap);
    assert_eq!(restored.snapshot(), snap, "snapshot must be a fixpoint");

    for e in &events[3 * events.len() / 4..] {
        live.ingest_event_with(e, RecoveryPolicy::Quarantine)
            .unwrap();
        restored
            .ingest_event_with(e, RecoveryPolicy::Quarantine)
            .unwrap();
    }
    let a = live.seal_epoch_guarded();
    let b = restored.seal_epoch_guarded();
    assert_eq!(a.epoch, b.epoch, "epoch ordinal must survive restore");
    assert_eq!(
        a.frontier.quarantined_events, b.frontier.quarantined_events,
        "quarantine gauge must survive restore"
    );
    assert_eq!(a.events, b.events);
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "restored checker diverged from the live one"
    );
}

#[test]
fn round_trip_ndjson_under_strict_policy_is_lossless() {
    let params = GenParams::contended(80, ObjectKind::ListAppend).with_seed(5);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(3)
        .with_seed(5);
    let h = elle_gen::run_workload(params, db).unwrap();
    let wire = history_to_ndjson(&h);
    let (log, diags) = events_from_ndjson_with(&wire, RecoveryPolicy::Strict).unwrap();
    assert!(diags.is_empty());
    let h2 = log.pair().unwrap();
    assert_eq!(
        serde_json::to_string(&h).unwrap(),
        serde_json::to_string(&h2).unwrap()
    );
}
