//! Hand-built adversarial streams: cases the random generator cannot
//! produce (duplicate writes poisoning an already-analyzed key, cyclic
//! register version orders, counter `rr` chains re-linking, NDJSON
//! ingestion) — each must still match the batch checker byte-for-byte,
//! exercising the graph-rebuild fallback.

use elle_core::{CheckOptions, Checker, RegisterOptions};
use elle_history::{
    events_from_ndjson, history_to_ndjson, Event, EventKind, EventLog, HistoryBuilder, Mop,
    ProcessId,
};
use elle_stream::{EpochReport, StreamChecker};

/// Build an event log from `(process, kind, mops)` triples.
fn log(events: &[(u32, EventKind, Vec<Mop>)]) -> EventLog {
    let mut l = EventLog::new();
    for (p, kind, mops) in events {
        l.push(ProcessId(*p), *kind, mops.clone());
    }
    l
}

/// Seal after every `every` events and assert the differential at each
/// seal; returns the sealed epochs.
fn differential(l: &EventLog, opts: CheckOptions, every: usize) -> Vec<EpochReport> {
    let mut stream = StreamChecker::new(opts);
    let batch = Checker::new(opts);
    let mut out = Vec::new();
    for (i, ev) in l.events().iter().enumerate() {
        stream.ingest_event(ev).expect("well-formed");
        if (i + 1) % every == 0 || i + 1 == l.events().len() {
            let epoch = stream.seal_epoch();
            let prefix = EventLog::from_events(l.events()[..=i].to_vec())
                .unwrap()
                .pair()
                .unwrap();
            let want = batch.check(&prefix);
            assert_eq!(
                serde_json::to_string(&epoch.report).unwrap(),
                serde_json::to_string(&want).unwrap(),
                "divergence at event {} (epoch {})",
                i,
                epoch.epoch
            );
            out.push(epoch);
        }
    }
    out
}

fn inv(p: u32, mops: Vec<Mop>) -> (u32, EventKind, Vec<Mop>) {
    (p, EventKind::Invoke, mops)
}

fn ok(p: u32, mops: Vec<Mop>) -> (u32, EventKind, Vec<Mop>) {
    (p, EventKind::Ok, mops)
}

#[test]
fn late_duplicate_write_poisons_an_analyzed_key() {
    // Epoch 1 analyzes key 1 cleanly (wr edge t0→t1); epoch 2 appends a
    // duplicate element, destroying recoverability — the cached edges
    // must be *retracted*, which only the rebuild path can do.
    let l = log(&[
        inv(0, vec![Mop::append(1, 7)]),
        ok(0, vec![Mop::append(1, 7)]),
        inv(1, vec![Mop::read(1)]),
        ok(1, vec![Mop::read_list(1, [7])]),
        // epoch boundary falls here with every=4
        inv(2, vec![Mop::append(1, 7)]),
        ok(2, vec![Mop::append(1, 7)]),
    ]);
    let epochs = differential(&l, CheckOptions::serializable(), 4);
    assert_eq!(epochs.len(), 2);
    assert!(!epochs[0].rebuilt, "clean first epoch takes the fast path");
    assert!(epochs[1].rebuilt, "poisoning forces the rebuild fallback");
}

#[test]
fn register_version_order_turns_cyclic_across_epochs() {
    // Linearizable-keys mode: epoch 1 infers nil < 2 and derives edges;
    // epoch 2's stale nil read contradicts real time — the key's version
    // order becomes cyclic and its dependencies are discarded.
    let opts = CheckOptions::serializable().with_registers(RegisterOptions {
        linearizable_keys: true,
        ..RegisterOptions::default()
    });
    let l = log(&[
        inv(0, vec![Mop::write(540, 2)]),
        ok(0, vec![Mop::write(540, 2)]),
        inv(1, vec![Mop::read(540)]),
        ok(1, vec![Mop::read_register(540, Some(2))]),
        inv(2, vec![Mop::read(540)]),
        ok(2, vec![Mop::read_register(540, None)]),
    ]);
    let epochs = differential(&l, opts, 4);
    assert_eq!(epochs.len(), 2);
    assert!(epochs[1].rebuilt, "cyclic version order retracts edges");
    assert!(epochs[1]
        .report
        .anomaly_counts
        .contains_key(&elle_core::AnomalyType::CyclicVersionOrder));
}

#[test]
fn counter_rr_chain_relinks_across_epochs() {
    // Epoch 1 sees counter reads 1 and 3 → rr edge (reader of 1 →
    // reader of 3). Epoch 2 reads 2, which re-links the chain to
    // 1 → 2 → 3, retracting the old edge.
    let l = log(&[
        inv(0, vec![Mop::increment(9, 1)]),
        ok(0, vec![Mop::increment(9, 1)]),
        inv(1, vec![Mop::increment(9, 1)]),
        ok(1, vec![Mop::increment(9, 1)]),
        inv(2, vec![Mop::increment(9, 1)]),
        ok(2, vec![Mop::increment(9, 1)]),
        inv(3, vec![Mop::read(9)]),
        ok(3, vec![Mop::read_counter(9, 1)]),
        inv(4, vec![Mop::read(9)]),
        ok(4, vec![Mop::read_counter(9, 3)]),
        // epoch boundary at 10 with every=10
        inv(5, vec![Mop::read(9)]),
        ok(5, vec![Mop::read_counter(9, 2)]),
    ]);
    let epochs = differential(&l, CheckOptions::serializable(), 10);
    assert_eq!(epochs.len(), 2);
    assert!(epochs[1].rebuilt, "rr chain re-linking retracts an edge");
}

#[test]
fn mixed_datatypes_in_one_stream() {
    // Lists, registers, sets, and counters interleaved in one stream,
    // with a cross-datatype G1c cycle (list half + register half).
    let l = log(&[
        inv(0, vec![Mop::append(1, 1), Mop::read(2)]),
        ok(0, vec![Mop::append(1, 1), Mop::read_register(2, Some(7))]),
        inv(1, vec![Mop::write(2, 7), Mop::read(1)]),
        ok(1, vec![Mop::write(2, 7), Mop::read_list(1, [1])]),
        inv(2, vec![Mop::add_to_set(3, 5)]),
        ok(2, vec![Mop::add_to_set(3, 5)]),
        inv(3, vec![Mop::read(3), Mop::increment(4, 2)]),
        ok(3, vec![Mop::read_set(3, [5]), Mop::increment(4, 2)]),
        inv(4, vec![Mop::read(4)]),
        ok(4, vec![Mop::read_counter(4, 2)]),
    ]);
    let epochs = differential(&l, CheckOptions::serializable(), 3);
    let last = epochs.last().unwrap();
    assert!(last
        .report
        .anomaly_counts
        .contains_key(&elle_core::AnomalyType::G1c));
}

#[test]
fn ndjson_stream_matches_batch_on_fixture_shape() {
    // The paper's §7.1 TiDB trio exported to NDJSON, ingested line by
    // line with an epoch per line.
    let mut b = HistoryBuilder::new();
    b.txn(9).append(34, 2).commit();
    b.txn(9).append(34, 1).commit();
    b.txn(0)
        .read_list(34, [2, 1])
        .append(36, 5)
        .append(34, 4)
        .at(4, Some(20))
        .commit();
    b.txn(1).append(34, 5).at(5, Some(19)).commit();
    b.txn(2)
        .read_list(34, [2, 1, 5, 4])
        .at(21, Some(22))
        .commit();
    let h = b.build();
    let nd = history_to_ndjson(&h);
    let l = events_from_ndjson(&nd).unwrap();

    let opts = CheckOptions::snapshot_isolation();
    let epochs = differential(&l, opts, 1);
    let last = epochs.last().unwrap();
    assert!(!last.report.ok(), "G-single violation detected");
    assert!(last
        .report
        .anomaly_counts
        .contains_key(&elle_core::AnomalyType::GSingle));
}

#[test]
fn empty_and_trivial_epochs() {
    let mut stream = StreamChecker::new(CheckOptions::strict_serializable());
    // Sealing with nothing ingested reports an empty, clean prefix.
    let e0 = stream.seal_epoch();
    assert!(e0.report.ok());
    assert_eq!(e0.txns, 0);
    // Sealing twice without new events is stable.
    let ev = Event {
        index: 0,
        process: ProcessId(0),
        kind: EventKind::Invoke,
        mops: vec![Mop::append(1, 1)],
        time_ns: None,
    };
    stream.ingest_event(&ev).unwrap();
    let e1 = stream.seal_epoch();
    let e2 = stream.seal_epoch();
    assert_eq!(
        serde_json::to_string(&e1.report).unwrap(),
        serde_json::to_string(&e2.report).unwrap()
    );
    assert_eq!(e2.frontier.dirty_keys, 0, "idle epoch dirties nothing");
}

#[test]
fn clean_serializable_stream_never_rebuilds() {
    use elle_dbsim::{DbConfig, IsolationLevel, ObjectKind};
    use elle_gen::GenParams;
    let params = GenParams::paper_perf(400).with_seed(11);
    let db = DbConfig::new(IsolationLevel::Serializable, ObjectKind::ListAppend)
        .with_processes(8)
        .with_seed(11);
    let l = elle_gen::run_workload_log(params, db);
    let epochs = differential(&l, CheckOptions::strict_serializable(), 100);
    assert!(epochs.len() >= 5);
    for e in &epochs {
        assert!(!e.rebuilt, "epoch {} took the rebuild fallback", e.epoch);
    }
}

#[test]
fn datatype_reassignment_purges_stale_coverage() {
    // Key 1 is a register in epoch 1 (its read puts pair (1,5) in the
    // observed set); an epoch-2 append makes the key conflicted and
    // reassigns it to List. The register contribution must be purged —
    // batch on the full prefix computes coverage under the *final*
    // typing only.
    let l = log(&[
        inv(0, vec![Mop::write(1, 5)]),
        ok(0, vec![Mop::write(1, 5)]),
        inv(1, vec![Mop::read(1)]),
        ok(1, vec![Mop::read_register(1, Some(5))]),
        // epoch boundary with every=4
        inv(2, vec![Mop::append(1, 6)]),
        ok(2, vec![Mop::append(1, 6)]),
    ]);
    let epochs = differential(&l, CheckOptions::serializable(), 4);
    assert_eq!(epochs.len(), 2);
    assert!(epochs[1].rebuilt, "reassignment takes the rebuild path");
    assert_eq!(epochs[1].report.warnings.len(), 1, "conflict warned");
}

#[test]
fn reassigned_key_stays_consistent_when_redirtied_later() {
    // After the reassignment epoch, touch the key again in a *third*
    // epoch: caches, coverage, and internal passes must all have
    // settled on the new typing.
    let l = log(&[
        inv(0, vec![Mop::write(1, 5)]),
        ok(0, vec![Mop::write(1, 5)]),
        inv(1, vec![Mop::read(1)]),
        ok(1, vec![Mop::read_register(1, Some(5))]),
        inv(2, vec![Mop::append(1, 6)]),
        ok(2, vec![Mop::append(1, 6)]),
        inv(3, vec![Mop::read(1)]),
        ok(3, vec![Mop::read_list(1, [6])]),
        inv(4, vec![Mop::append(2, 9)]),
        ok(4, vec![Mop::append(2, 9)]),
    ]);
    differential(&l, CheckOptions::serializable(), 2);
}
