//! One tenant: a [`StreamChecker`] plus its durability, watermark
//! counters, and degradation state.
//!
//! The degradation ladder, mildest first:
//!
//! 1. **quarantined** — a damaged line was skipped or repaired under
//!    [`RecoveryPolicy::Quarantine`]; the tenant keeps checking with
//!    weaker inferences and the verdict envelope grows a `quarantined`
//!    gauge.
//! 2. **forced-seal** — the watchdog sealed an epoch that stayed open
//!    too long; numbering shifts but every verdict is still exact for
//!    its prefix (`forced_seals` gauge).
//! 3. **poisoned** — a seal panicked; that one epoch's verdict is
//!    indeterminate (`"ok":null`) and the checker rebuilds itself from
//!    its own paired history.
//! 4. **forced-window** — the tenant's checker state breached its
//!    resident-byte budget; its retirement window is tightened and it
//!    keeps serving with bounded memory (`forced_window` gauge). The
//!    soft rung (3/4 of the budget) forces a retirement seal first.
//! 5. **failed** — under [`RecoveryPolicy::Strict`] the first damaged
//!    line fails the tenant; subsequent requests are rejected with a
//!    `422`. No rung of the ladder ever touches another tenant.

use crate::config::ServeConfig;
use crate::store::{Restored, TenantStore};
use elle_history::{Event, Recovered, RecoveryPolicy, SnapshotMeta};
use elle_stream::{CheckerSnapshot, EpochReport, StreamChecker, WindowCarry, WindowPolicy};
use serde::{Deserialize, Serialize};
use std::io;
use std::time::{Duration, Instant};

/// Journal form of a line whose event body did not decode: it fails
/// event decoding again on replay, so the quarantine gauge reproduces.
const UNDECODABLE_SENTINEL: &str = "{\"undecodable\":true}";

/// What one ingested event produced, beyond mutating the tenant.
#[derive(Debug, Default)]
pub struct IngestReply {
    /// A quarantine diagnostic to send back, if recovery repaired
    /// something.
    pub warning: Option<String>,
    /// A verdict envelope, if the event crossed an epoch watermark.
    pub sealed: Option<String>,
    /// The tenant just failed (strict mode); the message explains why.
    pub failed: Option<String>,
}

/// A tenant's final verdict, reported by a graceful drain.
#[derive(Debug, Clone)]
pub struct TenantFinal {
    /// The tenant id.
    pub tenant: String,
    /// The final verdict: `None` when the closing epoch was poisoned
    /// or the tenant had failed.
    pub ok: Option<bool>,
    /// Whether the closing seal was poisoned.
    pub poisoned: bool,
    /// The full final envelope line (or a `422` reject for a failed
    /// tenant).
    pub verdict: String,
}

/// Serve-layer budget state persisted in the snapshot beside the
/// checker's own window carry. The ladder gauges and the soft-rung
/// latch must survive restart, or a recovered tenant's envelopes drift
/// from an uninterrupted run's by exactly the forgotten rungs (a reset
/// latch re-fires the soft seal the live run already took).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BudgetCarry {
    /// The checker's retired-prefix carry. `None` when the policy is
    /// unbounded and nothing retired — only the gauges needed saving.
    window: Option<WindowCarry>,
    /// Soft-rung forced-seal count at snapshot time.
    budget_seals: usize,
    /// Hard-rung tightening count at snapshot time.
    forced_window: usize,
    /// Soft-rung edge-trigger latch at snapshot time.
    over_soft: bool,
}

/// One tenant's full state: checker, store, counters, degradation.
pub struct Tenant {
    name: String,
    checker: StreamChecker,
    store: Option<TenantStore>,
    recovery: RecoveryPolicy,
    txns_since_seal: usize,
    events_since_seal: usize,
    events_since_snapshot: usize,
    cli_quarantined: usize,
    forced_seals: usize,
    /// Retirement seals forced by the soft resident-byte rung.
    budget_seals: usize,
    /// Times the hard rung tightened this tenant's window.
    forced_window: usize,
    /// Edge-trigger latch for the soft rung: one forced seal per
    /// crossing, re-armed when retirement brings residency back under.
    over_soft: bool,
    failed: Option<String>,
    epoch_opened: Option<Instant>,
}

impl Tenant {
    /// Open a tenant: restore snapshot + journal from the config's data
    /// directory (if any) and replay them through the normal ingest
    /// path. Returns the verdict envelopes produced by replayed
    /// watermark seals — already persisted at-least-once, so callers
    /// normally discard them.
    pub fn open(name: &str, cfg: &ServeConfig) -> io::Result<(Tenant, Vec<String>)> {
        let mut store = None;
        let mut restored = Restored::default();
        if let Some(root) = &cfg.data_dir {
            let (s, r) = TenantStore::open(root.join("tenants").join(name))?;
            store = Some(s);
            restored = r;
        }
        let Restored {
            snapshot,
            journal_lines,
        } = restored;
        let (checker, txns_since_seal, events_since_seal, budget) = match snapshot {
            Some((meta, events)) => {
                // The carried window policy wins over the config: a
                // budget-forced tightening must survive restart, or a
                // crash loop would reset the tenant to the very policy
                // that blew the budget.
                let carry = match &meta.window {
                    Some(v) => Some(<BudgetCarry as serde::Deserialize>::deserialize(v).map_err(
                        |e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("snapshot window carry: {e}"),
                            )
                        },
                    )?),
                    None => None,
                };
                let (window, budget) = match carry {
                    Some(c) => (c.window, (c.budget_seals, c.forced_window, c.over_soft)),
                    None => (None, (0, 0, false)),
                };
                let carried_policy = window.is_some();
                let snap = CheckerSnapshot {
                    epoch: meta.epoch,
                    quarantined: meta.quarantined,
                    events_this_epoch: meta.events_this_epoch,
                    events,
                    window,
                };
                let mut checker = StreamChecker::restore(cfg.opts, &snap);
                if !carried_policy {
                    checker.set_window_policy(cfg.window);
                }
                (
                    checker,
                    meta.txns_since_seal,
                    meta.events_this_epoch,
                    budget,
                )
            }
            None => (
                StreamChecker::with_window(cfg.opts, cfg.window),
                0,
                0,
                (0, 0, false),
            ),
        };
        let mut t = Tenant {
            name: name.to_string(),
            checker,
            store,
            recovery: cfg.recovery,
            txns_since_seal,
            events_since_seal,
            events_since_snapshot: 0,
            cli_quarantined: 0,
            forced_seals: 0,
            budget_seals: budget.0,
            forced_window: budget.1,
            over_soft: budget.2,
            failed: None,
            epoch_opened: None,
        };
        if let Some((tenant, epoch)) = &cfg.inject_seal_panic {
            if tenant == name {
                t.checker.inject_seal_panic(*epoch);
            }
        }
        // Replay the journal through the same path live ingest takes —
        // seals fire at the same watermarks, so epoch numbering (and
        // with it every later verdict) reproduces exactly. Journaling
        // and snapshot rotation are suppressed: the lines are already
        // on disk, and rotating mid-replay would delete lines not yet
        // replayed.
        let mut replayed = Vec::new();
        for line in &journal_lines {
            match serde_json::from_str::<serde::Value>(line)
                .map_err(|e| e.to_string())
                .and_then(|v| {
                    <Event as serde::Deserialize>::deserialize(&v).map_err(|e| e.to_string())
                }) {
                Ok(ev) => {
                    let reply = t.apply_event(cfg, &ev, false)?;
                    replayed.extend(reply.sealed);
                }
                Err(msg) => {
                    t.cli_quarantined += 1;
                    if t.recovery == RecoveryPolicy::Strict && t.failed.is_none() {
                        t.failed = Some(msg);
                    }
                }
            }
        }
        t.events_since_snapshot = journal_lines.len();
        Ok((t, replayed))
    }

    /// The tenant id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Some(reason)` once the tenant has failed (strict mode); the
    /// server rejects its requests with a `422`.
    pub fn failed(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// Ingest one decoded event: journal it, feed the checker, seal if
    /// a watermark is due, rotate the snapshot if one is due.
    pub fn ingest(&mut self, cfg: &ServeConfig, ev: &Event) -> io::Result<IngestReply> {
        self.apply_event(cfg, ev, true)
    }

    /// Ingest a line whose event body did not decode. Under quarantine
    /// it bumps the gauge; under strict it fails the tenant.
    pub fn ingest_bad(&mut self, cfg: &ServeConfig, message: &str) -> io::Result<IngestReply> {
        if let Some(store) = &mut self.store {
            store.append_event(UNDECODABLE_SENTINEL)?;
        }
        self.events_since_snapshot += 1;
        self.cli_quarantined += 1;
        let mut reply = IngestReply::default();
        match self.recovery {
            RecoveryPolicy::Strict => {
                self.failed = Some(message.to_string());
                reply.failed = Some(message.to_string());
            }
            RecoveryPolicy::Quarantine => {
                reply.warning = Some(format!("quarantined: {message} — line skipped"));
            }
        }
        self.maybe_rotate(cfg)?;
        Ok(reply)
    }

    fn apply_event(
        &mut self,
        cfg: &ServeConfig,
        ev: &Event,
        live: bool,
    ) -> io::Result<IngestReply> {
        let mut reply = IngestReply::default();
        if live {
            if let Some(store) = &mut self.store {
                store.append_event(
                    &serde_json::to_string(ev).expect("event serialization is infallible"),
                )?;
            }
            self.events_since_snapshot += 1;
        }
        match self.checker.ingest_event_with(ev, self.recovery) {
            Ok(recovered) => {
                match &recovered {
                    Recovered::Ingested(_) => {}
                    Recovered::Skipped(e) => {
                        reply.warning = Some(format!("quarantined: {e} — event skipped"));
                    }
                    Recovered::Adopted(_, e) => {
                        reply.warning = Some(format!("quarantined: {e} — orphan adopted"));
                    }
                    Recovered::Abandoned { cause, .. } => {
                        reply.warning =
                            Some(format!("quarantined: {cause} — open invocation abandoned"));
                    }
                }
                if invokes_txn(&recovered) {
                    self.txns_since_seal += 1;
                }
            }
            Err(e) => {
                // Strict mode: the first pairing violation fails the
                // tenant. The event never reached the checker.
                let msg = e.to_string();
                self.failed = Some(msg.clone());
                reply.failed = Some(msg);
                return Ok(reply);
            }
        }
        self.events_since_seal += 1;
        if self.epoch_opened.is_none() {
            self.epoch_opened = Some(Instant::now());
        }
        if cfg.watermark_due(self.txns_since_seal, self.events_since_seal) {
            reply.sealed = Some(self.seal(live)?);
        }
        if reply.sealed.is_none() {
            if let Some(line) = self.enforce_resident_budget(cfg, live)? {
                reply.sealed = Some(line);
            }
        }
        if live {
            self.maybe_rotate(cfg)?;
        }
        Ok(reply)
    }

    /// The resident-byte ladder, checked after every ingested event.
    /// Soft rung (3/4 of the budget): one forced retirement seal per
    /// crossing. Hard rung (the budget): tighten the window —
    /// `forced-window` — and seal, so the tenant keeps serving with
    /// bounded memory instead of being rejected or killed. Residency is
    /// a deterministic function of the ingested prefix, so journal
    /// replay reproduces every rung (and with it epoch numbering).
    fn enforce_resident_budget(
        &mut self,
        cfg: &ServeConfig,
        live: bool,
    ) -> io::Result<Option<String>> {
        let Some(hard) = cfg.max_tenant_resident_bytes else {
            return Ok(None);
        };
        let resident = self.checker.resident_bytes();
        let soft = hard - hard / 4;
        if resident <= soft {
            self.over_soft = false;
            return Ok(None);
        }
        if resident > hard {
            self.forced_window += 1;
            let tightened = match self.checker.window_policy() {
                WindowPolicy::Bytes(b) => WindowPolicy::Bytes((b / 2).max(1)),
                WindowPolicy::TxnCount(w) => WindowPolicy::TxnCount((w / 2).max(1)),
                WindowPolicy::Unbounded => WindowPolicy::Bytes(soft),
            };
            self.checker.set_window_policy(tightened);
            self.over_soft = false;
            return self.seal(live).map(Some);
        }
        if self.over_soft {
            return Ok(None);
        }
        self.over_soft = true;
        self.budget_seals += 1;
        self.seal(live).map(Some)
    }

    /// Seal the current epoch and return the verdict envelope line.
    pub fn seal(&mut self, rotate_after: bool) -> io::Result<String> {
        let epoch = self.checker.seal_epoch_guarded();
        self.txns_since_seal = 0;
        self.events_since_seal = 0;
        self.epoch_opened = None;
        let line = self.envelope(&epoch);
        if let Some(store) = &mut self.store {
            store.append_verdict(&line)?;
            // A seal is a natural consistency point: fold it into the
            // snapshot so a restart replays as little as possible.
            if rotate_after && self.events_since_snapshot > 0 {
                self.rotate()?;
            }
        }
        Ok(line)
    }

    /// Watchdog hook: force a seal when the open epoch is older than
    /// `max` and has events buffered.
    pub fn maybe_force_seal(&mut self, max: Duration) -> io::Result<Option<String>> {
        match self.epoch_opened {
            Some(t0) if t0.elapsed() >= max => {
                self.forced_seals += 1;
                self.seal(true).map(Some)
            }
            _ => Ok(None),
        }
    }

    /// Final-seal the tenant (graceful drain or `close` op).
    pub fn close(mut self) -> TenantFinal {
        if let Some(reason) = &self.failed {
            return TenantFinal {
                tenant: self.name.clone(),
                ok: None,
                poisoned: false,
                verdict: crate::wire::reject(
                    Some(&self.name),
                    422,
                    &format!("tenant failed: {reason}"),
                ),
            };
        }
        let epoch = self.checker.seal_epoch_guarded();
        let line = self.envelope(&epoch);
        if let Some(store) = &mut self.store {
            let _ = store.append_verdict(&line);
            let _ = self.rotate();
        }
        TenantFinal {
            tenant: self.name,
            ok: match &epoch.poisoned {
                None => Some(epoch.report.ok()),
                Some(_) => None,
            },
            poisoned: epoch.poisoned.is_some(),
            verdict: line,
        }
    }

    /// One-line status summary. Window gauges appear only when the
    /// tenant runs windowed (or the budget ladder fired), so unbounded
    /// tenants' status lines stay byte-stable.
    pub fn status_line(&self) -> String {
        let mut extra = String::new();
        if self.checker.window_policy() != WindowPolicy::Unbounded {
            extra.push_str(&format!(
                ",\"resident_bytes\":{},\"retired_txns\":{}",
                self.checker.resident_bytes(),
                self.checker.retired_txns(),
            ));
        }
        if self.budget_seals > 0 {
            extra.push_str(&format!(",\"budget_seals\":{}", self.budget_seals));
        }
        if self.forced_window > 0 {
            extra.push_str(&format!(",\"forced_window\":{}", self.forced_window));
        }
        format!(
            "{{\"tenant\":\"{}\",\"status\":{{\"epochs\":{},\"txns\":{},\"events_this_epoch\":{},\"quarantined\":{},\"forced_seals\":{}{extra},\"failed\":{}}}}}",
            self.name,
            self.checker.epochs_sealed(),
            self.checker.txn_count(),
            self.events_since_seal,
            self.quarantined_total(),
            self.forced_seals,
            self.failed.is_some(),
        )
    }

    fn quarantined_total(&self) -> usize {
        // After a restore the checker's counter already carries the
        // pre-snapshot decode-level count (folded in at rotation), so
        // the sum equals an uninterrupted run's.
        self.checker.quarantined() + self.cli_quarantined
    }

    fn maybe_rotate(&mut self, cfg: &ServeConfig) -> io::Result<()> {
        if self.store.is_some() && self.events_since_snapshot >= cfg.snapshot_events.max(1) {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        let snap = self.checker.snapshot();
        let mut meta = SnapshotMeta::new(
            0, // overwritten by TenantStore::rotate
            snap.epoch,
            snap.quarantined + self.cli_quarantined,
            snap.events_this_epoch,
            self.txns_since_seal,
        );
        let budgeted = self.budget_seals > 0 || self.forced_window > 0 || self.over_soft;
        if snap.window.is_some() || budgeted {
            let carry = BudgetCarry {
                window: snap.window.clone(),
                budget_seals: self.budget_seals,
                forced_window: self.forced_window,
                over_soft: self.over_soft,
            };
            meta.window = Some(serde::Serialize::serialize(&carry));
        }
        let store = self.store.as_mut().expect("rotate requires a store");
        store.rotate(meta, &snap.events)?;
        self.cli_quarantined = 0;
        self.events_since_snapshot = 0;
        Ok(())
    }

    /// The per-seal verdict envelope. Deliberately omits `rebuilt`
    /// (elle-stream reports it): the first seal after a restore always
    /// rebuilds, so including it would break the byte-identity the
    /// crash-recovery contract promises. Gauges appear only when
    /// nonzero, keeping healthy tenants' envelopes byte-stable.
    fn envelope(&self, epoch: &EpochReport) -> String {
        let ok = match &epoch.poisoned {
            None => epoch.report.ok().to_string(),
            Some(_) => "null".to_string(),
        };
        let mut extra = String::new();
        if let Some(m) = &epoch.poisoned {
            extra.push_str(&format!(
                ",\"poisoned\":{}",
                serde_json::to_string(m).expect("string serializes")
            ));
        }
        let q = self.quarantined_total();
        if q > 0 {
            extra.push_str(&format!(",\"quarantined\":{q}"));
        }
        if self.forced_seals > 0 {
            extra.push_str(&format!(",\"forced_seals\":{}", self.forced_seals));
        }
        if self.budget_seals > 0 {
            extra.push_str(&format!(",\"budget_seals\":{}", self.budget_seals));
        }
        if self.forced_window > 0 {
            extra.push_str(&format!(",\"forced_window\":{}", self.forced_window));
        }
        if let Some(w) = &epoch.window {
            extra.push_str(&format!(
                ",\"window\":{{\"retired_txns\":{},\"retained_txns\":{},\"resident_bytes\":{},\"exact\":{}}}",
                w.retired_txns, w.retained_txns, w.resident_bytes, w.exact,
            ));
        }
        format!(
            "{{\"tenant\":\"{}\",\"epoch\":{},\"txns\":{},\"events\":{},\"ok\":{ok},\"open_txns\":{}{extra},\"report\":{}}}",
            self.name,
            epoch.epoch,
            epoch.txns,
            epoch.events,
            epoch.frontier.open_txns,
            serde_json::to_string(&epoch.report).expect("report serializes"),
        )
    }
}

/// Reference oracle for differential tests and the `--chaos` self
/// check: process `lines` exactly as one worker thread would for a
/// single *ephemeral* tenant (no journaling) and return the final
/// close verdict. Because one tenant's processing is serial and
/// independent of every other tenant, a served tenant's verdict must
/// equal this, byte for byte, whatever else the service survived.
pub fn solo_verdict(cfg: &ServeConfig, tenant: &str, lines: &[String]) -> String {
    let mut cfg = cfg.clone();
    cfg.data_dir = None;
    let (mut t, _) = Tenant::open(tenant, &cfg).expect("ephemeral tenants cannot fail to open");
    for line in lines {
        if line.trim().is_empty() || line.len() > cfg.max_line_bytes || t.failed().is_some() {
            continue;
        }
        match crate::wire::parse_request(line) {
            Ok(crate::wire::Request::Event { event, .. }) => {
                let _ = t.ingest(&cfg, &event);
            }
            Ok(crate::wire::Request::BadEvent { message, .. }) => {
                let _ = t.ingest_bad(&cfg, &message);
            }
            _ => {} // rejected at the wire, never reaches a tenant
        }
    }
    t.close().verdict
}

/// Did this recovery outcome admit a *new* transaction invocation?
/// Drives the transaction-count epoch watermark.
fn invokes_txn(r: &Recovered) -> bool {
    use elle_history::Ingest;
    matches!(
        r,
        Recovered::Ingested(Ingest::Invoked(_))
            | Recovered::Adopted(..)
            | Recovered::Abandoned { .. }
    )
}
