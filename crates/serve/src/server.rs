//! The multi-tenant engine: admission control on the caller's thread,
//! a shard-per-worker pool that owns the tenants, and a watchdog.
//!
//! Tenants are sharded across workers by a stable hash of the tenant
//! id, so one tenant is always served by one worker: ingestion is
//! serial per tenant (the ordering the checker requires) and parallel
//! across tenants, with no locks around any checker. The only shared
//! mutable state is the admission ledger — a per-tenant buffered-byte
//! counter plus a global one — which [`Server::submit`] charges
//! *before* enqueueing a line and the owning worker releases when it
//! dequeues it. A line that would blow a budget is rejected on the
//! caller's thread with a `429`; queue memory is bounded by
//! construction, never by luck.

use crate::config::ServeConfig;
use crate::tenant::{IngestReply, Tenant, TenantFinal};
use crate::wire::{self, parse_request, Request, WireError};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where response lines go: verdict envelopes, warnings, rejects. The
/// binary points this at stdout (or the requesting socket); tests
/// collect into a vector.
pub type Sink = Arc<dyn Fn(&str) + Send + Sync>;

/// What [`Server::submit`] decided about one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Accepted (enqueued) or answered inline.
    Ok,
    /// Rejected; the reject line went to the sink.
    Rejected,
    /// The line was a `shutdown` op: the service is now draining and
    /// the caller should stop feeding and call [`Server::drain`].
    Shutdown,
}

enum Msg {
    Req {
        tenant: String,
        bytes: usize,
        budget: Arc<AtomicUsize>,
        req: Request,
        sink: Sink,
    },
    Tick,
    Drain(mpsc::Sender<Vec<TenantFinal>>),
}

struct Shared {
    cfg: ServeConfig,
    global_bytes: AtomicUsize,
    registry: Mutex<HashMap<String, Arc<AtomicUsize>>>,
    draining: AtomicBool,
    default_sink: Sink,
}

/// The running service: worker threads, their mailboxes, the watchdog.
pub struct Server {
    shared: Arc<Shared>,
    senders: Vec<mpsc::Sender<Msg>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

/// FNV-1a: a stable tenant→shard hash (must not vary across runs or
/// platforms, or restart would re-shard tenants mid-history — harmless
/// for correctness, but needless churn).
fn shard_of(tenant: &str, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % workers as u64) as usize
}

impl Server {
    /// Start the service: recover every tenant found under the data
    /// directory (before any line is accepted, so recovery can't race
    /// ingestion), then spawn the worker pool and watchdog.
    /// `default_sink` receives lines with no requesting caller:
    /// watchdog-forced seal verdicts.
    pub fn start(cfg: ServeConfig, default_sink: Sink) -> io::Result<Server> {
        let workers = cfg.workers.max(1);
        let mut maps: Vec<HashMap<String, Tenant>> = (0..workers).map(|_| HashMap::new()).collect();
        let mut registry = HashMap::new();
        if let Some(root) = &cfg.data_dir {
            let tenants_dir = root.join("tenants");
            if let Ok(entries) = std::fs::read_dir(&tenants_dir) {
                let mut names: Vec<String> = entries
                    .filter_map(|e| e.ok()?.file_name().into_string().ok())
                    .filter(|n| crate::config::valid_tenant_id(n))
                    .collect();
                names.sort_unstable();
                for name in names {
                    // Replay verdicts were already persisted by the run
                    // that produced them (at-least-once); discard here.
                    // An unrecoverable tenant is skipped — it will fail
                    // again, attributed, when a request addresses it.
                    if let Ok((tenant, _replayed)) = Tenant::open(&name, &cfg) {
                        registry.insert(name.clone(), Arc::new(AtomicUsize::new(0)));
                        maps[shard_of(&name, workers)].insert(name, tenant);
                    }
                }
            }
        }
        let shared = Arc::new(Shared {
            cfg,
            global_bytes: AtomicUsize::new(0),
            registry: Mutex::new(registry),
            draining: AtomicBool::new(false),
            default_sink,
        });
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for map in maps {
            let (tx, rx) = mpsc::channel();
            let shared = Arc::clone(&shared);
            senders.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(shared, rx, map)));
        }
        let watchdog = shared.cfg.max_epoch.map(|max| {
            let senders = senders.clone();
            std::thread::spawn(move || {
                let tick = (max / 4).max(Duration::from_millis(10));
                loop {
                    std::thread::sleep(tick);
                    if senders.iter().any(|s| s.send(Msg::Tick).is_err()) {
                        return;
                    }
                }
            })
        });
        Ok(Server {
            shared,
            senders,
            workers: handles,
            watchdog,
        })
    }

    /// Submit one request line. Admission (size, tenant validity,
    /// budgets, drain state) happens here on the caller's thread;
    /// accepted lines are enqueued to the owning worker and processed
    /// asynchronously. Every response goes through `sink`.
    pub fn submit(&self, line: &str, sink: &Sink) -> Submitted {
        if line.trim().is_empty() {
            return Submitted::Ok;
        }
        if line.len() > self.shared.cfg.max_line_bytes {
            sink(&wire::reject(
                None,
                400,
                &format!(
                    "line of {} bytes exceeds the {}-byte limit",
                    line.len(),
                    self.shared.cfg.max_line_bytes
                ),
            ));
            return Submitted::Rejected;
        }
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(WireError {
                tenant,
                code,
                reason,
            }) => {
                sink(&wire::reject(tenant.as_deref(), code, &reason));
                return Submitted::Rejected;
            }
        };
        if let Request::Shutdown = req {
            self.shared.draining.store(true, Ordering::SeqCst);
            return Submitted::Shutdown;
        }
        if let Request::Status { tenant: None } = req {
            sink(&self.global_status());
            return Submitted::Ok;
        }
        let tenant = match &req {
            Request::Event { tenant, .. }
            | Request::BadEvent { tenant, .. }
            | Request::Seal { tenant }
            | Request::Close { tenant } => tenant.clone(),
            Request::Status { tenant: Some(t) } => t.clone(),
            Request::Status { tenant: None } | Request::Shutdown => unreachable!(),
        };
        if self.shared.draining.load(Ordering::SeqCst) {
            sink(&wire::reject(Some(&tenant), 503, "service is draining"));
            return Submitted::Rejected;
        }
        let budget = {
            let mut registry = self.shared.registry.lock().expect("registry poisoned");
            match registry.get(&tenant) {
                Some(b) => Arc::clone(b),
                None => {
                    if registry.len() >= self.shared.cfg.max_tenants {
                        drop(registry);
                        sink(&wire::reject(
                            Some(&tenant),
                            429,
                            &format!(
                                "tenant limit reached ({} live tenants)",
                                self.shared.cfg.max_tenants
                            ),
                        ));
                        return Submitted::Rejected;
                    }
                    let b = Arc::new(AtomicUsize::new(0));
                    registry.insert(tenant.clone(), Arc::clone(&b));
                    b
                }
            }
        };
        // Charge both ledgers, then check; on overflow refund and
        // reject. Charging first makes concurrent submits conservative
        // (they can over-reject under contention, never over-admit).
        let bytes = line.len();
        let t_after = budget.fetch_add(bytes, Ordering::SeqCst) + bytes;
        let g_after = self.shared.global_bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if t_after > self.shared.cfg.max_tenant_bytes || g_after > self.shared.cfg.max_total_bytes {
            budget.fetch_sub(bytes, Ordering::SeqCst);
            self.shared.global_bytes.fetch_sub(bytes, Ordering::SeqCst);
            let which = if t_after > self.shared.cfg.max_tenant_bytes {
                format!(
                    "tenant buffer budget exceeded ({t_after} > {} bytes)",
                    self.shared.cfg.max_tenant_bytes
                )
            } else {
                format!(
                    "global buffer budget exceeded ({g_after} > {} bytes)",
                    self.shared.cfg.max_total_bytes
                )
            };
            sink(&wire::reject(Some(&tenant), 429, &which));
            return Submitted::Rejected;
        }
        let shard = shard_of(&tenant, self.senders.len());
        let msg = Msg::Req {
            tenant,
            bytes,
            budget,
            req,
            sink: Arc::clone(sink),
        };
        self.senders[shard].send(msg).expect("worker died");
        Submitted::Ok
    }

    fn global_status(&self) -> String {
        let tenants = self
            .shared
            .registry
            .lock()
            .expect("registry poisoned")
            .len();
        format!(
            "{{\"status\":{{\"tenants\":{tenants},\"buffered_bytes\":{},\"draining\":{}}}}}",
            self.shared.global_bytes.load(Ordering::SeqCst),
            self.shared.draining.load(Ordering::SeqCst),
        )
    }

    /// Graceful drain: stop admitting, let every queued line finish,
    /// final-seal and snapshot every tenant, stop the workers. Returns
    /// the final verdicts sorted by tenant id.
    pub fn drain(mut self) -> Vec<TenantFinal> {
        self.shared.draining.store(true, Ordering::SeqCst);
        let (ack_tx, ack_rx) = mpsc::channel();
        for tx in &self.senders {
            // A worker that already stopped has nothing to drain.
            let _ = tx.send(Msg::Drain(ack_tx.clone()));
        }
        drop(ack_tx);
        let mut finals: Vec<TenantFinal> = ack_rx.iter().flatten().collect();
        finals.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        finals
    }

    /// Crash hook for tests: stop the workers *without* final seals or
    /// snapshot rotation, as an abrupt kill would. Queued lines still
    /// drain to the journal first (a crash after processing is also a
    /// crash), which is what makes store-level crash tests
    /// deterministic.
    pub fn abort(mut self) {
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Consumed by drain()/abort() in the normal paths; this is the
        // escape hatch that keeps a panicking test from deadlocking.
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

fn send_reply(sink: &Sink, tenant: &str, reply: &IngestReply) {
    if let Some(w) = &reply.warning {
        sink(&wire::warning(tenant, w));
    }
    if let Some(v) = &reply.sealed {
        sink(v);
    }
    if let Some(f) = &reply.failed {
        sink(&wire::reject(
            Some(tenant),
            422,
            &format!("tenant failed: {f}"),
        ));
    }
}

fn worker_loop(shared: Arc<Shared>, rx: mpsc::Receiver<Msg>, mut tenants: HashMap<String, Tenant>) {
    for msg in rx {
        match msg {
            Msg::Req {
                tenant: name,
                bytes,
                budget,
                req,
                sink,
            } => {
                budget.fetch_sub(bytes, Ordering::SeqCst);
                shared.global_bytes.fetch_sub(bytes, Ordering::SeqCst);
                if !tenants.contains_key(&name) {
                    match Tenant::open(&name, &shared.cfg) {
                        Ok((t, _replayed)) => {
                            tenants.insert(name.clone(), t);
                        }
                        Err(e) => {
                            shared
                                .registry
                                .lock()
                                .expect("registry poisoned")
                                .remove(&name);
                            sink(&wire::reject(
                                Some(&name),
                                500,
                                &format!("tenant store unrecoverable: {e}"),
                            ));
                            continue;
                        }
                    }
                }
                match req {
                    // Close consumes the tenant ([`Tenant::close`]
                    // itself renders the 422 form for a failed one).
                    Request::Close { .. } => {
                        let t = tenants.remove(&name).expect("just inserted");
                        shared
                            .registry
                            .lock()
                            .expect("registry poisoned")
                            .remove(&name);
                        sink(&t.close().verdict);
                    }
                    Request::Status { .. } => {
                        sink(&tenants[&name].status_line());
                    }
                    Request::Shutdown => {} // handled in submit()
                    req => {
                        let tenant = tenants.get_mut(&name).expect("just inserted");
                        if let Some(reason) = tenant.failed() {
                            sink(&wire::reject(
                                Some(&name),
                                422,
                                &format!("tenant failed: {reason}"),
                            ));
                            continue;
                        }
                        let outcome = match req {
                            Request::Event { event, .. } => tenant.ingest(&shared.cfg, &event),
                            Request::BadEvent { message, .. } => {
                                tenant.ingest_bad(&shared.cfg, &message)
                            }
                            Request::Seal { .. } => tenant.seal(true).map(|line| IngestReply {
                                sealed: Some(line),
                                ..IngestReply::default()
                            }),
                            _ => unreachable!("handled above"),
                        };
                        match outcome {
                            Ok(reply) => send_reply(&sink, &name, &reply),
                            Err(e) => sink(&wire::reject(
                                Some(&name),
                                500,
                                &format!("durability failure: {e}"),
                            )),
                        }
                    }
                }
            }
            Msg::Tick => {
                if let Some(max) = shared.cfg.max_epoch {
                    for tenant in tenants.values_mut() {
                        if tenant.failed().is_some() {
                            continue;
                        }
                        match tenant.maybe_force_seal(max) {
                            Ok(Some(line)) => (shared.default_sink)(&line),
                            Ok(None) => {}
                            Err(e) => (shared.default_sink)(&wire::reject(
                                Some(tenant.name()),
                                500,
                                &format!("durability failure: {e}"),
                            )),
                        }
                    }
                }
            }
            Msg::Drain(ack) => {
                let mut names: Vec<String> = tenants.keys().cloned().collect();
                names.sort_unstable();
                let finals = names
                    .into_iter()
                    .map(|n| tenants.remove(&n).expect("present").close())
                    .collect();
                let _ = ack.send(finals);
                return;
            }
        }
    }
}
