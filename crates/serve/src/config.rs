//! Service configuration: scheduling, watermarks, budgets, durability.

use elle_core::CheckOptions;
use elle_history::RecoveryPolicy;
use elle_stream::WindowPolicy;
use std::path::PathBuf;
use std::time::Duration;

/// Everything `elle-serve` needs to run: the judging options shared by
/// every tenant, the worker-pool shape, epoch watermarks, admission
/// budgets, and the durability root.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Check options every tenant is judged against.
    pub opts: CheckOptions,
    /// Ingest recovery policy. The service defaults to
    /// [`RecoveryPolicy::Quarantine`]: a damaged line degrades its
    /// tenant's inferences, it does not kill the tenant. Under
    /// [`RecoveryPolicy::Strict`] the first violation marks the tenant
    /// **failed** (subsequent lines are rejected); other tenants are
    /// unaffected either way.
    pub recovery: RecoveryPolicy,
    /// Worker threads. Tenants are sharded across workers by name hash;
    /// one tenant is always served by one worker (serial per tenant,
    /// parallel across tenants, no locks around checkers).
    pub workers: usize,
    /// Seal a tenant's epoch every this many newly invoked
    /// transactions.
    pub epoch_txns: Option<usize>,
    /// Seal a tenant's epoch every this many ingested events.
    pub epoch_events: Option<usize>,
    /// Watchdog: force a seal when a tenant's epoch has stayed open
    /// this long with events buffered (a stalled producer cannot leave
    /// ingested events unreported). Forced seals shift epoch numbering
    /// between runs, so leave this off for byte-differential testing.
    pub max_epoch: Option<Duration>,
    /// Rotate a tenant's snapshot after this many accepted events.
    pub snapshot_events: usize,
    /// Reject any single request line larger than this many bytes.
    pub max_line_bytes: usize,
    /// Per-tenant buffered-byte budget: lines admitted but not yet
    /// processed. Exceeding it is a per-tenant `429` reject.
    pub max_tenant_bytes: usize,
    /// Global buffered-byte budget across all tenants — the service
    /// degrades with explicit rejects instead of growing without bound.
    pub max_total_bytes: usize,
    /// Maximum number of live tenants.
    pub max_tenants: usize,
    /// Retirement window every tenant's checker starts under.
    /// `Unbounded` keeps the full prefix resident (the pre-windowing
    /// behavior). A tenant whose snapshot carries a tighter policy —
    /// e.g. one forced by the budget ladder — keeps that policy across
    /// restarts.
    pub window: WindowPolicy,
    /// Per-tenant **resident**-byte budget: the checker's carried state
    /// (paired prefix, version tables, dependency spine), as opposed to
    /// [`max_tenant_bytes`](ServeConfig::max_tenant_bytes), which caps
    /// buffered-but-unprocessed lines. Soft rung at 3/4 of the budget:
    /// a forced retirement seal. Hard rung at the budget: the
    /// `forced-window` degradation — tighten the tenant's window and
    /// keep serving — before any reject.
    pub max_tenant_resident_bytes: Option<usize>,
    /// Durability root. `None` runs ephemeral (no snapshots, no
    /// journals, no recovery on restart).
    pub data_dir: Option<PathBuf>,
    /// Test hook: make the named tenant's seal of the given epoch
    /// ordinal panic, to exercise poisoned-epoch isolation.
    pub inject_seal_panic: Option<(String, usize)>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            opts: CheckOptions::strict_serializable()
                .with_process_edges(false)
                .with_realtime_edges(false),
            recovery: RecoveryPolicy::Quarantine,
            workers: 4,
            epoch_txns: Some(1000),
            epoch_events: None,
            max_epoch: None,
            snapshot_events: 4096,
            max_line_bytes: 1 << 20,
            max_tenant_bytes: 4 << 20,
            max_total_bytes: 64 << 20,
            max_tenants: 1024,
            window: WindowPolicy::Unbounded,
            max_tenant_resident_bytes: None,
            data_dir: None,
            inject_seal_panic: None,
        }
    }
}

impl ServeConfig {
    /// Does the given counter state hit an epoch watermark?
    pub(crate) fn watermark_due(&self, txns_since: usize, events_since: usize) -> bool {
        self.epoch_txns.is_some_and(|n| txns_since >= n.max(1))
            || self.epoch_events.is_some_and(|n| events_since >= n.max(1))
    }
}

/// A tenant id usable as a path component and embeddable in JSON
/// without escaping: 1–64 chars from `[A-Za-z0-9._-]`, not starting
/// with a dot.
pub fn valid_tenant_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && !s.starts_with('.')
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}
