//! The NDJSON request protocol and its response lines.
//!
//! Every request is one JSON object per line. Ingest lines tag an
//! event with the tenant it belongs to; control lines carry an `op`:
//!
//! ```text
//! {"tenant":"t1","event":{"index":0,"process":0,"kind":"invoke",...}}
//! {"tenant":"t1","op":"seal"}      explicit seal; replies with the verdict
//! {"tenant":"t1","op":"status"}    one tenant's status
//! {"tenant":"t1","op":"close"}     final seal, snapshot, release the tenant
//! {"op":"status"}                  global status
//! {"op":"shutdown"}                graceful drain (same as SIGTERM / EOF)
//! ```
//!
//! Responses are one JSON object per line too: `{"tenant":…,"error":
//! {"code":…,"reason":…}}` rejects (429 budget, 400 malformed, 503
//! draining, 422 failed tenant), `{"tenant":…,"warning":…}` quarantine
//! diagnostics, and per-seal verdict envelopes (see
//! [`crate::tenant`]).
//!
//! Parsing is staged — the envelope first, the event second — so a
//! malformed event body is still *attributed* to its tenant and flows
//! through that tenant's recovery policy instead of being an anonymous
//! protocol error.

use crate::config::valid_tenant_id;
use elle_history::Event;
use serde::{Deserialize, Value};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An event for a tenant's stream.
    Event {
        /// The tenant.
        tenant: String,
        /// The decoded event.
        event: Box<Event>,
    },
    /// The envelope was well-formed and attributed, but the event body
    /// was not decodable — handled under the tenant's recovery policy.
    BadEvent {
        /// The tenant.
        tenant: String,
        /// The decoder's message.
        message: String,
    },
    /// Seal the tenant's epoch now and reply with the verdict.
    Seal {
        /// The tenant.
        tenant: String,
    },
    /// Report status for one tenant, or globally when `None`.
    Status {
        /// The tenant, or `None` for the whole service.
        tenant: Option<String>,
    },
    /// Final-seal, snapshot, and release the tenant.
    Close {
        /// The tenant.
        tenant: String,
    },
    /// Graceful drain of the whole service.
    Shutdown,
}

/// A request that could not be turned into a [`Request`]: the caller
/// responds with [`reject`] and drops the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The tenant, when the envelope was attributable.
    pub tenant: Option<String>,
    /// HTTP-style status code (400 malformed, 429 budget, …).
    pub code: u16,
    /// Human-readable reason.
    pub reason: String,
}

impl WireError {
    fn bad(reason: impl Into<String>) -> WireError {
        WireError {
            tenant: None,
            code: 400,
            reason: reason.into(),
        }
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v: Value = serde_json::from_str(line.trim())
        .map_err(|e| WireError::bad(format!("undecodable request line: {e}")))?;
    let Some(map) = v.as_map() else {
        return Err(WireError::bad("request line is not a JSON object"));
    };
    let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let tenant = match field("tenant") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) if valid_tenant_id(s) => Some(s.to_string()),
            Some(_) => {
                return Err(WireError::bad(
                    "invalid tenant id (1-64 chars of [A-Za-z0-9._-], no leading dot)",
                ))
            }
            None => return Err(WireError::bad("tenant must be a string")),
        },
    };
    match (field("op").and_then(Value::as_str), field("event")) {
        (Some(op), _) => {
            let need_tenant = |tenant: Option<String>| {
                tenant.ok_or_else(|| WireError::bad(format!("op {op:?} requires a tenant")))
            };
            match op {
                "seal" => Ok(Request::Seal {
                    tenant: need_tenant(tenant)?,
                }),
                "close" => Ok(Request::Close {
                    tenant: need_tenant(tenant)?,
                }),
                "status" => Ok(Request::Status { tenant }),
                "shutdown" => Ok(Request::Shutdown),
                other => Err(WireError {
                    tenant,
                    code: 400,
                    reason: format!("unknown op {other:?}"),
                }),
            }
        }
        (None, Some(body)) => {
            let Some(tenant) = tenant else {
                return Err(WireError::bad("event lines require a tenant"));
            };
            match Event::deserialize(body) {
                Ok(event) => Ok(Request::Event {
                    tenant,
                    event: Box::new(event),
                }),
                Err(e) => Ok(Request::BadEvent {
                    tenant,
                    message: e.to_string(),
                }),
            }
        }
        (None, None) => Err(WireError {
            tenant,
            code: 400,
            reason: "request carries neither an op nor an event".into(),
        }),
    }
}

/// Render a reject line. Tenant ids are pre-validated, so they embed
/// without escaping; reasons are JSON-escaped.
pub fn reject(tenant: Option<&str>, code: u16, reason: &str) -> String {
    let reason = serde_json::to_string(reason).expect("string serializes");
    match tenant {
        Some(t) => {
            format!("{{\"tenant\":\"{t}\",\"error\":{{\"code\":{code},\"reason\":{reason}}}}}")
        }
        None => format!("{{\"error\":{{\"code\":{code},\"reason\":{reason}}}}}"),
    }
}

/// Render a quarantine-diagnostic warning line.
pub fn warning(tenant: &str, message: &str) -> String {
    let message = serde_json::to_string(message).expect("string serializes");
    format!("{{\"tenant\":\"{tenant}\",\"warning\":{message}}}")
}

/// Tag one already-serialized event line with a tenant — the inverse of
/// [`parse_request`] for [`Request::Event`]. The event JSON is embedded
/// verbatim; the tenant id must satisfy
/// [`valid_tenant_id`](crate::config::valid_tenant_id).
pub fn tag_event_line(tenant: &str, event_json: &str) -> String {
    format!(
        "{{\"tenant\":\"{tenant}\",\"event\":{}}}",
        event_json.trim()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::{EventKind, Mop, ProcessId};

    fn ev() -> Event {
        Event {
            index: 3,
            process: ProcessId(1),
            kind: EventKind::Invoke,
            mops: vec![Mop::append(1, 2)],
            time_ns: None,
        }
    }

    #[test]
    fn round_trips_event_lines() {
        let line = tag_event_line("t-1", &serde_json::to_string(&ev()).unwrap());
        match parse_request(&line).unwrap() {
            Request::Event { tenant, event } => {
                assert_eq!(tenant, "t-1");
                assert_eq!(*event, ev());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ops_and_rejects_garbage() {
        assert_eq!(
            parse_request("{\"tenant\":\"a\",\"op\":\"seal\"}").unwrap(),
            Request::Seal { tenant: "a".into() }
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request("{\"op\":\"status\"}").unwrap(),
            Request::Status { tenant: None }
        );
        assert!(parse_request("{torn").is_err());
        assert!(parse_request("{\"tenant\":\"../x\",\"op\":\"seal\"}").is_err());
        assert!(parse_request("{\"tenant\":\"a\"}").is_err());
        assert!(parse_request("{\"op\":\"seal\"}").is_err());
    }

    #[test]
    fn bad_event_bodies_stay_attributed() {
        match parse_request("{\"tenant\":\"a\",\"event\":{\"nope\":1}}").unwrap() {
            Request::BadEvent { tenant, .. } => assert_eq!(tenant, "a"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_are_valid_json() {
        for line in [
            reject(Some("t"), 429, "tenant budget \"exceeded\""),
            reject(None, 400, "nope"),
            warning("t", "quarantined: line 3"),
        ] {
            serde_json::from_str::<serde::Value>(&line).expect("parses");
        }
    }
}
