//! Per-tenant durability: snapshot + write-ahead journal on disk.
//!
//! Layout under the service data directory:
//!
//! ```text
//! <data-dir>/tenants/<tenant>/
//!     snapshot.ndjson       meta header + synthesized accepted events
//!     journal.<seq>.ndjson  raw accepted event lines since the snapshot
//!     verdicts.ndjson       one verdict envelope per sealed epoch
//! ```
//!
//! Every accepted event line is appended (and flushed to the kernel)
//! *before* it is ingested, so a `SIGKILL` at any instant loses nothing
//! the checker had folded in. The snapshot rotation protocol and its
//! crash windows are documented on [`elle_history::snapshot_from_str`]'s
//! module; [`TenantStore::open`] implements the restart side — discard
//! `snapshot.tmp`, keep only the journal named by the snapshot's
//! sequence number, and hand back whatever survives for replay.

use elle_history::{snapshot_from_str, snapshot_to_string, Event, SnapshotMeta};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// What [`TenantStore::open`] found on disk for one tenant.
#[derive(Debug, Default)]
pub struct Restored {
    /// The parsed snapshot, if one was on disk.
    pub snapshot: Option<(SnapshotMeta, Vec<Event>)>,
    /// The surviving journal's raw lines, to re-ingest after the
    /// snapshot's events.
    pub journal_lines: Vec<String>,
}

/// One tenant's open snapshot/journal/verdict files.
#[derive(Debug)]
pub struct TenantStore {
    dir: PathBuf,
    journal: File,
    journal_seq: u64,
    verdicts: File,
}

fn journal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal.{seq}.ndjson"))
}

/// Parse `journal.<seq>.ndjson` back into its sequence number.
fn journal_seq_of(name: &str) -> Option<u64> {
    name.strip_prefix("journal.")?
        .strip_suffix(".ndjson")?
        .parse()
        .ok()
}

impl TenantStore {
    /// Open (or create) a tenant directory, cleaning up any torn
    /// rotation and returning whatever state survives for replay. A
    /// snapshot that fails to parse is an error — the caller decides
    /// whether to fail the tenant or start it fresh — but a missing
    /// snapshot or journal is just an empty [`Restored`].
    pub fn open(dir: PathBuf) -> io::Result<(TenantStore, Restored)> {
        fs::create_dir_all(&dir)?;
        // A leftover snapshot.tmp is a rotation that never committed.
        let _ = fs::remove_file(dir.join("snapshot.tmp"));

        let mut restored = Restored::default();
        let snap_path = dir.join("snapshot.ndjson");
        if let Ok(raw) = fs::read_to_string(&snap_path) {
            let parsed = snapshot_from_str(&raw).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", snap_path.display()),
                )
            })?;
            restored.snapshot = Some(parsed);
        }
        let journal_seq = restored
            .snapshot
            .as_ref()
            .map_or(0, |(meta, _)| meta.journal_seq);

        // Keep only the journal the snapshot names; every other
        // sequence number is either folded into the snapshot already or
        // part of a rotation that never committed.
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = journal_seq_of(name) {
                if seq != journal_seq {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let jpath = journal_path(&dir, journal_seq);
        if let Ok(raw) = fs::read_to_string(&jpath) {
            restored.journal_lines = raw.lines().map(str::to_string).collect();
        }
        let journal = OpenOptions::new().create(true).append(true).open(&jpath)?;
        let verdicts = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("verdicts.ndjson"))?;
        Ok((
            TenantStore {
                dir,
                journal,
                journal_seq,
                verdicts,
            },
            restored,
        ))
    }

    /// Append one accepted event line to the write-ahead journal. The
    /// write reaches the kernel before this returns, so a killed
    /// process loses nothing it acknowledged ingesting.
    pub fn append_event(&mut self, line: &str) -> io::Result<()> {
        self.journal.write_all(line.as_bytes())?;
        self.journal.write_all(b"\n")?;
        self.journal.flush()
    }

    /// Append one verdict envelope line (best-effort audit trail; a
    /// crash between a seal and the next snapshot may repeat a line on
    /// replay — verdict emission is at-least-once).
    pub fn append_verdict(&mut self, line: &str) -> io::Result<()> {
        self.verdicts.write_all(line.as_bytes())?;
        self.verdicts.write_all(b"\n")?;
        self.verdicts.flush()
    }

    /// Rotate: write a new snapshot atomically, start a fresh journal,
    /// and delete the old one (its events are inside the snapshot).
    pub fn rotate(&mut self, mut meta: SnapshotMeta, events: &[Event]) -> io::Result<()> {
        let new_seq = self.journal_seq + 1;
        meta.journal_seq = new_seq;
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(snapshot_to_string(&meta, events).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join("snapshot.ndjson"))?;
        self.journal = File::create(journal_path(&self.dir, new_seq))?;
        let _ = fs::remove_file(journal_path(&self.dir, self.journal_seq));
        self.journal_seq = new_seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("elle_serve_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journals_survive_reopen_and_rotation_cleans_up() {
        let dir = tmp_dir("rotate");
        let (mut store, restored) = TenantStore::open(dir.clone()).unwrap();
        assert!(restored.snapshot.is_none());
        assert!(restored.journal_lines.is_empty());
        store.append_event("{\"a\":1}").unwrap();
        store.append_event("{\"a\":2}").unwrap();
        drop(store);

        // Reopen: the journal lines are back.
        let (mut store, restored) = TenantStore::open(dir.clone()).unwrap();
        assert_eq!(restored.journal_lines, vec!["{\"a\":1}", "{\"a\":2}"]);

        // Rotate: empty snapshot meta, journal resets.
        store.rotate(SnapshotMeta::new(0, 3, 1, 2, 1), &[]).unwrap();
        store.append_event("{\"a\":3}").unwrap();
        drop(store);
        let (_, restored) = TenantStore::open(dir.clone()).unwrap();
        let (meta, events) = restored.snapshot.unwrap();
        assert_eq!((meta.epoch, meta.journal_seq), (3, 1));
        assert!(events.is_empty());
        assert_eq!(restored.journal_lines, vec!["{\"a\":3}"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journals_and_tmp_snapshots_are_discarded() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A rotation that crashed between steps: tmp present, stale
        // journal from a sequence the (absent) snapshot doesn't name.
        fs::write(dir.join("snapshot.tmp"), "{garbage").unwrap();
        fs::write(dir.join("journal.7.ndjson"), "{\"a\":1}\n").unwrap();
        let (_, restored) = TenantStore::open(dir.clone()).unwrap();
        assert!(restored.snapshot.is_none());
        assert!(restored.journal_lines.is_empty(), "{restored:?}");
        assert!(!dir.join("snapshot.tmp").exists());
        assert!(!dir.join("journal.7.ndjson").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_silent_reset() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("snapshot.ndjson"), "{torn\n").unwrap();
        let err = TenantStore::open(dir.clone()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }
}
