//! Minimal graceful-shutdown signal latch.
//!
//! The workspace vendors no libc crate, so this binds `signal(2)`
//! directly — the symbol is in the C runtime every Rust binary already
//! links. The handler only flips an `AtomicBool` (the one thing that
//! is async-signal-safe); the accept/read loops poll
//! [`shutdown_requested`] and start a graceful drain. A second signal
//! while draining falls back to the (restored) default disposition via
//! the one-shot `SA_RESETHAND`-like behavior of installing with
//! `signal`, letting an operator force-kill a wedged drain.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has SIGTERM or SIGINT been delivered since [`install`]?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test hook: arm the latch as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`. Takes and returns the previous handler as
        // a raw function address; `0` is `SIG_DFL`.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install SIGTERM/SIGINT handlers that arm the shutdown latch. A
/// no-op on non-unix targets (EOF / `shutdown` op still drain).
pub fn install() {
    imp::install();
}
