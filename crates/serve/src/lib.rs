//! # elle-serve
//!
//! A fault-isolated multi-tenant checking **service**: many independent
//! [`StreamChecker`](elle_stream::StreamChecker)s — one per tenant
//! history — multiplexed over a std-thread worker pool. The paper
//! frames Elle as something you run against a live system under test;
//! in production that means many concurrent histories, not one process
//! per file. This crate is the resident form of the checker, and its
//! robustness surface is the point:
//!
//! * **Fault isolation** — tenants are sharded across workers by name;
//!   each tenant's checker is owned by exactly one worker (serial per
//!   tenant, parallel across tenants, no shared-checker locks). A
//!   poisoned seal ([`StreamChecker::seal_epoch_guarded`]), a damaged
//!   line, or a failed strict-mode tenant degrades only that tenant:
//!   every other tenant's verdicts are byte-identical to a run where
//!   the failure never happened.
//! * **Admission control** — global and per-tenant buffered-byte
//!   budgets are checked *before* a line is enqueued; exceeding one is
//!   an explicit `429`-style reject line, never unbounded memory.
//! * **Watchdog seals** — `max_epoch` forces a seal on any tenant whose
//!   epoch stays open too long with events buffered, generalizing
//!   `elle-stream --max-epoch-ms` across tenants.
//! * **Crash consistency** — with a data directory, every accepted
//!   event is journaled (write-ahead) before ingest and each tenant's
//!   checker is periodically snapshotted
//!   ([`StreamChecker::snapshot`], the same replay path in-process
//!   recovery uses). A killed service restarts from snapshot + journal
//!   and every tenant converges to the byte-identical verdict of an
//!   uninterrupted run.
//!
//! The front ends (stdin single-process mode and a
//! `std::net::TcpListener` accept loop speaking the same NDJSON
//! protocol) live in the `elle-serve` binary; this crate is the
//! engine, so tests can drive [`Server`] in-process.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod server;
pub mod signal;
pub mod store;
pub mod tenant;
pub mod wire;

pub use config::{valid_tenant_id, ServeConfig};
pub use server::{Server, Sink, Submitted};
pub use store::TenantStore;
pub use tenant::{solo_verdict, IngestReply, Tenant, TenantFinal};
pub use wire::{parse_request, reject, tag_event_line, warning, Request, WireError};
