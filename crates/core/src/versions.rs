//! Version interning: the substrate that makes per-key analysis linear
//! in *distinct versions* rather than in raw read payload.
//!
//! Elle's traceability (§4.3 of the paper) means the version structure
//! of one key is tiny compared to the bytes clients observed: most
//! committed reads are prefixes of the final version `x_f`, and many
//! reads observe the *same* version. The seed pipeline nevertheless
//! rescanned every read's full value in every element-level pass
//! (duplicates, garbage, G1a, dirty updates, G1b adjacency, lost-update
//! grouping, prefix compatibility), paying O(n·m) per key for a key
//! with `n` writes and `m` reads.
//!
//! [`VersionTable`] dedups read values into dense [`VersionId`]s with
//! exactly one hash pass and one equality check per read occurrence —
//! the unavoidable single look at the payload — after which every
//! element-level pass runs **once per distinct version** and fans its
//! per-read anomalies and `wr`/`ww`/`rw` edges out from version ids in
//! O(1) per occurrence. The datatype modules own the per-version
//! passes (lists derive prefix versions from one scan of the spine
//! `x_f`; sets classify each element once; registers intern
//! `Option<Elem>` versions for their inferred version graphs); this
//! module owns the table itself.

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// A dense per-key identifier for one distinct observed read value.
///
/// Ids are assigned in first-observation order, so they are
/// deterministic for a fixed occurrence order and usable as grouping
/// keys (e.g. lost-update groups key on `VersionId` instead of hashing
/// whole `&[Elem]` slices again).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionId(pub u32);

/// Interns read values of type `K` (e.g. `&[Elem]`, `&BTreeSet<Elem>`,
/// `Option<Elem>`), associating per-version metadata `M` computed once
/// at first observation.
///
/// Lifecycle: one table per `(key, datatype run)`. The analysis interns
/// every committed read occurrence (phase 1), derives per-version facts
/// — prefix compatibility, element classifications, anomaly events —
/// once per distinct version (phase 2), then fans per-read reports out
/// from the ids (phase 3). Tables are never reused across keys.
#[derive(Debug)]
pub struct VersionTable<K, M> {
    by_value: FxHashMap<K, VersionId>,
    versions: Vec<(K, M)>,
}

impl<K: Eq + Hash + Copy, M> Default for VersionTable<K, M> {
    fn default() -> Self {
        VersionTable {
            by_value: FxHashMap::default(),
            versions: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Copy, M> VersionTable<K, M> {
    /// An empty table.
    pub fn new() -> Self {
        VersionTable::default()
    }

    /// Resolve `value` to its version id, creating a fresh id (with
    /// metadata from `init`) on first observation.
    ///
    /// Cost per call: one hash of the value plus one equality check on
    /// a hit — the single unavoidable pass over the payload. `init`
    /// runs only for novel values.
    pub fn intern_with(&mut self, value: K, init: impl FnOnce(VersionId) -> M) -> VersionId {
        match self.by_value.entry(value) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = VersionId(self.versions.len() as u32);
                e.insert(id);
                let meta = init(id);
                self.versions.push((value, meta));
                id
            }
        }
    }

    /// The interned value of `id`.
    pub fn value(&self, id: VersionId) -> K {
        self.versions[id.0 as usize].0
    }

    /// The metadata of `id`.
    pub fn meta(&self, id: VersionId) -> &M {
        &self.versions[id.0 as usize].1
    }

    /// Mutable metadata of `id` (for lazily computed per-version facts).
    pub fn meta_mut(&mut self, id: VersionId) -> &mut M {
        &mut self.versions[id.0 as usize].1
    }

    /// Number of distinct versions observed.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Has anything been interned?
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// All `(id, value, meta)` triples in first-observation order.
    pub fn iter(&self) -> impl Iterator<Item = (VersionId, K, &M)> + '_ {
        self.versions
            .iter()
            .enumerate()
            .map(|(i, (k, m))| (VersionId(i as u32), *k, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::Elem;

    #[test]
    fn interns_slices_with_dense_first_seen_ids() {
        let a = [Elem(1), Elem(2)];
        let b = [Elem(1)];
        let mut t: VersionTable<&[Elem], usize> = VersionTable::new();
        let mut inits = 0;
        let va = t.intern_with(&a, |_| {
            inits += 1;
            a.len()
        });
        let vb = t.intern_with(&b, |_| {
            inits += 1;
            b.len()
        });
        let va2 = t.intern_with(&a[..], |_| {
            inits += 1;
            usize::MAX
        });
        assert_eq!(va, VersionId(0));
        assert_eq!(vb, VersionId(1));
        assert_eq!(va2, va, "equal content resolves to the same id");
        assert_eq!(inits, 2, "init runs once per distinct value");
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(va), &a[..]);
        assert_eq!(*t.meta(va), 2);
        let ids: Vec<VersionId> = t.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids, vec![VersionId(0), VersionId(1)]);
    }

    #[test]
    fn interns_copy_values() {
        let mut t: VersionTable<Option<Elem>, ()> = VersionTable::new();
        let n = t.intern_with(None, |_| ());
        let s = t.intern_with(Some(Elem(7)), |_| ());
        assert_ne!(n, s);
        assert_eq!(t.intern_with(None, |_| ()), n);
        *t.meta_mut(s) = ();
        assert!(!t.is_empty());
    }
}
