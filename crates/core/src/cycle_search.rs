//! Orchestrates the per-class cycle searches over the IDSG (§6).
//!
//! Strategy, per the paper:
//!
//! 1. find strongly connected components with Tarjan's algorithm;
//! 2. within each component, BFS for a short cycle under each anomaly
//!    class's edge restriction (G0: `ww`; G1c: ≥1 `wr` among `ww`/`wr`;
//!    G-single: exactly one `rw`; G2-item: ≥1 `rw`);
//! 3. optionally re-run with session and real-time edges admitted,
//!    classifying cycles that *need* those edges as `-process` /
//!    `-realtime` variants.
//!
//! Each found cycle is *presented*: for every step we pick a witness class,
//! preferring value dependencies (`ww` > `wr` > `rr`) over `rw`, and those
//! over session/real-time orders, so a cycle is never classified stronger
//! than its evidence.
//!
//! ## Execution
//!
//! All searches run on the frozen [`Csr`] snapshot of the IDSG — no
//! per-anomaly-class subgraph copies. Work fans out in two phases,
//! mirroring the per-key datatype pipeline:
//!
//! 1. one Tarjan SCC pass per *search* (augmentation level × anomaly
//!    class), parallel across searches;
//! 2. one *candidate* search per (search, SCC) work item, parallel across
//!    work items with per-worker [`Scratch`] reuse.
//!
//! Candidate generation is a pure function of the frozen graph, so the
//! fan-out is followed by a strictly sequential merge in (level, class,
//! SCC index, discovery order) — reports are byte-identical whether the
//! fan-out ran on one thread or many. `ELLE_SEQUENTIAL=1` pins the stage
//! (and the datatype pipeline) to the sequential path.

use crate::anomaly::{Anomaly, AnomalyType, CycleStep};
use crate::datatype::Parallelism;
use crate::deps::DepGraph;
use crate::explain::explain_cycle;
use elle_graph::{Csr, CycleSpec, EdgeClass, EdgeMask, Scratch};
use elle_history::{History, TxnId};
use rayon::prelude::*;
use rustc_hash::FxHashSet;

/// Cycle-search configuration.
#[derive(Debug, Clone, Copy)]
pub struct CycleSearchOptions {
    /// Admit per-process (session) edges.
    pub process_edges: bool,
    /// Admit real-time edges.
    pub realtime_edges: bool,
    /// Admit database-timestamp (time-precedes) edges — §5.1's
    /// start-ordered serialization graph.
    pub timestamp_edges: bool,
    /// Cap on reported cycles per anomaly type.
    pub max_per_type: usize,
    /// Run the early-acyclic certificate: one Tarjan pass under the
    /// union of every admitted class first; when the graph is SCC-free
    /// (the common clean-history case) every per-class search is
    /// skipped, and otherwise the per-class passes are restricted to
    /// the cyclic region it found. Disable only to benchmark the
    /// certificate itself.
    pub certificate: bool,
}

impl Default for CycleSearchOptions {
    fn default() -> Self {
        CycleSearchOptions {
            process_edges: true,
            realtime_edges: true,
            timestamp_edges: false,
            max_per_type: 4,
            certificate: true,
        }
    }
}

/// Presentation preference: value dependencies first, then anti-deps, then
/// derived orders. See module docs.
const PREFERENCE: [EdgeClass; 8] = [
    EdgeClass::Ww,
    EdgeClass::Wr,
    EdgeClass::Rr,
    EdgeClass::Version,
    EdgeClass::Rw,
    EdgeClass::Process,
    EdgeClass::Realtime,
    EdgeClass::Timestamp,
];

/// The value-dependency mask (no anti-dependencies).
const INFO_FLOW: EdgeMask =
    EdgeMask(EdgeMask::WW.0 | EdgeMask::WR.0 | EdgeMask::RR.0 | EdgeMask::VERSION.0);

/// One per-class search within an augmentation level: the admitted edge
/// mask plus the shape of cycle to hunt for.
#[derive(Debug, Clone, Copy)]
struct Search {
    /// Edge classes admitted anywhere in the cycle.
    allowed: EdgeMask,
    /// `None` = any cycle (G0 shape); `Some((first, rest))` = first edge
    /// from `first`, remainder from `rest` (G1c / G-single / G2 shapes).
    single: Option<(EdgeMask, EdgeMask)>,
}

/// The (level × class) search list, weakest evidence first so that base
/// anomalies are discovered (and deduplicated) before augmented ones.
/// The order of this list *is* the merge order — it must stay stable for
/// reports to stay deterministic.
fn search_plan(opts: CycleSearchOptions) -> Vec<Search> {
    let mut levels: Vec<EdgeMask> = vec![EdgeMask::NONE];
    let mut extras = EdgeMask::NONE;
    if opts.process_edges {
        extras = extras.union(EdgeMask::PROCESS);
        levels.push(extras);
    }
    if opts.realtime_edges {
        extras = extras.union(EdgeMask::REALTIME);
        levels.push(extras);
    }
    if opts.timestamp_edges {
        extras = extras.union(EdgeMask::TIMESTAMP);
        levels.push(extras);
    }

    let mut plan = Vec::with_capacity(levels.len() * 4);
    for extra in levels {
        // G0: write cycles.
        let g0 = EdgeMask::WW.union(extra);
        plan.push(Search {
            allowed: g0,
            single: None,
        });
        // G1c: information-flow cycles (≥ 1 wr / rr). Repeating the
        // first-edge class is harmless (G1c allows many wr).
        let g1c = INFO_FLOW.union(extra);
        plan.push(Search {
            allowed: g1c,
            single: Some((EdgeMask::WR.union(EdgeMask::RR), g1c)),
        });
        // G-single: exactly one rw among information flow — the remainder
        // must avoid rw.
        let gs = INFO_FLOW.union(EdgeMask::RW).union(extra);
        plan.push(Search {
            allowed: gs,
            single: Some((EdgeMask::RW, EdgeMask(gs.0 & !EdgeMask::RW.0))),
        });
        // G2-item: at least one rw, rw allowed everywhere.
        plan.push(Search {
            allowed: gs,
            single: Some((EdgeMask::RW, gs)),
        });
    }
    plan
}

/// Candidate cycles for one (search, SCC) work item — a pure function of
/// the frozen graph, safe to fan out.
fn candidates(
    csr: &Csr,
    search: Search,
    scc: &[u32],
    max: usize,
    scratch: &mut Scratch,
) -> Vec<Vec<u32>> {
    match search.single {
        None => csr
            .find_cycle(scc, CycleSpec::uniform(search.allowed), scratch)
            .into_iter()
            .collect(),
        Some((first, rest)) => csr.find_cycle_with_single(scc, first, rest, max, scratch),
    }
}

/// Fan-out engages only when the item count can plausibly pay for the
/// thread scope (mirrors the datatype pipeline's key threshold).
const AUTO_PARALLEL_MIN_ITEMS: usize = 4;

fn run_parallel(mode: Parallelism, items: usize) -> bool {
    match mode {
        Parallelism::Sequential => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => {
            !crate::datatype::auto_forced_sequential()
                && items >= AUTO_PARALLEL_MIN_ITEMS
                && rayon::current_num_threads() > 1
        }
    }
}

/// Find and classify all cycle anomalies. Seals and freezes the IDSG
/// internally (hence `&mut`); callers that already hold a built graph
/// and its [`Csr`] snapshot should use [`find_cycle_anomalies_frozen`].
pub fn find_cycle_anomalies(
    deps: &mut DepGraph,
    history: &History,
    opts: CycleSearchOptions,
) -> Vec<Anomaly> {
    let csr = deps.freeze();
    find_cycle_anomalies_frozen(deps, &csr, history, opts)
}

/// Find and classify all cycle anomalies over a pre-frozen IDSG snapshot.
pub fn find_cycle_anomalies_frozen(
    deps: &DepGraph,
    csr: &Csr,
    history: &History,
    opts: CycleSearchOptions,
) -> Vec<Anomaly> {
    find_cycle_anomalies_mode(deps, csr, history, opts, Parallelism::Auto)
}

/// [`find_cycle_anomalies_frozen`] with an explicit scheduling mode — the
/// hook the parallel == sequential property tests drive. Output is
/// byte-identical across modes by construction: candidate generation is
/// pure and the merge is ordered.
pub fn find_cycle_anomalies_mode(
    deps: &DepGraph,
    csr: &Csr,
    history: &History,
    opts: CycleSearchOptions,
    mode: Parallelism,
) -> Vec<Anomaly> {
    let plan = search_plan(opts);

    // ── Phase 0: the early-acyclic certificate. One Tarjan pass under
    //    the union of every admitted class: if the graph is SCC-free
    //    there is nothing any per-class search could find — the common
    //    clean-history case pays for exactly one linear pass. When the
    //    graph *is* cyclic, the union of its cyclic SCCs bounds every
    //    restricted-mask SCC (an m-cycle is a top-cycle), so the
    //    per-class passes below run only over that region. ──────────────
    let mut masks: Vec<EdgeMask> = Vec::new();
    let mask_of: Vec<usize> = plan
        .iter()
        .map(|s| {
            masks
                .iter()
                .position(|m| *m == s.allowed)
                .unwrap_or_else(|| {
                    masks.push(s.allowed);
                    masks.len() - 1
                })
        })
        .collect();
    let top: EdgeMask = masks.iter().fold(EdgeMask::NONE, |a, m| a.union(*m));

    // SCC lists are canonically ordered (by smallest member; components
    // themselves come back sorted), so the merge order — and therefore
    // the report — is a function of the graph's edge *set*, independent
    // of which Tarjan variant produced them. The streaming checker
    // depends on this: it re-runs this function over an incrementally
    // rebuilt graph and must reproduce the batch report byte-for-byte.
    let canonical = |mut sccs: Vec<Vec<u32>>| {
        sccs.sort_by(|a, b| a[0].cmp(&b[0]));
        sccs
    };
    let cert: Option<(Vec<u32>, Vec<Vec<u32>>)> = if opts.certificate {
        let mut scratch = Scratch::new();
        let sccs = canonical(csr.tarjan_scc(top, &mut scratch));
        if sccs.is_empty() {
            // Certified acyclic under every admitted class: skip all
            // per-class passes.
            return Vec::new();
        }
        let mut region: Vec<u32> = sccs.iter().flatten().copied().collect();
        region.sort_unstable();
        Some((region, sccs))
    } else {
        None
    };

    // ── Phase 1: SCCs per *distinct* admitted mask (parallel across
    //    masks). Searches that admit the same classes — G-single and G2
    //    within each level — share one Tarjan pass; the top-level mask
    //    reuses the certificate's. ──────────────────────────────────────
    let sccs_for = |m: EdgeMask, scratch: &mut Scratch| -> Vec<Vec<u32>> {
        match &cert {
            Some((_, cert_sccs)) if m == top => cert_sccs.clone(),
            Some((region, _)) => canonical(csr.tarjan_scc_within(m, region, scratch)),
            None => canonical(csr.tarjan_scc(m, scratch)),
        }
    };
    let sccs_per_mask: Vec<Vec<Vec<u32>>> = if run_parallel(mode, masks.len()) {
        masks
            .par_iter()
            .map_init(Scratch::new, |scratch, m| sccs_for(*m, scratch))
            .collect()
    } else {
        let mut scratch = Scratch::new();
        masks.iter().map(|m| sccs_for(*m, &mut scratch)).collect()
    };

    // ── Phase 2: flatten to (search, SCC) work items in merge order. ──
    let items: Vec<(u32, Vec<u32>)> = plan
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            sccs_per_mask[mask_of[i]]
                .iter()
                .map(move |scc| (i as u32, scc.clone()))
        })
        .collect();

    // ── Phase 3: candidate cycles per work item (parallel fan-out with
    //    per-worker scratch reuse). ─────────────────────────────────────
    let found: Vec<Vec<Vec<u32>>> = if run_parallel(mode, items.len()) {
        items
            .par_iter()
            .map_init(Scratch::new, |scratch, (i, scc)| {
                candidates(csr, plan[*i as usize], scc, opts.max_per_type, scratch)
            })
            .collect()
    } else {
        let mut scratch = Scratch::new();
        items
            .iter()
            .map(|(i, scc)| {
                candidates(csr, plan[*i as usize], scc, opts.max_per_type, &mut scratch)
            })
            .collect()
    };

    // ── Phase 4: strictly ordered sequential merge. ───────────────────
    let mut out: Vec<Anomaly> = Vec::new();
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    for ((i, _), cycles) in items.iter().zip(&found) {
        for cyc in cycles {
            push_classified(
                deps,
                history,
                cyc,
                plan[*i as usize].allowed,
                &mut seen,
                &mut out,
            );
        }
    }

    // Cap per type (keep shortest cycles — they make the best witnesses).
    out.sort_by_key(|a| (a.typ, a.txns.len()));
    let mut counts: rustc_hash::FxHashMap<AnomalyType, usize> = rustc_hash::FxHashMap::default();
    out.retain(|a| {
        let c = counts.entry(a.typ).or_insert(0);
        *c += 1;
        *c <= opts.max_per_type
    });
    out
}

/// Present, classify, deduplicate, and record one cycle.
fn push_classified(
    deps: &DepGraph,
    history: &History,
    cyc: &[u32],
    allowed: EdgeMask,
    seen: &mut FxHashSet<Vec<u32>>,
    out: &mut Vec<Anomaly>,
) {
    let key = canonical(cyc);
    if !seen.insert(key) {
        return;
    }
    let mut steps: Vec<CycleStep> = Vec::with_capacity(cyc.len());
    for i in 0..cyc.len() {
        let from = TxnId(cyc[i]);
        let to = TxnId(cyc[(i + 1) % cyc.len()]);
        let Some(w) = deps.present(from, to, allowed, &PREFERENCE) else {
            // Should not happen: the search follows real edges.
            return;
        };
        steps.push(CycleStep {
            from,
            to,
            class: w.class(),
            witness: w.clone(),
        });
    }
    let Some(typ) = classify(&steps) else {
        // A start-ordered cycle with ≥ 2 anti-dependencies: legal under
        // snapshot isolation (write skew with start edges), and timestamp
        // edges are not value dependencies, so it witnesses nothing.
        return;
    };
    let explanation = explain_cycle(history, &steps);
    out.push(Anomaly {
        typ,
        txns: steps.iter().map(|s| s.from).collect(),
        key: steps.iter().find_map(|s| key_of(&s.witness)),
        steps,
        explanation,
    });
}

fn key_of(w: &crate::anomaly::Witness) -> Option<elle_history::Key> {
    use crate::anomaly::Witness::*;
    match w {
        WwList { key, .. }
        | WrList { key, .. }
        | RwList { key, .. }
        | WwReg { key, .. }
        | WrReg { key, .. }
        | RwReg { key, .. }
        | WrSet { key, .. }
        | RwSet { key, .. }
        | Rr { key } => Some(*key),
        Process { .. } | Realtime { .. } | Timestamp { .. } => None,
    }
}

/// Classify a presented cycle by the edges it *needs*. Returns `None` for
/// cycles that witness no proscribed phenomenon (start-ordered cycles with
/// two or more anti-dependencies — Adya's SI permits those).
fn classify(steps: &[CycleStep]) -> Option<AnomalyType> {
    let mut rw = 0usize;
    let mut wr = 0usize;
    let mut proc = 0usize;
    let mut rt = 0usize;
    let mut ts = 0usize;
    for s in steps {
        match s.class {
            EdgeClass::Rw => rw += 1,
            // An rr edge is the composition rw∘wr — the earlier reader
            // *missed* a write the later reader observed — so it carries
            // exactly one anti-dependency. Counting it as information
            // flow would let two-anti-dependency write-skew cycles
            // masquerade as G-single (and rr-closed cycles as G1c),
            // flagging snapshot-legal histories.
            EdgeClass::Rr => rw += 1,
            EdgeClass::Wr | EdgeClass::Version => wr += 1,
            EdgeClass::Process => proc += 1,
            EdgeClass::Realtime => rt += 1,
            EdgeClass::Timestamp => ts += 1,
            EdgeClass::Ww => {}
        }
    }
    // A cycle that needs a database-timestamp edge lives in the
    // start-ordered serialization graph. SI proscribes such cycles only
    // when they carry at most one anti-dependency (G-SIa / G-SIb).
    if ts > 0 {
        return (rw <= 1).then_some(AnomalyType::GSI);
    }
    let base = if rw == 0 {
        if wr == 0 {
            AnomalyType::G0
        } else {
            AnomalyType::G1c
        }
    } else if rw == 1 {
        AnomalyType::GSingle
    } else {
        AnomalyType::G2Item
    };
    Some(match (rt > 0, proc > 0, base) {
        (true, _, AnomalyType::G0) => AnomalyType::G0Realtime,
        (true, _, AnomalyType::G1c) => AnomalyType::G1cRealtime,
        (true, _, AnomalyType::GSingle) => AnomalyType::GSingleRealtime,
        (true, _, AnomalyType::G2Item) => AnomalyType::G2ItemRealtime,
        (false, true, AnomalyType::G0) => AnomalyType::G0Process,
        (false, true, AnomalyType::G1c) => AnomalyType::G1cProcess,
        (false, true, AnomalyType::GSingle) => AnomalyType::GSingleProcess,
        (false, true, AnomalyType::G2Item) => AnomalyType::G2ItemProcess,
        (false, false, b) => b,
        (_, _, b) => b,
    })
}

/// Rotation-canonical form for deduplication.
fn canonical(cyc: &[u32]) -> Vec<u32> {
    if cyc.is_empty() {
        return vec![];
    }
    let min_pos = cyc
        .iter()
        .enumerate()
        .min_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut v = Vec::with_capacity(cyc.len());
    for i in 0..cyc.len() {
        v.push(cyc[(min_pos + i) % cyc.len()]);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::Witness;
    use elle_history::{Elem, HistoryBuilder, Key, ProcessId};

    fn history(n: usize) -> History {
        let mut b = HistoryBuilder::new();
        for i in 0..n {
            b.txn(i as u32).append(1, i as u64 + 1).commit();
        }
        b.build()
    }

    fn ww(k: u64, p: u64, n: u64) -> Witness {
        Witness::WwList {
            key: Key(k),
            prev: Elem(p),
            next: Elem(n),
        }
    }

    #[test]
    fn classifies_g0() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        d.add(TxnId(1), TxnId(0), ww(1, 2, 1));
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::G0);
        assert_eq!(found[0].steps.len(), 2);
        assert!(found[0].explanation.contains("a contradiction!"));
    }

    #[test]
    fn classifies_g1c() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::G1c);
    }

    #[test]
    fn classifies_g_single() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::RwList {
                key: Key(1),
                read_last: Some(Elem(1)),
                next: Elem(2),
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::GSingle);
    }

    #[test]
    fn classifies_g2_item() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::RwList {
                key: Key(2),
                read_last: None,
                next: Elem(1),
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::G2Item);
    }

    #[test]
    fn prefers_stronger_classification() {
        // Edge carries both ww and rw: cycle should present as G0, the
        // strongest interpretation.
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(TxnId(1), TxnId(0), ww(1, 2, 1));
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found[0].typ, AnomalyType::G0);
    }

    #[test]
    fn realtime_cycle_classified_as_realtime_variant() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::Realtime {
                complete: 0,
                invoke: 1,
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::GSingleRealtime);
    }

    #[test]
    fn process_cycle_classified_as_process_variant() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::Process {
                process: ProcessId(0),
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::GSingleProcess);
    }

    #[test]
    fn disabled_extras_hide_augmented_cycles() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::Realtime {
                complete: 0,
                invoke: 1,
            },
        );
        let opts = CycleSearchOptions {
            realtime_edges: false,
            ..Default::default()
        };
        assert!(find_cycle_anomalies(&mut d, &h, opts).is_empty());
    }

    #[test]
    fn max_per_type_caps_output() {
        // Five disjoint 2-cycles of ww.
        let h = history(10);
        let mut d = DepGraph::with_txns(10);
        for i in 0..5u32 {
            let (a, b) = (2 * i, 2 * i + 1);
            d.add(TxnId(a), TxnId(b), ww(i as u64, 1, 2));
            d.add(TxnId(b), TxnId(a), ww(i as u64, 2, 1));
        }
        let opts = CycleSearchOptions {
            max_per_type: 2,
            ..Default::default()
        };
        let found = find_cycle_anomalies(&mut d, &h, opts);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn rr_edges_carry_an_anti_dependency() {
        // A set-style rr edge closing a wr cycle. The rr edge is the
        // composition rw∘wr (T1 missed a write T0 observed), so the
        // cycle holds one anti-dependency: G-single, not G1c.
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::WrSet {
                key: Key(1),
                elem: Elem(1),
            },
        );
        d.add(TxnId(1), TxnId(0), Witness::Rr { key: Key(1) });
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::GSingle);
    }

    #[test]
    fn realtime_beats_process_in_classification() {
        // A cycle needing both a process and a realtime edge is a
        // realtime violation (process order is real-time within a client).
        let h = history(3);
        let mut d = DepGraph::with_txns(3);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(2),
            Witness::Process {
                process: ProcessId(0),
            },
        );
        d.add(
            TxnId(2),
            TxnId(0),
            Witness::Realtime {
                complete: 1,
                invoke: 2,
            },
        );
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::GSingleRealtime);
    }

    #[test]
    fn three_rw_cycle_is_g2() {
        let h = history(3);
        let mut d = DepGraph::with_txns(3);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
            d.add(
                TxnId(a),
                TxnId(b),
                Witness::RwList {
                    key: Key(a as u64),
                    read_last: None,
                    next: Elem(b as u64),
                },
            );
        }
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].typ, AnomalyType::G2Item);
        assert_eq!(found[0].steps.len(), 3);
    }

    #[test]
    fn disjoint_cycles_all_reported() {
        let h = history(4);
        let mut d = DepGraph::with_txns(4);
        d.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        d.add(TxnId(1), TxnId(0), ww(1, 2, 1));
        d.add(
            TxnId(2),
            TxnId(3),
            Witness::RwList {
                key: Key(2),
                read_last: None,
                next: Elem(1),
            },
        );
        d.add(TxnId(3), TxnId(2), ww(2, 1, 2));
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        let mut types: Vec<AnomalyType> = found.iter().map(|a| a.typ).collect();
        types.sort_unstable();
        assert_eq!(types, vec![AnomalyType::G0, AnomalyType::GSingle]);
    }

    #[test]
    fn anomaly_key_is_taken_from_witnesses() {
        let h = history(2);
        let mut d = DepGraph::with_txns(2);
        d.add(TxnId(0), TxnId(1), ww(7, 1, 2));
        d.add(TxnId(1), TxnId(0), ww(7, 2, 1));
        let found = find_cycle_anomalies(&mut d, &h, CycleSearchOptions::default());
        assert_eq!(found[0].key, Some(Key(7)));
    }

    #[test]
    fn canonical_rotation() {
        assert_eq!(canonical(&[3, 1, 2]), vec![1, 2, 3]);
        assert_eq!(canonical(&[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(canonical(&[2, 3, 1]), vec![1, 2, 3]);
        assert!(canonical(&[]).is_empty());
    }
}
