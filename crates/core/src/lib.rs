//! # elle-core
//!
//! A from-scratch Rust implementation of **Elle**, the black-box
//! transactional isolation checker of Kingsbury & Alvaro (VLDB 2020).
//!
//! Given an observed [`History`](elle_history::History) of client
//! transactions, the [`Checker`] infers an Adya-style dependency graph —
//! the *Inferred Direct Serialization Graph* — and searches it for
//! anomalies:
//!
//! * **cycles**: G0 (write cycles), G1c (circular information flow),
//!   G-single (read skew), G2-item (write skew and friends), each with
//!   `-process` and `-realtime` variants when the cycle needs session or
//!   real-time edges;
//! * **non-cycles**: aborted reads (G1a), intermediate reads (G1b), dirty
//!   updates, lost updates, garbage reads, duplicate writes, internal
//!   inconsistency, incompatible orders, and cyclic version orders.
//!
//! The inference is *sound*: every reported anomaly is present in every
//! Adya history compatible with the observation (Theorem 1 of the paper),
//! provided the workload maintains traceability and recoverability —
//! append-only lists with unique elements, which `elle-gen` produces by
//! construction.
//!
//! ```
//! use elle_core::{CheckOptions, Checker};
//! use elle_history::HistoryBuilder;
//!
//! let mut b = HistoryBuilder::new();
//! b.txn(0).append(1, 1).commit();
//! b.txn(1).read_list(1, [1]).append(1, 2).commit();
//! b.txn(2).read_list(1, [1, 2]).commit();
//!
//! let report = Checker::new(CheckOptions::strict_serializable()).check(&b.build());
//! assert!(report.ok());
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the buffer pool's layout-keyed arena
// (`pool::take_layout` / `put_layout`) is the one audited unsafe island
// in the workspace — raw allocation recycling across element types that
// share a layout — and opts back in locally. Everything else stays
// unsafe-free, and the arena is exercised under Miri and ASan in CI.
#![deny(unsafe_code)]

mod anomaly;
mod checker;
pub mod counter;
mod cycle_search;
pub mod datatype;
mod deps;
pub mod explain;
pub mod gather;
pub mod list_append;
mod models;
mod observation;
mod orders;
pub mod pool;
pub mod reference;
pub mod rw_register;
pub mod set_add;
pub mod versions;

pub use anomaly::{Anomaly, AnomalyType, CycleStep, Witness};
pub use checker::{
    assemble_report, panic_message, CheckOptions, CheckStats, Checker, InternalError, Report,
    StageTimings,
};
pub use cycle_search::{
    find_cycle_anomalies, find_cycle_anomalies_frozen, find_cycle_anomalies_mode,
    CycleSearchOptions,
};
pub use datatype::{DatatypeAnalysis, GatherStats, Parallelism, ProvenanceIndex};
pub use deps::DepGraph;
pub use gather::{GatherBuf, Grouped, KeySlots};
pub use models::{directly_violated, strongest_satisfiable, violated_models, ConsistencyModel};
pub use observation::{DataType, ElemIndex, KeyTypes, WriteRef};
pub use orders::{add_process_edges, add_realtime_edges, add_timestamp_edges};
pub use rw_register::RegisterOptions;
pub use versions::{VersionId, VersionTable};
