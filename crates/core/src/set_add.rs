//! Grow-only set analysis (§3 of the paper).
//!
//! Sets sit between counters and lists: unique adds make versions
//! *recoverable* (each element maps to its adder), but sets are order-free,
//! so write-write dependencies between adders cannot be determined. We
//! infer, per the paper's `T0…T3` example:
//!
//! * `rr`: a read of a proper subset precedes a read of its superset —
//!   compared on *external* states (the value minus the reader's own
//!   adds), since reading back your own add observes no version;
//! * `wr`: the adder of each observed element precedes the reader;
//! * `rw`: a reader that did *not* observe a committed add precedes the
//!   adder (the add's version must follow the version read, because adds
//!   only grow and versions of one key form a chain in clean histories).
//!
//! The shared passes (duplicates, garbage, G1a, internal consistency
//! scaffolding) live in [`crate::datatype`]; this module contributes the
//! subset-chain reasoning that order-free sets admit.
//!
//! Like the list analysis, the per-key pass is version-interned
//! ([`crate::versions`]): each distinct read value is classified
//! element-by-element once, missing-add sets are computed once per
//! distinct value, adjacent same-version reads skip the ⊆-chain test,
//! and per-read anomalies/edges fan out from version ids — byte-identical
//! to the seed per-read pass preserved in [`crate::reference`].

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::datatype::{
    self, internal_pass, AnalysisCtx, DatatypeAnalysis, InternalMismatch, KeySink, ProvenanceScan,
    Vocab,
};
use crate::deps::DepGraph;
use crate::gather::GatherBuf;
use crate::observation::{DataType, ElemIndex};
use crate::versions::{VersionId, VersionTable};
use elle_history::{Elem, History, Key, Mop, ReadValue, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;

/// Result of the set analysis.
#[derive(Debug, Default)]
pub struct SetAnalysis {
    /// Inferred dependency edges.
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
}

/// Run the analysis over the set keys.
pub fn analyze(history: &History, elems: &ElemIndex, set_keys: &[Key]) -> SetAnalysis {
    let out = datatype::run::<SetAdd>(history, elems, set_keys, ());
    SetAnalysis {
        deps: out.deps,
        anomalies: out.anomalies,
    }
}

/// One committed micro-op on a set key, as emitted by the flat gather
/// scan.
#[derive(Debug, Clone, Copy)]
pub enum SetOcc<'h> {
    /// A committed read observing the given value.
    Read(TxnId, &'h BTreeSet<Elem>),
    /// A committed add of one element.
    Add(TxnId, Elem),
}

/// Everything the per-key analysis needs about one set key, folded from
/// the key's occurrence run.
#[derive(Debug, Default)]
pub struct SetKeyData<'h> {
    /// Committed reads, in invocation order.
    pub(crate) reads: Vec<(TxnId, &'h BTreeSet<Elem>)>,
    /// Committed adds, in invocation order.
    pub(crate) adds: Vec<(TxnId, Elem)>,
}

impl<'h> SetKeyData<'h> {
    /// Split one key's occurrence run back into the read and add
    /// sequences the retained per-key gather produced (relative order
    /// within each sequence is the scan order, unchanged).
    pub(crate) fn from_occs(occs: &[SetOcc<'h>]) -> Self {
        let mut data = SetKeyData::default();
        for occ in occs {
            match occ {
                SetOcc::Read(t, s) => data.reads.push((*t, s)),
                SetOcc::Add(t, e) => data.adds.push((*t, *e)),
            }
        }
        data
    }
}

/// The grow-only set [`DatatypeAnalysis`].
pub struct SetAdd;

impl DatatypeAnalysis for SetAdd {
    type Config = ();
    type Aux<'h> = ();
    type Occ<'h> = SetOcc<'h>;

    const DATATYPE: DataType = DataType::Set;
    const VOCAB: Vocab = Vocab {
        object: "set",
        item: "element",
        wrote: "added",
        written: "added",
        wrote_to: "added to",
        rmw: "added to",
        garbage_per_reader: true,
    };

    /// Internal consistency: a read must contain everything the
    /// transaction previously read plus its own adds. The previously
    /// read set is borrowed in place — no per-read cloning.
    fn check_internal<'h>(cx: &AnalysisCtx<'h, ()>, sink: &mut KeySink) {
        #[derive(Default)]
        struct St<'h> {
            base: Option<&'h BTreeSet<Elem>>,
            added: BTreeSet<Elem>,
        }
        internal_pass(cx, sink, |_t, m, key, st: &mut St<'h>| match m {
            Mop::AddToSet { elem, .. } => {
                st.added.insert(*elem);
                None
            }
            Mop::Read {
                value: Some(ReadValue::Set(s)),
                ..
            } => {
                let ok = st.added.is_subset(s) && st.base.is_none_or(|b| b.is_subset(s));
                let mismatch = (!ok).then(|| {
                    let mut exp = st.added.clone();
                    if let Some(b) = st.base {
                        exp.extend(b.iter().copied());
                    }
                    let missing: Vec<String> = exp.difference(s).map(|e| e.to_string()).collect();
                    InternalMismatch {
                        message: format!(
                            "read of set {key} is missing {{{}}} which this transaction \
                             itself added or observed",
                            missing.join(", ")
                        ),
                    }
                });
                st.base = Some(s);
                st.added.clear();
                mismatch
            }
            _ => None,
        });
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, ()>, buf: &mut GatherBuf<SetOcc<'h>>) {
        for t in cx.scoped_txns() {
            if t.status != TxnStatus::Committed {
                continue;
            }
            for m in &t.mops {
                match m {
                    Mop::AddToSet { key, elem } => {
                        if let Some(slot) = cx.keys.slot_of(*key) {
                            buf.push(slot, SetOcc::Add(t.id, *elem));
                        }
                    }
                    Mop::Read {
                        key,
                        value: Some(ReadValue::Set(s)),
                    } => {
                        if let Some(slot) = cx.keys.slot_of(*key) {
                            buf.push(slot, SetOcc::Read(t.id, s));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn observed_elems(occs: &[SetOcc<'_>]) -> Vec<Elem> {
        occs.iter()
            .filter_map(|occ| match occ {
                SetOcc::Read(_, s) => Some(s.iter().copied()),
                SetOcc::Add(..) => None,
            })
            .flatten()
            .collect()
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, ()>,
        _aux: &(),
        key: Key,
        occs: &[SetOcc<'h>],
        poisoned: bool,
        out: &mut KeySink,
    ) {
        let vocab = &Self::VOCAB;
        let SetKeyData { reads, adds } = &SetKeyData::from_occs(occs);

        /// What the one-time classification concluded about one element
        /// of one distinct version.
        enum ElemClass {
            /// No transaction ever added it.
            Garbage,
            /// Added by an aborted transaction (G1a when recoverable).
            Aborted(TxnId),
            /// A trustworthy add — the source of a `wr` edge.
            Ok(TxnId),
        }

        /// Per-distinct-version facts, computed once and fanned out to
        /// every reader of the version.
        #[derive(Default)]
        struct SetVersion {
            /// Elements in set order, classified once.
            elems: Vec<(Elem, ElemClass)>,
            /// Committed adds missing from this value, in add order.
            missing: Vec<(TxnId, Elem)>,
        }

        // ── Intern: one hash + one equality check per read occurrence;
        //    each distinct set value is classified element-by-element
        //    exactly once. ────────────────────────────────────────────────
        let mut table: VersionTable<&'h BTreeSet<Elem>, SetVersion> = VersionTable::new();
        let mut vids: Vec<VersionId> = Vec::with_capacity(reads.len());
        for (_, s) in reads {
            vids.push(table.intern_with(s, |_| SetVersion::default()));
        }
        for idx in 0..table.len() {
            let vid = VersionId(idx as u32);
            let s = table.value(vid);
            let elems = s
                .iter()
                .map(|e| {
                    let class = match cx.elems.writer(key, *e) {
                        None => ElemClass::Garbage,
                        Some(w) if w.status == TxnStatus::Aborted => ElemClass::Aborted(w.txn),
                        Some(w) => ElemClass::Ok(w.txn),
                    };
                    (*e, class)
                })
                .collect();
            let missing = if poisoned {
                Vec::new()
            } else {
                adds.iter()
                    .filter(|(_, e)| !s.contains(e))
                    .copied()
                    .collect()
            };
            *table.meta_mut(vid) = SetVersion { elems, missing };
        }

        // ── Element provenance fan-out: garbage always; G1a and wr only
        //    when the element → adder map is trustworthy (`poisoned`
        //    mirrors the seed's `Provenance::Unusable` gate). ────────────
        let mut scan = ProvenanceScan::new();
        for (i, (reader, _)) in reads.iter().enumerate() {
            for (e, class) in &table.meta(vids[i]).elems {
                match class {
                    ElemClass::Garbage => {
                        scan.garbage_classified(cx, vocab, key, *reader, *e, out);
                    }
                    ElemClass::Aborted(adder) if !poisoned => {
                        scan.g1a_classified(cx, vocab, key, *reader, *e, *adder, out);
                    }
                    ElemClass::Ok(adder) if !poisoned => {
                        out.edge(*adder, *reader, Witness::WrSet { key, elem: *e });
                    }
                    _ => {}
                }
            }
        }

        // ── rw edges: committed adds missing from a read, computed once
        //    per distinct version and fanned out per reader. ─────────────
        if !poisoned {
            for (i, (reader, _)) in reads.iter().enumerate() {
                for (adder, e) in &table.meta(vids[i]).missing {
                    out.edge(*reader, *adder, Witness::RwSet { key, elem: *e });
                }
            }
        }

        // ── rr chain + compatibility: committed reads must form a
        //    ⊆-chain *after discounting each reader's own adds*. A
        //    transaction that reads back its own add observes no external
        //    version — under snapshot isolation the add is visible to its
        //    writer long before anyone else — so own elements say nothing
        //    about where the snapshot lies. Comparing raw values would
        //    order two readers whose external snapshots are identical and
        //    manufacture an `rr` edge no database run obligates. ─────────
        let external = external_views(reads, adds);
        let mut order: Vec<usize> = (0..reads.len()).collect();
        order.sort_by_key(|&i| external[i].len());
        for w in order.windows(2) {
            let (ia, ib) = (w[0], w[1]);
            let (ea, eb) = (&external[ia], &external[ib]);
            if ea == eb {
                // Equal external states — no edge, no anomaly.
                continue;
            }
            let (ta, tb) = (reads[ia].0, reads[ib].0);
            if is_subset_sorted(ea, eb) {
                // Distinct and `ea ⊆ eb` ⇒ strictly smaller.
                out.edge(ta, tb, Witness::Rr { key });
            } else {
                out.anomaly(
                    AnomalyType::IncompatibleOrder,
                    vec![ta, tb],
                    key,
                    format!(
                        "{}\n{}\n  committed reads of set {key} observe incomparable \
                         external states ({ea:?} vs {eb:?}): they cannot lie on one \
                         version order",
                        cx.history.get(ta).to_notation(),
                        cx.history.get(tb).to_notation()
                    ),
                );
            }
        }
    }
}

/// The external state each committed read observed: the read value minus
/// the reader's own adds to this key, as a sorted element list. Elements
/// are unique per adder, so the subtraction is exact. Shared with the
/// seed reference pass so both sides of the differential suite agree.
pub(crate) fn external_views(
    reads: &[(TxnId, &BTreeSet<Elem>)],
    adds: &[(TxnId, Elem)],
) -> Vec<Vec<Elem>> {
    let mut own: FxHashMap<TxnId, Vec<Elem>> = FxHashMap::default();
    for (t, e) in adds {
        own.entry(*t).or_default().push(*e);
    }
    reads
        .iter()
        .map(|(t, s)| match own.get(t) {
            None => s.iter().copied().collect(),
            Some(mine) => s.iter().copied().filter(|e| !mine.contains(e)).collect(),
        })
        .collect()
}

/// `a ⊆ b` for sorted element slices, by a single merge walk.
pub(crate) fn is_subset_sorted(a: &[Elem], b: &[Elem]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeClass;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> SetAnalysis {
        let elems = ElemIndex::build(h);
        let kt = KeyTypes::infer(h);
        analyze(h, &elems, &kt.keys_of(DataType::Set))
    }

    fn types(a: &SetAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn paper_example_t0_t3() {
        // §3: T0 reads {0}; T1 adds 1; T2 adds 2; T3 reads {0,1,2}.
        let mut b = HistoryBuilder::new();
        let seed = b.txn(9).add_to_set(1, 0).commit();
        let t0 = b.txn(0).read_set(1, [0]).commit();
        let t1 = b.txn(1).add_to_set(1, 1).commit();
        let t2 = b.txn(2).add_to_set(1, 2).commit();
        let t3 = b.txn(3).read_set(1, [0, 1, 2]).commit();
        let a = run(&b.build());
        let g = &a.deps;
        // T0 <rr T3.
        assert!(g.edge_mask(t0.0, t3.0).contains(EdgeClass::Rr));
        // T1 <wr T3, T2 <wr T3.
        assert!(g.edge_mask(t1.0, t3.0).contains(EdgeClass::Wr));
        assert!(g.edge_mask(t2.0, t3.0).contains(EdgeClass::Wr));
        // T0 <rw T1, T0 <rw T2.
        assert!(g.edge_mask(t0.0, t1.0).contains(EdgeClass::Rw));
        assert!(g.edge_mask(t0.0, t2.0).contains(EdgeClass::Rw));
        // No ww between T1 and T2 (sets are order-free).
        assert!(!g.edge_mask(t1.0, t2.0).contains(EdgeClass::Ww));
        assert!(!g.edge_mask(t2.0, t1.0).contains(EdgeClass::Ww));
        let _ = seed;
    }

    #[test]
    fn incomparable_reads_flagged() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).commit();
        b.txn(1).add_to_set(1, 2).commit();
        b.txn(2).read_set(1, [1]).commit();
        b.txn(3).read_set(1, [2]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::IncompatibleOrder));
    }

    #[test]
    fn internal_missing_own_add() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).read_set(1, []).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn aborted_add_is_g1a() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).abort();
        b.txn(1).read_set(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1a));
    }

    #[test]
    fn garbage_set_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read_set(1, [42]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
    }

    #[test]
    fn duplicate_adds_poison_inference() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 5).abort();
        b.txn(1).add_to_set(1, 5).commit();
        b.txn(2).read_set(1, [5]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DuplicateWrite), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1a), "{t:?}");
        // No wr/rw edges for the poisoned key.
        assert_eq!(a.deps.edge_count(), 0);
    }

    #[test]
    fn clean_set_history() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).commit();
        b.txn(1)
            .read_set(1, [1])
            .add_to_set(1, 2)
            .read_set(1, [1, 2])
            .commit();
        b.txn(2).read_set(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }
}
