//! Grow-only set analysis (§3 of the paper).
//!
//! Sets sit between counters and lists: unique adds make versions
//! *recoverable* (each element maps to its adder), but sets are order-free,
//! so write-write dependencies between adders cannot be determined. We
//! infer, per the paper's `T0…T3` example:
//!
//! * `rr`: a read of a proper subset precedes a read of its superset;
//! * `wr`: the adder of each observed element precedes the reader;
//! * `rw`: a reader that did *not* observe a committed add precedes the
//!   adder (the add's version must follow the version read, because adds
//!   only grow and versions of one key form a chain in clean histories).

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::deps::DepGraph;
use crate::observation::ElemIndex;
use elle_history::{Elem, History, Key, Mop, ReadValue, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// Result of the set analysis.
#[derive(Debug, Default)]
pub struct SetAnalysis {
    /// Inferred dependency edges.
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
}

/// Run the analysis over the set keys.
pub fn analyze(history: &History, elems: &ElemIndex, set_keys: &[Key]) -> SetAnalysis {
    let mut out = SetAnalysis {
        deps: DepGraph::with_txns(history.len()),
        ..Default::default()
    };
    let key_set: FxHashSet<Key> = set_keys.iter().copied().collect();

    check_internal(history, &key_set, &mut out);

    // Duplicate adds poison recoverability: the element → adder map is no
    // longer a bijection, so provenance-based inferences are skipped.
    let mut poisoned: FxHashSet<Key> = FxHashSet::default();
    for (k, e, txns) in &elems.duplicates {
        if !key_set.contains(k) {
            continue;
        }
        poisoned.insert(*k);
        out.anomalies.push(Anomaly {
            typ: AnomalyType::DuplicateWrite,
            txns: txns.clone(),
            key: Some(*k),
            steps: vec![],
            explanation: format!(
                "element {e} was added to set {k} by more than one transaction; \
                 versions of {k} are not recoverable"
            ),
        });
    }

    // Committed reads per key, and committed adders per key.
    let mut reads_by_key: FxHashMap<Key, Vec<(TxnId, &BTreeSet<Elem>)>> = FxHashMap::default();
    let mut ok_adds: FxHashMap<Key, Vec<(TxnId, Elem)>> = FxHashMap::default();
    for t in history.txns() {
        for m in &t.mops {
            match m {
                Mop::AddToSet { key, elem }
                    if key_set.contains(key) && t.status == TxnStatus::Committed =>
                {
                    ok_adds.entry(*key).or_default().push((t.id, *elem));
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Set(s)),
                } if key_set.contains(key) && t.status == TxnStatus::Committed => {
                    reads_by_key.entry(*key).or_default().push((t.id, s));
                }
                _ => {}
            }
        }
    }

    let mut keys: Vec<Key> = reads_by_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let reads = &reads_by_key[&key];
        let key_poisoned = poisoned.contains(&key);

        // Element provenance: garbage always; G1a / wr only when the
        // element → adder map is trustworthy.
        for (reader, s) in reads {
            for e in s.iter() {
                match elems.writer(key, *e) {
                    None => {
                        out.anomalies.push(Anomaly {
                            typ: AnomalyType::GarbageRead,
                            txns: vec![*reader],
                            key: Some(key),
                            steps: vec![],
                            explanation: format!(
                                "{}\n  observed element {e} of set {key}, which no \
                                 transaction ever added",
                                history.get(*reader).to_notation()
                            ),
                        });
                    }
                    Some(_) if key_poisoned => {}
                    Some(w) => {
                        if w.status == TxnStatus::Aborted {
                            out.anomalies.push(Anomaly {
                                typ: AnomalyType::G1a,
                                txns: vec![*reader, w.txn],
                                key: Some(key),
                                steps: vec![],
                                explanation: format!(
                                    "{}\n  observed element {e} of set {key}, added by \
                                     aborted transaction {}",
                                    history.get(*reader).to_notation(),
                                    w.txn
                                ),
                            });
                        } else {
                            out.deps.add(w.txn, *reader, Witness::WrSet { key, elem: *e });
                        }
                    }
                }
            }
        }

        // rw edges: committed adds missing from a read.
        if let Some(adds) = ok_adds.get(&key).filter(|_| !key_poisoned) {
            for (reader, s) in reads {
                for (adder, e) in adds {
                    if !s.contains(e) {
                        out.deps.add(*reader, *adder, Witness::RwSet { key, elem: *e });
                    }
                }
            }
        }

        // rr chain + compatibility: committed reads must form a ⊆-chain.
        let mut sorted: Vec<&(TxnId, &BTreeSet<Elem>)> = reads.iter().collect();
        sorted.sort_by_key(|(_, s)| s.len());
        for w in sorted.windows(2) {
            let ((ta, sa), (tb, sb)) = (w[0], w[1]);
            if sa.is_subset(sb) {
                if sa.len() < sb.len() {
                    out.deps.add(*ta, *tb, Witness::Rr { key });
                }
            } else {
                out.anomalies.push(Anomaly {
                    typ: AnomalyType::IncompatibleOrder,
                    txns: vec![*ta, *tb],
                    key: Some(key),
                    steps: vec![],
                    explanation: format!(
                        "{}\n{}\n  committed reads of set {key} are incomparable \
                         ({sa:?} vs {sb:?}): they cannot lie on one version order",
                        history.get(*ta).to_notation(),
                        history.get(*tb).to_notation()
                    ),
                });
            }
        }
    }
    out
}

/// Internal consistency: a read must contain everything the transaction
/// previously read plus its own adds.
fn check_internal(history: &History, key_set: &FxHashSet<Key>, out: &mut SetAnalysis) {
    for t in history.txns() {
        let mut expected: FxHashMap<Key, BTreeSet<Elem>> = FxHashMap::default();
        for m in &t.mops {
            match m {
                Mop::AddToSet { key, elem } if key_set.contains(key) => {
                    expected.entry(*key).or_default().insert(*elem);
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Set(s)),
                } if key_set.contains(key) => {
                    let exp = expected.entry(*key).or_default();
                    if !exp.is_subset(s) {
                        let missing: Vec<String> =
                            exp.difference(s).map(|e| e.to_string()).collect();
                        out.anomalies.push(Anomaly {
                            typ: AnomalyType::Internal,
                            txns: vec![t.id],
                            key: Some(*key),
                            steps: vec![],
                            explanation: format!(
                                "{}\n  read of set {key} is missing {{{}}} which this \
                                 transaction itself added or observed",
                                t.to_notation(),
                                missing.join(", ")
                            ),
                        });
                    }
                    *exp = s.clone();
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeClass;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> SetAnalysis {
        let elems = ElemIndex::build(h);
        let kt = KeyTypes::infer(h);
        analyze(h, &elems, &kt.keys_of(DataType::Set))
    }

    fn types(a: &SetAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn paper_example_t0_t3() {
        // §3: T0 reads {0}; T1 adds 1; T2 adds 2; T3 reads {0,1,2}.
        let mut b = HistoryBuilder::new();
        let seed = b.txn(9).add_to_set(1, 0).commit();
        let t0 = b.txn(0).read_set(1, [0]).commit();
        let t1 = b.txn(1).add_to_set(1, 1).commit();
        let t2 = b.txn(2).add_to_set(1, 2).commit();
        let t3 = b.txn(3).read_set(1, [0, 1, 2]).commit();
        let a = run(&b.build());
        let g = &a.deps.graph;
        // T0 <rr T3.
        assert!(g.edge_mask(t0.0, t3.0).contains(EdgeClass::Rr));
        // T1 <wr T3, T2 <wr T3.
        assert!(g.edge_mask(t1.0, t3.0).contains(EdgeClass::Wr));
        assert!(g.edge_mask(t2.0, t3.0).contains(EdgeClass::Wr));
        // T0 <rw T1, T0 <rw T2.
        assert!(g.edge_mask(t0.0, t1.0).contains(EdgeClass::Rw));
        assert!(g.edge_mask(t0.0, t2.0).contains(EdgeClass::Rw));
        // No ww between T1 and T2 (sets are order-free).
        assert!(!g.edge_mask(t1.0, t2.0).contains(EdgeClass::Ww));
        assert!(!g.edge_mask(t2.0, t1.0).contains(EdgeClass::Ww));
        let _ = seed;
    }

    #[test]
    fn incomparable_reads_flagged() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).commit();
        b.txn(1).add_to_set(1, 2).commit();
        b.txn(2).read_set(1, [1]).commit();
        b.txn(3).read_set(1, [2]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::IncompatibleOrder));
    }

    #[test]
    fn internal_missing_own_add() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).read_set(1, []).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn aborted_add_is_g1a() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).abort();
        b.txn(1).read_set(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1a));
    }

    #[test]
    fn garbage_set_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read_set(1, [42]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
    }

    #[test]
    fn duplicate_adds_poison_inference() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 5).abort();
        b.txn(1).add_to_set(1, 5).commit();
        b.txn(2).read_set(1, [5]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DuplicateWrite), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1a), "{t:?}");
        // No wr/rw edges for the poisoned key.
        assert_eq!(a.deps.graph.edge_count(), 0);
    }

    #[test]
    fn clean_set_history() {
        let mut b = HistoryBuilder::new();
        b.txn(0).add_to_set(1, 1).commit();
        b.txn(1).read_set(1, [1]).add_to_set(1, 2).read_set(1, [1, 2]).commit();
        b.txn(2).read_set(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }
}
