//! The **seed per-read pipeline**, preserved as a differential-testing
//! reference for the version-interned datatype passes.
//!
//! Each `analyze_key` here is a faithful copy of the pre-interning
//! implementation: every element-level pass rescans each read's full
//! value (O(n·m) per key for `n` writes and `m` reads). The production
//! modules ([`crate::list_append`], [`crate::set_add`],
//! [`crate::rw_register`]) now run those passes once per *distinct
//! version* and fan results out from [`crate::versions::VersionId`]s;
//! `crates/core/tests/version_props.rs` asserts the two pipelines are
//! byte-for-byte identical on arbitrary histories, and
//! [`crate::Checker::check_seed_reference`] runs a whole check through
//! this reference for end-to-end report comparison.
//!
//! One deliberate deviation from the seed, applied on **both** sides:
//! list lost-update groups of equal read length are ordered by value
//! content instead of hash-map iteration order, so tie order is
//! well-defined (the seed's tie order depended on `FxHashMap`
//! internals and was arbitrary, though deterministic per build).
//!
//! This module is `#[doc(hidden)]`-grade plumbing kept `pub` so the
//! integration-test crate can drive it; it is not part of the
//! supported API.

use crate::anomaly::{AnomalyType, Witness};
use crate::datatype::report_lost_updates;
use crate::datatype::{AnalysisCtx, DatatypeAnalysis, KeySink, Provenance, ProvenanceScan};
use crate::gather::GatherBuf;
use crate::list_append::{show_list, ListAppend, ReadOcc};
use crate::observation::DataType;
use crate::rw_register::{
    first_last_versions, show, RegKeyData, RegOcc, RegisterOptions, RwRegister, VSource, Version,
};
use crate::set_add::{SetAdd, SetKeyData, SetOcc};
use elle_graph::{interval_order_reduction, tarjan_scc, DiGraph, EdgeClass, EdgeMask, Interval};
use elle_history::{Elem, Key, Mop, ReadValue, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};

/// The seed list-append pass: per-read element scans throughout.
pub struct ListAppendRef;

impl DatatypeAnalysis for ListAppendRef {
    type Config = ();
    type Aux<'h> = <ListAppend as DatatypeAnalysis>::Aux<'h>;
    type Occ<'h> = ReadOcc<'h>;

    const DATATYPE: DataType = DataType::List;
    const VOCAB: crate::datatype::Vocab = ListAppend::VOCAB;

    fn check_internal(cx: &AnalysisCtx<'_, ()>, sink: &mut KeySink) {
        ListAppend::check_internal(cx, sink);
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, ()>, buf: &mut GatherBuf<ReadOcc<'h>>) -> Self::Aux<'h> {
        ListAppend::gather(cx, buf)
    }

    fn observed_elems(occs: &[ReadOcc<'_>]) -> Vec<Elem> {
        ListAppend::observed_elems(occs)
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, ()>,
        appends_of: &Self::Aux<'h>,
        key: Key,
        occs: &[ReadOcc<'h>],
        mut poisoned: bool,
        out: &mut KeySink,
    ) {
        let vocab = &Self::VOCAB;
        let mut scan = ProvenanceScan::new();

        // ── Pass A (always valid): duplicates within reads and garbage
        //    elements. Both poison recoverability for this key. ─────────
        for occ in occs {
            let mut seen: FxHashSet<Elem> = FxHashSet::default();
            for e in occ.value {
                if !seen.insert(*e) {
                    poisoned = true;
                    out.anomaly(
                        AnomalyType::DuplicateWrite,
                        vec![occ.txn.id],
                        key,
                        format!(
                            "{}\n  the read of key {key} contains element {e} more than once",
                            occ.txn.to_notation()
                        ),
                    );
                    break;
                }
            }
            for e in occ.value {
                if scan.garbage(cx, vocab, key, occ.txn.id, *e, out) {
                    poisoned = true;
                }
            }
        }

        // ── Pass B: provenance checks (G1a, G1b, dirty updates). These
        //    rely on recoverability — the element → writer map must be a
        //    bijection — so they are skipped for poisoned keys (§4.2.3). ─
        let mut dirty_reported: FxHashSet<Elem> = FxHashSet::default();
        let mut g1b_reported: FxHashSet<(TxnId, Elem)> = FxHashSet::default();

        for occ in occs.iter().filter(|_| !poisoned) {
            let mut saw_aborted: Option<(usize, Elem, TxnId)> = None;
            for (j, e) in occ.value.iter().enumerate() {
                // G1a (and garbage dedup) via the shared scan.
                let w = match scan.provenance(cx, vocab, key, occ.txn.id, *e, false, out) {
                    Provenance::Ok(w) | Provenance::Aborted(w) => w,
                    Provenance::Garbage | Provenance::Unusable => continue,
                };

                // Dirty update: committed data layered over an aborted write.
                match (w.status, saw_aborted) {
                    (TxnStatus::Aborted, None) => saw_aborted = Some((j, *e, w.txn)),
                    (TxnStatus::Committed | TxnStatus::Indeterminate, Some((_, ae, awriter))) => {
                        if dirty_reported.insert(ae) {
                            out.anomaly(
                                AnomalyType::DirtyUpdate,
                                vec![awriter, w.txn],
                                key,
                                format!(
                                    "the trace of key {key} contains element {ae} from aborted \
                                     transaction {awriter}, later built upon by {}'s append of {e}",
                                    w.txn
                                ),
                            );
                        }
                        saw_aborted = None;
                    }
                    _ => {}
                }

                // G1b: an intermediate write must be immediately followed by
                // the same writer's next append, else the read exposed an
                // intermediate version.
                if w.txn != occ.txn.id && !w.final_for_key {
                    let writer_appends = &appends_of[&(w.txn, key)].elems;
                    let pos = writer_appends
                        .iter()
                        .position(|x| x == e)
                        .expect("writer index consistent");
                    let expected_next = writer_appends.get(pos + 1);
                    let actual_next = occ.value.get(j + 1);
                    if expected_next != actual_next && g1b_reported.insert((occ.txn.id, *e)) {
                        out.anomaly(
                            AnomalyType::G1b,
                            vec![occ.txn.id, w.txn],
                            key,
                            format!(
                                "{}\n  observed element {e} of key {key}, an intermediate \
                                 append of {} (its next append {} is not the following element)",
                                occ.txn.to_notation(),
                                cx.history.get(w.txn).to_notation(),
                                expected_next.map_or("<none>".to_string(), |e| e.to_string()),
                            ),
                        );
                    }
                }
            }
        }

        // ── Version order: the longest committed read is x_f. ─────────
        let longest = occs
            .iter()
            .max_by_key(|o| o.value.len())
            .expect("at least one read per key in map");
        let longest_v = longest.value;

        // Prefix compatibility of every other read.
        let mut compatible: Vec<&ReadOcc<'_>> = Vec::with_capacity(occs.len());
        for occ in occs {
            if occ.value.len() <= longest_v.len() && occ.value[..] == longest_v[..occ.value.len()] {
                compatible.push(occ);
            } else {
                out.anomaly(
                    AnomalyType::IncompatibleOrder,
                    vec![occ.txn.id, longest.txn.id],
                    key,
                    format!(
                        "{}\n{}\n  both committed reads of key {key} cannot lie on one \
                         version order: {} is not a prefix of {}",
                        occ.txn.to_notation(),
                        longest.txn.to_notation(),
                        show_list(occ.value),
                        show_list(longest_v)
                    ),
                );
            }
        }

        // ── Lost updates: distinct committed txns that read the same
        //    version of `key` and then append to it. ────────────────────
        let mut rmw_groups: FxHashMap<&[Elem], Vec<TxnId>> = FxHashMap::default();
        for occ in occs {
            // First read of the key in this txn, before any own append.
            let first_touch = occ
                .txn
                .mops
                .iter()
                .position(|m| m.key() == key)
                .expect("occ touches key");
            if first_touch != occ.mop {
                continue;
            }
            let appends_after = occ.txn.mops[occ.mop..]
                .iter()
                .any(|m| matches!(m, Mop::Append { key: k, .. } if *k == key));
            if appends_after {
                let group = rmw_groups.entry(occ.value).or_default();
                if !group.contains(&occ.txn.id) {
                    group.push(occ.txn.id);
                }
            }
        }
        let mut groups: Vec<(&[Elem], Vec<TxnId>)> = rmw_groups
            .into_iter()
            .filter(|(_, g)| g.len() >= 2)
            .collect();
        groups.sort_by(|(a, _), (b, _)| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        for (_, g) in &mut groups {
            g.sort_unstable();
        }
        report_lost_updates(vocab, key, groups, |v| show_list(v), out);

        if poisoned {
            // Recoverability is broken for this key: skip dependency edges.
            return;
        }
        out.version_order = Some(longest_v.to_vec());

        // ── ww edges: consecutive elements of the version order. ──────
        for pair in longest_v.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (wa, wb) = (
                cx.elems.writer(key, a).expect("no garbage in clean key"),
                cx.elems.writer(key, b).expect("no garbage in clean key"),
            );
            out.edge(
                wa.txn,
                wb.txn,
                Witness::WwList {
                    key,
                    prev: a,
                    next: b,
                },
            );
        }

        // ── wr and rw edges per compatible committed read. ─────────────
        for occ in &compatible {
            let reader = occ.txn.id;
            // Strip trailing own appends: the externally-visible prefix.
            let own: FxHashSet<Elem> = appends_of
                .get(&(reader, key))
                .map(|v| v.elems.iter().copied().collect())
                .unwrap_or_default();
            let mut ext_len = occ.value.len();
            while ext_len > 0 && own.contains(&occ.value[ext_len - 1]) {
                ext_len -= 1;
            }
            let ext = &occ.value[..ext_len];

            // wr: the version `ext` was produced by the append of its last
            // element.
            if let Some(last) = ext.last() {
                let w = cx.elems.writer(key, *last).expect("clean key");
                out.edge(w.txn, reader, Witness::WrList { key, elem: *last });
            }

            // rw: the version directly after the one this read observed.
            if occ.value.len() < longest_v.len() {
                let next = longest_v[occ.value.len()];
                let w = cx.elems.writer(key, next).expect("clean key");
                out.edge(
                    reader,
                    w.txn,
                    Witness::RwList {
                        key,
                        read_last: occ.value.last().copied(),
                        next,
                    },
                );
            }
        }
    }
}

/// The seed grow-only-set pass: per-read element scans throughout.
pub struct SetAddRef;

impl DatatypeAnalysis for SetAddRef {
    type Config = ();
    type Aux<'h> = ();
    type Occ<'h> = SetOcc<'h>;

    const DATATYPE: DataType = DataType::Set;
    const VOCAB: crate::datatype::Vocab = SetAdd::VOCAB;

    fn check_internal(cx: &AnalysisCtx<'_, ()>, sink: &mut KeySink) {
        SetAdd::check_internal(cx, sink);
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, ()>, buf: &mut GatherBuf<SetOcc<'h>>) {
        SetAdd::gather(cx, buf);
    }

    fn observed_elems(occs: &[SetOcc<'_>]) -> Vec<Elem> {
        SetAdd::observed_elems(occs)
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, ()>,
        _aux: &(),
        key: Key,
        occs: &[SetOcc<'h>],
        poisoned: bool,
        out: &mut KeySink,
    ) {
        let vocab = &Self::VOCAB;
        let SetKeyData { reads, adds } = &SetKeyData::from_occs(occs);

        // ── Element provenance (shared scan): garbage always; G1a and
        //    wr only when the element → adder map is trustworthy. ───────
        let mut scan = ProvenanceScan::new();
        for (reader, s) in reads {
            for e in s.iter() {
                if let Provenance::Ok(w) =
                    scan.provenance(cx, vocab, key, *reader, *e, poisoned, out)
                {
                    out.edge(w.txn, *reader, Witness::WrSet { key, elem: *e });
                }
            }
        }

        // ── rw edges: committed adds missing from a read. ──────────────
        if !poisoned {
            for (reader, s) in reads {
                for (adder, e) in adds {
                    if !s.contains(e) {
                        out.edge(*reader, *adder, Witness::RwSet { key, elem: *e });
                    }
                }
            }
        }

        // ── rr chain + compatibility: committed reads must form a
        //    ⊆-chain after discounting each reader's own adds (a read-back
        //    of your own add observes no external version). ──────────────
        let external = crate::set_add::external_views(reads, adds);
        let mut order: Vec<usize> = (0..reads.len()).collect();
        order.sort_by_key(|&i| external[i].len());
        for w in order.windows(2) {
            let (ia, ib) = (w[0], w[1]);
            let (ea, eb) = (&external[ia], &external[ib]);
            if ea == eb {
                continue;
            }
            let (ta, tb) = (reads[ia].0, reads[ib].0);
            if crate::set_add::is_subset_sorted(ea, eb) {
                out.edge(ta, tb, Witness::Rr { key });
            } else {
                out.anomaly(
                    AnomalyType::IncompatibleOrder,
                    vec![ta, tb],
                    key,
                    format!(
                        "{}\n{}\n  committed reads of set {key} observe incomparable \
                         external states ({ea:?} vs {eb:?}): they cannot lie on one \
                         version order",
                        cx.history.get(ta).to_notation(),
                        cx.history.get(tb).to_notation()
                    ),
                );
            }
        }
    }
}

/// The seed read-write-register pass, with its ad-hoc version
/// interning closure.
pub struct RwRegisterRef;

impl DatatypeAnalysis for RwRegisterRef {
    type Config = RegisterOptions;
    type Aux<'h> = ();
    type Occ<'h> = RegOcc<'h>;

    const DATATYPE: DataType = DataType::Register;
    const VOCAB: crate::datatype::Vocab = RwRegister::VOCAB;

    fn check_internal(cx: &AnalysisCtx<'_, RegisterOptions>, sink: &mut KeySink) {
        RwRegister::check_internal(cx, sink);
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, RegisterOptions>, buf: &mut GatherBuf<RegOcc<'h>>) {
        RwRegister::gather(cx, buf);
    }

    fn observed_elems(occs: &[RegOcc<'_>]) -> Vec<Elem> {
        RwRegister::observed_elems(occs)
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, RegisterOptions>,
        _aux: &(),
        key: Key,
        occs: &[RegOcc<'h>],
        poisoned: bool,
        out: &mut KeySink,
    ) {
        let opts = cx.config;
        let vocab = &Self::VOCAB;
        let RegKeyData {
            readers_of,
            versions,
            touching,
        } = &RegKeyData::from_occs(occs);
        if versions.is_empty() {
            return;
        }

        // ── Per-read provenance (shared scan): garbage always; G1a and
        //    G1b only when the key is recoverable. ──────────────────────
        let mut scan = ProvenanceScan::new();
        for (v, readers) in readers_of {
            let Some(e) = v else { continue };
            for r in readers {
                let w = match scan.provenance(cx, vocab, key, *r, *e, poisoned, out) {
                    Provenance::Ok(w) | Provenance::Aborted(w) => w,
                    Provenance::Garbage | Provenance::Unusable => continue,
                };
                // G1b: the register counterpart needs no adjacency test —
                // any observed non-final write is an intermediate read.
                if !w.final_for_key && w.txn != *r {
                    out.anomaly(
                        AnomalyType::G1b,
                        vec![*r, w.txn],
                        key,
                        format!(
                            "{}\n  read value {e} of register {key}, an intermediate \
                             write of {}",
                            cx.history.get(*r).to_notation(),
                            w.txn
                        ),
                    );
                }
            }
        }

        // ── Lost updates: same version read, then written, by ≥ 2 txns. ─
        let mut rmw: FxHashMap<Version, Vec<TxnId>> = FxHashMap::default();
        for t in touching {
            let mut first_read: Option<(usize, Version)> = None;
            let mut writes_after = false;
            for (i, m) in t.mops.iter().enumerate() {
                match m {
                    Mop::Read {
                        key: k,
                        value: Some(ReadValue::Register(v)),
                    } if *k == key && first_read.is_none() => first_read = Some((i, *v)),
                    Mop::Write { key: k, .. } if *k == key => {
                        if first_read.is_some() {
                            writes_after = true;
                        } else {
                            // Blind write before reading: not an RMW pattern.
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let (Some((_, v)), true) = (first_read, writes_after) {
                let g = rmw.entry(v).or_default();
                if !g.contains(&t.id) {
                    g.push(t.id);
                }
            }
        }
        let mut groups: Vec<(Version, Vec<TxnId>)> =
            rmw.into_iter().filter(|(_, g)| g.len() >= 2).collect();
        groups.sort_unstable_by_key(|(v, _)| *v);
        for (_, g) in &mut groups {
            g.sort_unstable();
        }
        report_lost_updates(vocab, key, groups, |v| show(*v), out);

        if poisoned {
            return;
        }

        // ── Version order edges (seed ad-hoc interning). ───────────────
        let mut vids: FxHashMap<Version, u32> = FxHashMap::default();
        let mut vlist: Vec<Version> = Vec::new();
        let id_of = |v: Version, vids: &mut FxHashMap<Version, u32>, vlist: &mut Vec<Version>| {
            *vids.entry(v).or_insert_with(|| {
                vlist.push(v);
                (vlist.len() - 1) as u32
            })
        };
        let mut vedges: Vec<(u32, u32, VSource)> = Vec::new();

        if opts.initial_state {
            for v in versions {
                if v.is_some() {
                    let a = id_of(None, &mut vids, &mut vlist);
                    let b = id_of(*v, &mut vids, &mut vlist);
                    vedges.push((a, b, VSource::Initial));
                }
            }
        }

        if opts.writes_follow_reads {
            for t in touching {
                let mut cur: Option<Version> = None;
                for m in &t.mops {
                    match m {
                        Mop::Write { key: k, elem } if *k == key => {
                            if let Some(prev) = cur {
                                if prev != Some(*elem) {
                                    let a = id_of(prev, &mut vids, &mut vlist);
                                    let b = id_of(Some(*elem), &mut vids, &mut vlist);
                                    vedges.push((a, b, VSource::Chain));
                                }
                            }
                            cur = Some(Some(*elem));
                        }
                        Mop::Read {
                            key: k,
                            value: Some(ReadValue::Register(v)),
                        } if *k == key => {
                            cur = Some(*v);
                        }
                        _ => {}
                    }
                }
            }
        }

        if opts.sequential_keys {
            let mut last_of: FxHashMap<elle_history::ProcessId, Version> = FxHashMap::default();
            for t in touching {
                if let Some((first, last)) = first_last_versions(t, key) {
                    if let Some(prev_last) = last_of.get(&t.process) {
                        if *prev_last != first {
                            let a = id_of(*prev_last, &mut vids, &mut vlist);
                            let b = id_of(first, &mut vids, &mut vlist);
                            vedges.push((a, b, VSource::Process));
                        }
                    }
                    last_of.insert(t.process, last);
                }
            }
        }

        if opts.linearizable_keys {
            let intervals: Vec<Interval> = touching
                .iter()
                .map(|t| Interval {
                    invoke: t.invoke_index,
                    complete: t.complete_index,
                })
                .collect();
            for (a, b) in interval_order_reduction(&intervals) {
                let (ta, tb) = (touching[a as usize], touching[b as usize]);
                let (_, last_a) = first_last_versions(ta, key).expect("touching");
                let (first_b, _) = first_last_versions(tb, key).expect("touching");
                if last_a != first_b {
                    let x = id_of(last_a, &mut vids, &mut vlist);
                    let y = id_of(first_b, &mut vids, &mut vlist);
                    vedges.push((x, y, VSource::Realtime));
                }
            }
        }

        // ── Cycle check on the version graph. ──────────────────────────
        let mut vg = DiGraph::with_vertices(vlist.len());
        for &(a, b, _) in &vedges {
            vg.add_edge(a, b, EdgeClass::Version);
        }
        let sccs = tarjan_scc(&vg, EdgeMask::VERSION);
        if !sccs.is_empty() {
            let cyc_versions: Vec<String> =
                sccs[0].iter().map(|&i| show(vlist[i as usize])).collect();
            let sources: FxHashSet<&'static str> = vedges
                .iter()
                .filter(|(a, b, _)| sccs[0].contains(a) && sccs[0].contains(b))
                .map(|(_, _, s)| s.describe())
                .collect();
            let mut txns: Vec<TxnId> = sccs[0]
                .iter()
                .filter_map(|&i| {
                    vlist[i as usize]
                        .and_then(|e| cx.elems.writer(key, e))
                        .map(|w| w.txn)
                })
                .collect();
            txns.sort_unstable();
            txns.dedup();
            out.cyclic = true;
            out.anomaly(
                AnomalyType::CyclicVersionOrder,
                txns,
                key,
                format!(
                    "the inferred version order of register {key} is cyclic over values \
                     {{{}}} (sources: {}); discarding this key's dependencies",
                    cyc_versions.join(", "),
                    {
                        let mut s: Vec<&str> = sources.into_iter().collect();
                        s.sort_unstable();
                        s.join(", ")
                    }
                ),
            );
            return;
        }

        // ── wr edges from recoverable reads. ───────────────────────────
        for (v, readers) in readers_of {
            let Some(e) = v else { continue };
            let Some(w) = cx.elems.writer(key, *e) else {
                continue;
            };
            if w.status == TxnStatus::Aborted {
                continue;
            }
            for r in readers {
                out.edge(w.txn, *r, Witness::WrReg { key, elem: *e });
            }
        }

        // ── ww / rw edges from version-order edges. ────────────────────
        let mut seen_pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &(a, b, _) in &vedges {
            if !seen_pairs.insert((a, b)) {
                continue;
            }
            let (va, vb) = (vlist[a as usize], vlist[b as usize]);
            let Some(eb) = vb else { continue };
            let Some(wb) = cx.elems.writer(key, eb) else {
                continue;
            };
            if wb.status == TxnStatus::Aborted {
                continue;
            }
            if let Some(ea) = va {
                if let Some(wa) = cx.elems.writer(key, ea) {
                    if wa.status != TxnStatus::Aborted {
                        out.edge(
                            wa.txn,
                            wb.txn,
                            Witness::WwReg {
                                key,
                                prev: va,
                                next: eb,
                            },
                        );
                    }
                }
            }
            if let Some(readers) = readers_of.get(&va) {
                for r in readers {
                    out.edge(
                        *r,
                        wb.txn,
                        Witness::RwReg {
                            key,
                            read: va,
                            next: eb,
                        },
                    );
                }
            }
        }
    }
}
