//! Read-write register analysis (§5 of the paper, the Dgraph mode of §7.4).
//!
//! Blind register writes "destroy history": a written version carries no
//! information about its predecessor, so traceability is lost. We instead
//! infer a *partial* version order per key from small, independently
//! toggleable assumptions:
//!
//! * **initial state**: nil precedes every other version (`xinit` is never
//!   reachable via any write);
//! * **within-transaction chains**: reads-then-writes and write-then-write
//!   sequences inside one committed transaction order their versions
//!   (writes-follow-reads);
//! * **sequential keys** (per-process): a process's later transactions see
//!   versions at least as new as its earlier ones;
//! * **linearizable keys** (real-time): if T1 completed before T2 began,
//!   T1's final version of a key precedes T2's first.
//!
//! Contradictory orders produce *cyclic version order* anomalies, which are
//! reported and the key discarded (exactly what the paper describes Elle
//! doing for Dgraph). Acyclic orders yield `ww`/`wr`/`rw` transaction
//! dependencies. Edges derived from non-adjacent versions are transitive
//! over the true order, so any cycle they witness implies a cycle of direct
//! dependencies — soundness is preserved.
//!
//! The shared passes (duplicates, garbage, G1a, lost updates, internal
//! consistency scaffolding) live in [`crate::datatype`]; this module
//! contributes version-order inference and its cycle check.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::datatype::{
    self, internal_pass, report_lost_updates, AnalysisCtx, DatatypeAnalysis, InternalMismatch,
    KeySink, Provenance, ProvenanceScan, Vocab,
};
use crate::deps::DepGraph;
use crate::gather::GatherBuf;
use crate::observation::{DataType, ElemIndex};
use crate::versions::VersionTable;
use elle_graph::{interval_order_reduction, tarjan_scc, DiGraph, EdgeClass, EdgeMask, Interval};
use elle_history::{Elem, History, Key, Mop, ReadValue, Transaction, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};

/// A register version: `None` is the initial nil.
pub type Version = Option<Elem>;

/// Which ordering assumptions to apply (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOptions {
    /// nil precedes every written version.
    pub initial_state: bool,
    /// Within-transaction read→write / write→write chains order versions.
    pub writes_follow_reads: bool,
    /// Per-process monotonicity on each key ("sequentially consistent keys").
    pub sequential_keys: bool,
    /// Real-time monotonicity on each key ("linearizable keys").
    pub linearizable_keys: bool,
}

impl Default for RegisterOptions {
    fn default() -> Self {
        RegisterOptions {
            initial_state: true,
            writes_follow_reads: true,
            sequential_keys: false,
            linearizable_keys: false,
        }
    }
}

/// Result of the register analysis.
#[derive(Debug, Default)]
pub struct RegisterAnalysis {
    /// Inferred dependency edges.
    pub deps: DepGraph,
    /// Non-cycle anomalies (internal, G1a/G1b, garbage, lost update,
    /// cyclic version orders).
    pub anomalies: Vec<Anomaly>,
    /// Keys whose inferred version order was cyclic (discarded).
    pub cyclic_keys: Vec<Key>,
}

/// Where a version-order edge came from (for cyclic-order reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VSource {
    Initial,
    Chain,
    Process,
    Realtime,
}

impl VSource {
    pub(crate) fn describe(self) -> &'static str {
        match self {
            VSource::Initial => "initial-state",
            VSource::Chain => "writes-follow-reads",
            VSource::Process => "sequential-keys",
            VSource::Realtime => "linearizable-keys",
        }
    }
}

/// Run the analysis over the register keys.
pub fn analyze(
    history: &History,
    elems: &ElemIndex,
    register_keys: &[Key],
    opts: RegisterOptions,
) -> RegisterAnalysis {
    let out = datatype::run::<RwRegister>(history, elems, register_keys, opts);
    RegisterAnalysis {
        deps: out.deps,
        anomalies: out.anomalies,
        cyclic_keys: out.cyclic_keys,
    }
}

pub(crate) fn show(v: Version) -> String {
    match v {
        Some(e) => e.to_string(),
        None => "nil".to_string(),
    }
}

/// The last version a committed transaction left a key at, and the first
/// version it engaged with — for process/realtime version inference.
pub(crate) fn first_last_versions(t: &Transaction, key: Key) -> Option<(Version, Version)> {
    let mut first: Option<Version> = None;
    let mut last: Option<Version> = None;
    for m in &t.mops {
        let v: Option<Version> = match m {
            Mop::Write { key: k, elem } if *k == key => Some(Some(*elem)),
            Mop::Read {
                key: k,
                value: Some(ReadValue::Register(v)),
            } if *k == key => Some(*v),
            _ => None,
        };
        if let Some(v) = v {
            if first.is_none() {
                first = Some(v);
            }
            last = Some(v);
        }
    }
    first.map(|f| (f, last.expect("last set with first")))
}

/// One register-key event from the flat gather scan.
#[derive(Debug, Clone, Copy)]
pub enum RegOcc<'h> {
    /// A write's version (any transaction status).
    Version(Version),
    /// An observed read: the version always enters the seen-version
    /// set; the reader is recorded only when `committed`.
    Read {
        /// The observed version.
        v: Version,
        /// The reading transaction.
        txn: TxnId,
        /// Whether the reader committed.
        committed: bool,
    },
    /// End-of-transaction marker for a committed transaction that
    /// touched this key.
    Touch(&'h Transaction),
}

/// Everything the per-key analysis needs about one register key, folded
/// from the key's occurrence run. The fold replays the exact insertion
/// sequence the retained per-key gather performed, so the hash-map and
/// hash-set iteration orders — which downstream passes depend on for
/// deterministic output — are bit-identical.
#[derive(Debug, Default)]
pub struct RegKeyData<'h> {
    /// Committed readers per observed version (consecutive duplicates
    /// collapsed, like the event stream).
    pub(crate) readers_of: FxHashMap<Version, Vec<TxnId>>,
    /// Every version seen anywhere (writes of any status, observed reads).
    pub(crate) versions: FxHashSet<Version>,
    /// Committed transactions touching the key, in invocation order.
    pub(crate) touching: Vec<&'h Transaction>,
}

impl<'h> RegKeyData<'h> {
    pub(crate) fn from_occs(occs: &[RegOcc<'h>]) -> Self {
        let mut d = RegKeyData::default();
        for occ in occs {
            match occ {
                RegOcc::Version(v) => {
                    d.versions.insert(*v);
                }
                RegOcc::Read { v, txn, committed } => {
                    d.versions.insert(*v);
                    if *committed {
                        let rs = d.readers_of.entry(*v).or_default();
                        if rs.last() != Some(txn) {
                            rs.push(*txn);
                        }
                    }
                }
                RegOcc::Touch(t) => d.touching.push(t),
            }
        }
        d
    }
}

/// The read-write register [`DatatypeAnalysis`].
pub struct RwRegister;

impl DatatypeAnalysis for RwRegister {
    type Config = RegisterOptions;
    type Aux<'h> = ();
    type Occ<'h> = RegOcc<'h>;

    const DATATYPE: DataType = DataType::Register;
    const VOCAB: Vocab = Vocab {
        object: "register",
        item: "value",
        wrote: "wrote",
        written: "written",
        wrote_to: "written to",
        rmw: "wrote",
        garbage_per_reader: true,
    };

    /// Internal consistency: within one transaction, a read must return
    /// the last value read-or-written to the key.
    fn check_internal(cx: &AnalysisCtx<'_, RegisterOptions>, sink: &mut KeySink) {
        internal_pass(cx, sink, |_t, m, key, cur: &mut Option<Version>| match m {
            Mop::Write { elem, .. } => {
                *cur = Some(Some(*elem));
                None
            }
            Mop::Read {
                value: Some(ReadValue::Register(v)),
                ..
            } => {
                let mismatch = match cur {
                    Some(prev) if prev != v => Some(InternalMismatch {
                        message: format!(
                            "read of register {key} returned {}, but the transaction had \
                             just observed or written {}",
                            show(*v),
                            show(*prev),
                        ),
                    }),
                    _ => None,
                };
                *cur = Some(*v);
                mismatch
            }
            _ => None,
        });
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, RegisterOptions>, buf: &mut GatherBuf<RegOcc<'h>>) {
        let mut touched: Vec<u32> = Vec::new();
        for t in cx.scoped_txns() {
            touched.clear();
            let touch = |s: u32, touched: &mut Vec<u32>| {
                if !touched.contains(&s) {
                    touched.push(s);
                }
            };
            for m in &t.mops {
                match m {
                    Mop::Write { key, elem } => {
                        if let Some(slot) = cx.keys.slot_of(*key) {
                            buf.push(slot, RegOcc::Version(Some(*elem)));
                            touch(slot, &mut touched);
                        }
                    }
                    Mop::Read {
                        key,
                        value: Some(ReadValue::Register(v)),
                    } => {
                        if let Some(slot) = cx.keys.slot_of(*key) {
                            buf.push(
                                slot,
                                RegOcc::Read {
                                    v: *v,
                                    txn: t.id,
                                    committed: t.status == TxnStatus::Committed,
                                },
                            );
                            touch(slot, &mut touched);
                        }
                    }
                    _ => {}
                }
            }
            if t.status == TxnStatus::Committed {
                for &s in &touched {
                    buf.push(s, RegOcc::Touch(t));
                }
            }
        }
    }

    fn observed_elems(occs: &[RegOcc<'_>]) -> Vec<Elem> {
        RegKeyData::from_occs(occs)
            .readers_of
            .keys()
            .filter_map(|v| *v)
            .collect()
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, RegisterOptions>,
        _aux: &(),
        key: Key,
        occs: &[RegOcc<'h>],
        poisoned: bool,
        out: &mut KeySink,
    ) {
        let opts = cx.config;
        let vocab = &Self::VOCAB;
        let RegKeyData {
            readers_of,
            versions,
            touching,
        } = &RegKeyData::from_occs(occs);
        if versions.is_empty() {
            return;
        }

        // ── Per-read provenance (shared scan): garbage always; G1a and
        //    G1b only when the key is recoverable. ──────────────────────
        let mut scan = ProvenanceScan::new();
        for (v, readers) in readers_of {
            let Some(e) = v else { continue };
            for r in readers {
                let w = match scan.provenance(cx, vocab, key, *r, *e, poisoned, out) {
                    Provenance::Ok(w) | Provenance::Aborted(w) => w,
                    Provenance::Garbage | Provenance::Unusable => continue,
                };
                // G1b: the register counterpart needs no adjacency test —
                // any observed non-final write is an intermediate read.
                if !w.final_for_key && w.txn != *r {
                    out.anomaly(
                        AnomalyType::G1b,
                        vec![*r, w.txn],
                        key,
                        format!(
                            "{}\n  read value {e} of register {key}, an intermediate \
                             write of {}",
                            cx.history.get(*r).to_notation(),
                            w.txn
                        ),
                    );
                }
            }
        }

        // ── Lost updates: same version read, then written, by ≥ 2 txns. ─
        let mut rmw: FxHashMap<Version, Vec<TxnId>> = FxHashMap::default();
        for t in touching {
            let mut first_read: Option<(usize, Version)> = None;
            let mut writes_after = false;
            for (i, m) in t.mops.iter().enumerate() {
                match m {
                    Mop::Read {
                        key: k,
                        value: Some(ReadValue::Register(v)),
                    } if *k == key && first_read.is_none() => first_read = Some((i, *v)),
                    Mop::Write { key: k, .. } if *k == key => {
                        if first_read.is_some() {
                            writes_after = true;
                        } else {
                            // Blind write before reading: not an RMW pattern.
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let (Some((_, v)), true) = (first_read, writes_after) {
                let g = rmw.entry(v).or_default();
                if !g.contains(&t.id) {
                    g.push(t.id);
                }
            }
        }
        let mut groups: Vec<(Version, Vec<TxnId>)> =
            rmw.into_iter().filter(|(_, g)| g.len() >= 2).collect();
        groups.sort_unstable_by_key(|(v, _)| *v);
        for (_, g) in &mut groups {
            g.sort_unstable();
        }
        report_lost_updates(vocab, key, groups, |v| show(*v), out);

        if poisoned {
            return;
        }

        // ── Version order edges. Versions are interned into dense ids
        //    through the shared [`VersionTable`] (first-seen order, so
        //    the graph layout is deterministic and identical to the seed
        //    pipeline's ad-hoc interning). ────────────────────────────────
        let mut table: VersionTable<Version, ()> = VersionTable::new();
        let id_of =
            |v: Version, table: &mut VersionTable<Version, ()>| table.intern_with(v, |_| ()).0;
        let mut vedges: Vec<(u32, u32, VSource)> = Vec::new();

        if opts.initial_state {
            for v in versions {
                if v.is_some() {
                    let a = id_of(None, &mut table);
                    let b = id_of(*v, &mut table);
                    vedges.push((a, b, VSource::Initial));
                }
            }
        }

        if opts.writes_follow_reads {
            for t in touching {
                let mut cur: Option<Version> = None;
                for m in &t.mops {
                    match m {
                        Mop::Write { key: k, elem } if *k == key => {
                            if let Some(prev) = cur {
                                if prev != Some(*elem) {
                                    let a = id_of(prev, &mut table);
                                    let b = id_of(Some(*elem), &mut table);
                                    vedges.push((a, b, VSource::Chain));
                                }
                            }
                            cur = Some(Some(*elem));
                        }
                        Mop::Read {
                            key: k,
                            value: Some(ReadValue::Register(v)),
                        } if *k == key => {
                            // Reads do not add edges; they update the cursor.
                            // (A mismatched read was already reported as
                            // internal; trust the read for ordering.)
                            cur = Some(*v);
                        }
                        _ => {}
                    }
                }
            }
        }

        if opts.sequential_keys {
            let mut last_of: FxHashMap<elle_history::ProcessId, Version> = FxHashMap::default();
            for t in touching {
                if let Some((first, last)) = first_last_versions(t, key) {
                    if let Some(prev_last) = last_of.get(&t.process) {
                        if *prev_last != first {
                            let a = id_of(*prev_last, &mut table);
                            let b = id_of(first, &mut table);
                            vedges.push((a, b, VSource::Process));
                        }
                    }
                    last_of.insert(t.process, last);
                }
            }
        }

        if opts.linearizable_keys {
            let intervals: Vec<Interval> = touching
                .iter()
                .map(|t| Interval {
                    invoke: t.invoke_index,
                    complete: t.complete_index,
                })
                .collect();
            for (a, b) in interval_order_reduction(&intervals) {
                let (ta, tb) = (touching[a as usize], touching[b as usize]);
                let (_, last_a) = first_last_versions(ta, key).expect("touching");
                let (first_b, _) = first_last_versions(tb, key).expect("touching");
                if last_a != first_b {
                    let x = id_of(last_a, &mut table);
                    let y = id_of(first_b, &mut table);
                    vedges.push((x, y, VSource::Realtime));
                }
            }
        }
        let vlist: Vec<Version> = table.iter().map(|(_, v, _)| v).collect();

        // ── Cycle check on the version graph. ──────────────────────────
        let mut vg = DiGraph::with_vertices(vlist.len());
        for &(a, b, _) in &vedges {
            vg.add_edge(a, b, EdgeClass::Version);
        }
        let sccs = tarjan_scc(&vg, EdgeMask::VERSION);
        if !sccs.is_empty() {
            let cyc_versions: Vec<String> =
                sccs[0].iter().map(|&i| show(vlist[i as usize])).collect();
            let sources: FxHashSet<&'static str> = vedges
                .iter()
                .filter(|(a, b, _)| sccs[0].contains(a) && sccs[0].contains(b))
                .map(|(_, _, s)| s.describe())
                .collect();
            let mut txns: Vec<TxnId> = sccs[0]
                .iter()
                .filter_map(|&i| {
                    vlist[i as usize]
                        .and_then(|e| cx.elems.writer(key, e))
                        .map(|w| w.txn)
                })
                .collect();
            txns.sort_unstable();
            txns.dedup();
            out.cyclic = true;
            out.anomaly(
                AnomalyType::CyclicVersionOrder,
                txns,
                key,
                format!(
                    "the inferred version order of register {key} is cyclic over values \
                     {{{}}} (sources: {}); discarding this key's dependencies",
                    cyc_versions.join(", "),
                    {
                        let mut s: Vec<&str> = sources.into_iter().collect();
                        s.sort_unstable();
                        s.join(", ")
                    }
                ),
            );
            return;
        }

        // ── wr edges from recoverable reads. ───────────────────────────
        for (v, readers) in readers_of {
            let Some(e) = v else { continue };
            let Some(w) = cx.elems.writer(key, *e) else {
                continue;
            };
            if w.status == TxnStatus::Aborted {
                continue;
            }
            for r in readers {
                out.edge(w.txn, *r, Witness::WrReg { key, elem: *e });
            }
        }

        // ── ww / rw edges from version-order edges. ────────────────────
        let mut seen_pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &(a, b, _) in &vedges {
            if !seen_pairs.insert((a, b)) {
                continue;
            }
            let (va, vb) = (vlist[a as usize], vlist[b as usize]);
            let Some(eb) = vb else { continue };
            let Some(wb) = cx.elems.writer(key, eb) else {
                continue;
            };
            if wb.status == TxnStatus::Aborted {
                continue;
            }
            if let Some(ea) = va {
                if let Some(wa) = cx.elems.writer(key, ea) {
                    if wa.status != TxnStatus::Aborted {
                        out.edge(
                            wa.txn,
                            wb.txn,
                            Witness::WwReg {
                                key,
                                prev: va,
                                next: eb,
                            },
                        );
                    }
                }
            }
            if let Some(readers) = readers_of.get(&va) {
                for r in readers {
                    out.edge(
                        *r,
                        wb.txn,
                        Witness::RwReg {
                            key,
                            read: va,
                            next: eb,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_history::HistoryBuilder;

    fn run(h: &History, opts: RegisterOptions) -> RegisterAnalysis {
        let elems = ElemIndex::build(h);
        let kt = KeyTypes::infer(h);
        analyze(h, &elems, &kt.keys_of(DataType::Register), opts)
    }

    fn types(a: &RegisterAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn dgraph_internal_inconsistency() {
        // §7.4: T1: w(10, 2), r(10, 1)
        let mut b = HistoryBuilder::new();
        b.txn(0).write(10, 1).commit();
        b.txn(1).write(10, 2).read_register(10, Some(1)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn wr_edge_from_write_to_reader() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).write(1, 5).commit();
        let t1 = b.txn(1).read_register(1, Some(5)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(a.deps.edge_mask(t0.0, t1.0).contains(EdgeClass::Wr));
    }

    #[test]
    fn wfr_chain_gives_ww_and_rw() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).write(1, 1).commit();
        let t1 = b.txn(1).read_register(1, Some(1)).write(1, 2).commit();
        let t2 = b.txn(2).read_register(1, Some(1)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        // Chain: 1 < 2, so writer(1)=t0 ww→ writer(2)=t1.
        assert!(a.deps.edge_mask(t0.0, t1.0).contains(EdgeClass::Ww));
        // Reader of 1 (t2) rw→ writer of 2 (t1).
        assert!(a.deps.edge_mask(t2.0, t1.0).contains(EdgeClass::Rw));
    }

    #[test]
    fn initial_state_gives_rw_from_nil_readers() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).read_register(1, None).commit();
        let t1 = b.txn(1).write(1, 7).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(a.deps.edge_mask(t0.0, t1.0).contains(EdgeClass::Rw));
    }

    #[test]
    fn linearizable_keys_detect_stale_nil_reads() {
        // §7.4: T1 wrote 540=2 and completed well before T2, which read nil.
        let mut b = HistoryBuilder::new();
        b.txn(0).write(540, 2).at(0, Some(1)).commit();
        b.txn(1).read_register(540, None).at(10, Some(11)).commit();
        let opts = RegisterOptions {
            linearizable_keys: true,
            ..RegisterOptions::default()
        };
        let a = run(&b.build(), opts);
        // Version order: nil < 2 (initial), 2 < nil (realtime) — cyclic.
        assert!(types(&a).contains(&AnomalyType::CyclicVersionOrder));
        assert_eq!(a.cyclic_keys, vec![Key(540)]);
    }

    #[test]
    fn sequential_keys_order_versions() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).write(1, 1).commit(); // p0
        let t1 = b.txn(0).write(1, 2).commit(); // p0 again
        let opts = RegisterOptions {
            sequential_keys: true,
            ..RegisterOptions::default()
        };
        let a = run(&b.build(), opts);
        // p0's second txn's version follows its first: ww t0 → t1.
        assert!(a.deps.edge_mask(t0.0, t1.0).contains(EdgeClass::Ww));
    }

    #[test]
    fn g1a_register() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 9).abort();
        b.txn(1).read_register(1, Some(9)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::G1a));
    }

    #[test]
    fn g1b_register_intermediate() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 1).write(1, 2).commit();
        b.txn(1).read_register(1, Some(1)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::G1b));
    }

    #[test]
    fn garbage_register_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read_register(1, Some(77)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
    }

    #[test]
    fn lost_update_register() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 1).commit();
        b.txn(1).read_register(1, Some(1)).write(1, 2).commit();
        b.txn(2).read_register(1, Some(1)).write(1, 3).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::LostUpdate));
    }

    #[test]
    fn clean_register_history() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 1).commit();
        b.txn(1).read_register(1, Some(1)).write(1, 2).commit();
        b.txn(2).read_register(1, Some(2)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
        assert!(a.cyclic_keys.is_empty());
    }

    #[test]
    fn duplicate_register_writes_poison_key() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).commit();
        b.txn(1).write(1, 5).commit();
        b.txn(2).read_register(1, Some(5)).commit();
        let a = run(&b.build(), RegisterOptions::default());
        assert!(types(&a).contains(&AnomalyType::DuplicateWrite));
        // No wr edges inferred for the poisoned key.
        assert_eq!(a.deps.edge_count(), 0);
    }
}
