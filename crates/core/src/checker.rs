//! The top-level checker: orchestrates the per-datatype analyses, assembles
//! the IDSG, runs cycle search, and reasons about consistency models.

use crate::anomaly::{Anomaly, AnomalyType};
use crate::counter;
use crate::cycle_search::{find_cycle_anomalies_frozen, CycleSearchOptions};
use crate::datatype::{self, Parallelism};
use crate::deps::DepGraph;
use crate::list_append;
use crate::models::{strongest_satisfiable, violated_models, ConsistencyModel};
use crate::observation::{DataType, ElemIndex, KeyTypes};
use crate::orders;
use crate::reference;
use crate::rw_register::{self, RegisterOptions};
use crate::set_add;
use elle_history::History;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// The isolation level the database claims; [`Report::ok`] is judged
    /// against it.
    pub expected: ConsistencyModel,
    /// Derive session-order edges and search for `-process` cycles.
    pub process_edges: bool,
    /// Derive real-time edges and search for `-realtime` cycles.
    pub realtime_edges: bool,
    /// Derive time-precedes edges from database-exposed transaction
    /// timestamps and search the start-ordered serialization graph (§5.1).
    pub timestamp_edges: bool,
    /// Register-mode version-order inference assumptions.
    pub registers: RegisterOptions,
    /// Cap on reported cycles per anomaly type.
    pub max_cycles_per_type: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions::strict_serializable()
    }
}

impl CheckOptions {
    fn base(expected: ConsistencyModel) -> Self {
        CheckOptions {
            expected,
            process_edges: false,
            realtime_edges: false,
            timestamp_edges: false,
            registers: RegisterOptions::default(),
            max_cycles_per_type: 4,
        }
    }

    /// Expect strict serializability: all edge sources enabled.
    pub fn strict_serializable() -> Self {
        CheckOptions {
            process_edges: true,
            realtime_edges: true,
            ..CheckOptions::base(ConsistencyModel::StrictSerializable)
        }
    }

    /// Expect serializability (no session / real-time obligations).
    pub fn serializable() -> Self {
        CheckOptions::base(ConsistencyModel::Serializable)
    }

    /// Expect snapshot isolation.
    pub fn snapshot_isolation() -> Self {
        CheckOptions::base(ConsistencyModel::SnapshotIsolation)
    }

    /// Expect repeatable read.
    pub fn repeatable_read() -> Self {
        CheckOptions::base(ConsistencyModel::RepeatableRead)
    }

    /// Expect read committed.
    pub fn read_committed() -> Self {
        CheckOptions::base(ConsistencyModel::ReadCommitted)
    }

    /// Expect read uncommitted.
    pub fn read_uncommitted() -> Self {
        CheckOptions::base(ConsistencyModel::ReadUncommitted)
    }

    /// Builder-style: toggle session edges.
    pub fn with_process_edges(mut self, on: bool) -> Self {
        self.process_edges = on;
        self
    }

    /// Builder-style: toggle real-time edges.
    pub fn with_realtime_edges(mut self, on: bool) -> Self {
        self.realtime_edges = on;
        self
    }

    /// Builder-style: toggle database-timestamp edges (§5.1).
    pub fn with_timestamp_edges(mut self, on: bool) -> Self {
        self.timestamp_edges = on;
        self
    }

    /// Builder-style: register inference assumptions.
    pub fn with_registers(mut self, r: RegisterOptions) -> Self {
        self.registers = r;
        self
    }

    /// Builder-style: cycle cap per anomaly type.
    pub fn with_max_cycles(mut self, n: usize) -> Self {
        self.max_cycles_per_type = n;
        self
    }
}

/// Statistics gathered during a check.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckStats {
    /// Transactions in the history.
    pub txns: usize,
    /// Micro-operations in the history.
    pub mops: usize,
    /// Committed / aborted / indeterminate counts.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// Indeterminate transactions.
    pub indeterminate: usize,
    /// Distinct IDSG edges by class label.
    pub edges: BTreeMap<String, usize>,
    /// Element-carrying writes by may-have-committed transactions.
    pub committed_writes: usize,
    /// Of those, how many were observed by at least one committed read —
    /// the paper's §3 caveat: unobserved writes leave the tail of each
    /// version order unknown, so a low fraction means weak coverage.
    pub observed_writes: usize,
}

/// The result of checking a history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Everything found, ordered by type then size. Interned behind
    /// [`Arc`] so the streaming checker's per-epoch report assembly
    /// clones pointers, not explanation strings; serializes exactly
    /// like a plain `Vec<Anomaly>`.
    pub anomalies: Vec<Arc<Anomaly>>,
    /// Count per anomaly type.
    pub anomaly_counts: BTreeMap<AnomalyType, usize>,
    /// Models ruled out by the anomalies.
    pub violated: BTreeSet<ConsistencyModel>,
    /// The frontier of models still tenable.
    pub strongest_satisfiable: Vec<ConsistencyModel>,
    /// The model the check was judged against.
    pub expected: ConsistencyModel,
    /// Workload statistics.
    pub stats: CheckStats,
    /// Non-fatal oddities (key type conflicts, etc.).
    pub warnings: Vec<String>,
}

impl Report {
    /// Did the history satisfy the expected model?
    pub fn ok(&self) -> bool {
        !self.violated.contains(&self.expected)
    }

    /// Anomalies of a given type.
    pub fn of_type(&self, t: AnomalyType) -> impl Iterator<Item = &Anomaly> + '_ {
        self.anomalies
            .iter()
            .map(|a| a.as_ref())
            .filter(move |a| a.typ == t)
    }

    /// The distinct anomaly types found.
    pub fn types(&self) -> Vec<AnomalyType> {
        self.anomaly_counts.keys().copied().collect()
    }

    /// Render a human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "checked {} txns ({} ok / {} failed / {} info), {} mops",
            self.stats.txns,
            self.stats.committed,
            self.stats.aborted,
            self.stats.indeterminate,
            self.stats.mops
        );
        if self.anomalies.is_empty() {
            let _ = writeln!(s, "no anomalies found; {} holds", self.expected);
        } else {
            let _ = writeln!(s, "anomalies:");
            for (t, n) in &self.anomaly_counts {
                let _ = writeln!(s, "  {t}: {n}");
            }
            let frontier: Vec<String> = self
                .strongest_satisfiable
                .iter()
                .map(|m| m.to_string())
                .collect();
            let _ = writeln!(
                s,
                "strongest tenable model(s): {}",
                if frontier.is_empty() {
                    "none".to_string()
                } else {
                    frontier.join(", ")
                }
            );
            let _ = writeln!(
                s,
                "expected {}: {}",
                self.expected,
                if self.ok() { "holds" } else { "VIOLATED" }
            );
        }
        s
    }
}

/// Per-stage wall-clock breakdown of one check, for `elle-check
/// --timing` and perf-regression triage without a criterion run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// `(stage name, seconds)` in execution order.
    pub stages: Vec<(String, f64)>,
    /// Peak length the flat edge buffer reached before its sort-based
    /// build (0 when no edges were buffered) — the observability hook
    /// for the hash-free EdgeBuf → CSR pipeline.
    pub edge_buf_peak: usize,
    /// Peak flat gather-buffer footprint in bytes across the datatype
    /// passes (0 when nothing was gathered) — the counterpart gauge for
    /// the sort-based gather pipeline.
    pub gather_buf_peak: usize,
    /// Peak bytes parked in the thread-local scratch-buffer pool, i.e.
    /// how much pre-faulted memory later runs get to recycle.
    pub pool_peak: usize,
    /// Events quarantined by the ingest recovery policy so far (0 in
    /// strict runs and on clean streams).
    #[serde(default)]
    pub quarantined_events: usize,
    /// Epoch seals forced by a resource budget (`--max-epoch-ms`)
    /// rather than a watermark (0 in batch runs and unbudgeted streams).
    #[serde(default)]
    pub forced_seals: usize,
    /// Bytes resident in the carried checker state after the seal (0 in
    /// batch runs and unwindowed streams, which don't meter residency).
    #[serde(default)]
    pub resident_bytes: usize,
    /// Transactions retired from the window so far (0 outside windowed
    /// streaming).
    #[serde(default)]
    pub retired_txns: usize,
}

impl StageTimings {
    fn record(&mut self, name: &str, since: Instant) -> Instant {
        self.stages
            .push((name.to_string(), since.elapsed().as_secs_f64()));
        Instant::now()
    }

    /// Total seconds across all recorded stages.
    pub fn total(&self) -> f64 {
        self.stages.iter().map(|(_, s)| s).sum()
    }

    /// Render an aligned human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let width = self
            .stages
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("total".len());
        let mut s = String::new();
        for (name, secs) in &self.stages {
            let _ = writeln!(s, "  {name:<width$}  {:>9.3} ms", secs * 1e3);
        }
        let _ = writeln!(s, "  {:<width$}  {:>9.3} ms", "total", self.total() * 1e3);
        if self.edge_buf_peak > 0 {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>9} edges",
                "edge buf peak", self.edge_buf_peak
            );
        }
        if self.gather_buf_peak > 0 {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>9} bytes",
                "gather buf peak", self.gather_buf_peak
            );
        }
        if self.pool_peak > 0 {
            let _ = writeln!(s, "  {:<width$}  {:>9} bytes", "pool peak", self.pool_peak);
        }
        if self.quarantined_events > 0 {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>9} events",
                "quarantined", self.quarantined_events
            );
        }
        if self.forced_seals > 0 {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>9} seals",
                "forced seals", self.forced_seals
            );
        }
        if self.resident_bytes > 0 {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>9} bytes",
                "resident", self.resident_bytes
            );
        }
        if self.retired_txns > 0 {
            let _ = writeln!(s, "  {:<width$}  {:>9} txns", "retired", self.retired_txns);
        }
        s
    }
}

/// An internal checker failure: a panic captured on the check path.
///
/// Distinct from ingest errors (the *input* was bad) — this means the
/// checker itself failed; CLIs map it to exit code 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalError {
    /// The captured panic payload, if it was a string.
    pub message: String,
}

impl std::fmt::Display for InternalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "internal checker error: {}", self.message)
    }
}

impl std::error::Error for InternalError {}

/// Extract a human-readable message from a captured panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The Elle checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checker {
    opts: CheckOptions,
}

/// Output of the shared inference front half (datatype passes merged
/// into one graph, plus everything the report path needs from them).
struct InferredDeps {
    anomalies: Vec<Anomaly>,
    observed: rustc_hash::FxHashSet<(elle_history::Key, elle_history::Elem)>,
    deps: DepGraph,
    warnings: Vec<String>,
}

impl Checker {
    /// A checker with the given options.
    pub fn new(opts: CheckOptions) -> Self {
        Checker { opts }
    }

    /// Check a history, producing a [`Report`].
    pub fn check(&self, history: &History) -> Report {
        self.check_inner(history, false, None)
    }

    /// Check a history with panic isolation: a panic anywhere on the
    /// check path (a checker bug, a pathological history) is caught and
    /// returned as a typed [`InternalError`] instead of unwinding into
    /// the caller — one bad tenant history must not take down a process
    /// checking many.
    pub fn try_check(&self, history: &History) -> Result<Report, InternalError> {
        let me = *self;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || me.check(history))).map_err(
            |payload| InternalError {
                message: panic_message(payload.as_ref()),
            },
        )
    }

    /// Check a history, also returning the per-stage wall-clock
    /// breakdown (parse time is the caller's to measure).
    pub fn check_timed(&self, history: &History) -> (Report, StageTimings) {
        let mut t = StageTimings::default();
        let report = self.check_inner(history, false, Some(&mut t));
        (report, t)
    }

    /// Check a history through the preserved **seed per-read datatype
    /// passes** ([`crate::reference`]) instead of the version-interned
    /// ones. Differential-testing plumbing, not a supported API.
    #[doc(hidden)]
    pub fn check_seed_reference(&self, history: &History) -> Report {
        self.check_inner(history, true, None)
    }

    /// Run only the inference half of [`Checker::check`]: the
    /// per-datatype analyses plus the configured derived-order passes,
    /// returning the assembled IDSG sealed with [`DepGraph::build`] —
    /// no cycle search, no report. This is the export hook external
    /// engines (the `elle-sat` cross-checker) encode from: every edge
    /// in the returned graph is a sound inference about the history,
    /// so a solver may assert each as a unit ordering constraint.
    pub fn infer_idsg(&self, history: &History) -> DepGraph {
        let mut timings = None;
        let mut clock = Instant::now();
        let inferred = self.infer_deps(history, false, &mut timings, &mut clock);
        let mut deps = inferred.deps;
        if self.opts.process_edges {
            orders::add_process_edges(&mut deps, history);
        }
        if self.opts.realtime_edges {
            orders::add_realtime_edges(&mut deps, history);
        }
        if self.opts.timestamp_edges {
            orders::add_timestamp_edges(&mut deps, history);
        }
        deps.build();
        // The datatype drivers charged their scratch to the shared
        // pool gauge; an inference-only caller must not leak that into
        // the next `check()`'s peak reading.
        let _ = crate::pool::take_peak_bytes();
        deps
    }

    /// The shared inference front half: key typing, element index, and
    /// the per-datatype analysis passes, merged into one [`DepGraph`]
    /// (not yet sealed, no derived-order edges). Both [`Checker::check`]
    /// and [`Checker::infer_idsg`] build on this.
    fn infer_deps(
        &self,
        history: &History,
        seed_reference: bool,
        timings: &mut Option<&mut StageTimings>,
        clock: &mut Instant,
    ) -> InferredDeps {
        let opts = self.opts;
        let kt = KeyTypes::infer(history);
        let elems = ElemIndex::build(history);
        if let Some(t) = timings.as_deref_mut() {
            *clock = t.record("key typing + element index", *clock);
        }

        let mut warnings = Vec::new();
        for k in &kt.conflicts {
            warnings.push(format!(
                "key {k} is used as more than one datatype; its inferences are unreliable"
            ));
        }

        let mut anomalies: Vec<Anomaly> = Vec::new();
        let mut observed: rustc_hash::FxHashSet<(elle_history::Key, elle_history::Elem)> =
            rustc_hash::FxHashSet::with_capacity_and_hasher(elems.len(), Default::default());
        let mut gather = datatype::GatherStats::default();
        let mut deps = DepGraph::with_txns(history.len());
        // The first datatype's graph is adopted wholesale; later ones
        // merge into it via a sorted spine merge (cheap: keys partition
        // edges across datatypes).
        let absorb = |deps: &mut DepGraph, other: DepGraph| {
            if deps.edge_count() == 0 {
                let floor = std::mem::replace(deps, other);
                deps.ensure_txns(floor.txns_floor());
            } else {
                deps.merge(other);
            }
        };

        let list_keys = kt.keys_of(DataType::List);
        if !list_keys.is_empty() {
            let out = if seed_reference {
                datatype::run_mode::<reference::ListAppendRef>(
                    history,
                    &elems,
                    &list_keys,
                    (),
                    Parallelism::Auto,
                )
            } else {
                datatype::run::<list_append::ListAppend>(history, &elems, &list_keys, ())
            };
            anomalies.extend(out.anomalies);
            observed.extend(out.observed);
            gather.absorb(out.gather);
            absorb(&mut deps, out.deps);
        }
        let reg_keys = kt.keys_of(DataType::Register);
        if !reg_keys.is_empty() {
            let out = if seed_reference {
                datatype::run_mode::<reference::RwRegisterRef>(
                    history,
                    &elems,
                    &reg_keys,
                    opts.registers,
                    Parallelism::Auto,
                )
            } else {
                datatype::run::<rw_register::RwRegister>(history, &elems, &reg_keys, opts.registers)
            };
            anomalies.extend(out.anomalies);
            observed.extend(out.observed);
            gather.absorb(out.gather);
            absorb(&mut deps, out.deps);
        }
        let set_keys = kt.keys_of(DataType::Set);
        if !set_keys.is_empty() {
            let out = if seed_reference {
                datatype::run_mode::<reference::SetAddRef>(
                    history,
                    &elems,
                    &set_keys,
                    (),
                    Parallelism::Auto,
                )
            } else {
                datatype::run::<set_add::SetAdd>(history, &elems, &set_keys, ())
            };
            anomalies.extend(out.anomalies);
            observed.extend(out.observed);
            gather.absorb(out.gather);
            absorb(&mut deps, out.deps);
        }
        let counter_keys = kt.keys_of(DataType::Counter);
        if !counter_keys.is_empty() {
            let a = counter::analyze(history, &counter_keys);
            anomalies.extend(a.anomalies);
            gather.absorb(a.gather);
            absorb(&mut deps, a.deps);
        }
        // The gather scans ran inside the datatype drivers; split their
        // share out of the inference lap so both stages read true.
        if let Some(t) = timings.as_deref_mut() {
            t.stages.push(("gather".to_string(), gather.secs));
            t.stages.push((
                "datatype inference".to_string(),
                (clock.elapsed().as_secs_f64() - gather.secs).max(0.0),
            ));
            t.gather_buf_peak = gather.buf_bytes;
            *clock = Instant::now();
        }

        InferredDeps {
            anomalies,
            observed,
            deps,
            warnings,
        }
    }

    fn check_inner(
        &self,
        history: &History,
        seed_reference: bool,
        mut timings: Option<&mut StageTimings>,
    ) -> Report {
        let opts = self.opts;
        let mut clock = Instant::now();
        let inferred = self.infer_deps(history, seed_reference, &mut timings, &mut clock);
        let InferredDeps {
            mut anomalies,
            observed,
            mut deps,
            warnings,
        } = inferred;
        fn lap(timings: &mut Option<&mut StageTimings>, name: &str, clock: &mut Instant) {
            if let Some(t) = timings.as_deref_mut() {
                *clock = t.record(name, *clock);
            }
        }

        if opts.process_edges {
            orders::add_process_edges(&mut deps, history);
        }
        if opts.realtime_edges {
            orders::add_realtime_edges(&mut deps, history);
        }
        if opts.timestamp_edges {
            orders::add_timestamp_edges(&mut deps, history);
        }
        lap(&mut timings, "derived orders", &mut clock);

        // Seal the flat edge buffer: one sort-based dedup merge instead
        // of a hash probe per edge.
        deps.build();
        if let Some(t) = timings.as_deref_mut() {
            t.edge_buf_peak = deps.edge_buf_peak();
        }
        lap(&mut timings, "edge build", &mut clock);

        // Freeze the assembled IDSG once; every per-class search walks
        // the same immutable CSR snapshot.
        let frozen = deps.freeze();
        lap(&mut timings, "freeze", &mut clock);
        let cycles = find_cycle_anomalies_frozen(
            &deps,
            &frozen,
            history,
            CycleSearchOptions {
                process_edges: opts.process_edges,
                realtime_edges: opts.realtime_edges,
                timestamp_edges: opts.timestamp_edges,
                max_per_type: opts.max_cycles_per_type,
                certificate: true,
            },
        );
        lap(&mut timings, "cycle search", &mut clock);
        anomalies.extend(cycles);

        // Observation coverage (§3): which committed writes were ever
        // read? The observed-pair sets were computed inside the datatype
        // drivers' per-key passes (no second walk over read payloads);
        // here we only count writes against them.
        let mut committed_writes = 0usize;
        let mut observed_writes = 0usize;
        for t in history.txns() {
            if !t.status.may_have_committed() {
                continue;
            }
            for (_, key, e) in t.elem_writes() {
                committed_writes += 1;
                if observed.contains(&(key, e)) {
                    observed_writes += 1;
                }
            }
        }

        let stats = CheckStats {
            txns: history.len(),
            mops: history.mop_count(),
            committed: history
                .txns()
                .iter()
                .filter(|t| t.status.is_committed())
                .count(),
            aborted: history
                .txns()
                .iter()
                .filter(|t| t.status.is_aborted())
                .count(),
            indeterminate: history
                .txns()
                .iter()
                .filter(|t| !t.status.is_committed() && !t.status.is_aborted())
                .count(),
            edges: BTreeMap::new(), // filled by assemble_report
            committed_writes,
            observed_writes,
        };

        let report = assemble_report(
            opts.expected,
            anomalies.into_iter().map(Arc::new).collect(),
            &deps,
            stats,
            warnings,
        );
        lap(&mut timings, "report assembly", &mut clock);
        if let Some(t) = timings {
            t.pool_peak = crate::pool::take_peak_bytes();
        }
        report
    }
}

/// Assemble a [`Report`] from independently produced parts: sort the
/// anomalies the way [`Checker::check`] does, derive the per-type
/// counts, the violated-model set and the tenable frontier, and fill
/// the per-class edge statistics from the graph's counters.
///
/// Shared by the batch checker path above and by `elle_stream`'s
/// epoch sealing, so a streamed prefix assembles its report through
/// the *same* code — a precondition for the byte-for-byte streaming
/// differential.
#[doc(hidden)]
pub fn assemble_report(
    expected: ConsistencyModel,
    mut anomalies: Vec<Arc<Anomaly>>,
    deps: &DepGraph,
    stats: CheckStats,
    warnings: Vec<String>,
) -> Report {
    anomalies.sort_by(|a, b| a.typ.cmp(&b.typ).then(a.txns.cmp(&b.txns)));
    let mut anomaly_counts: BTreeMap<AnomalyType, usize> = BTreeMap::new();
    for a in &anomalies {
        *anomaly_counts.entry(a.typ).or_insert(0) += 1;
    }
    let typs: Vec<AnomalyType> = anomaly_counts.keys().copied().collect();
    let violated = violated_models(typs.iter());
    let strongest = strongest_satisfiable(typs.iter());
    let mut edges: BTreeMap<String, usize> = BTreeMap::new();
    for (c, n) in deps.class_counts() {
        edges.insert(c.label().to_string(), n);
    }
    let stats = CheckStats { edges, ..stats };
    Report {
        anomalies,
        anomaly_counts,
        violated,
        strongest_satisfiable: strongest,
        expected,
        stats,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    #[test]
    fn clean_history_ok() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let r = Checker::new(CheckOptions::strict_serializable()).check(&b.build());
        assert!(r.ok(), "{}", r.summary());
        assert!(r.anomalies.is_empty());
        assert_eq!(
            r.strongest_satisfiable,
            vec![ConsistencyModel::StrictSerializable]
        );
        assert!(r.stats.edges.contains_key("ww"));
    }

    #[test]
    fn paper_tidb_g_single_detected_end_to_end() {
        // §7.1's trio plus seed appends.
        let mut b = HistoryBuilder::new();
        b.txn(9).append(34, 2).commit();
        b.txn(9).append(34, 1).commit();
        b.txn(0)
            .read_list(34, [2, 1])
            .append(36, 5)
            .append(34, 4)
            .at(4, Some(20))
            .commit();
        b.txn(1).append(34, 5).at(5, Some(19)).commit();
        b.txn(2)
            .read_list(34, [2, 1, 5, 4])
            .at(21, Some(22))
            .commit();
        let r = Checker::new(CheckOptions::snapshot_isolation()).check(&b.build());
        assert!(!r.ok(), "{}", r.summary());
        assert!(r.anomaly_counts.contains_key(&AnomalyType::GSingle));
        let a = r.of_type(AnomalyType::GSingle).next().unwrap();
        assert!(
            a.explanation.contains("did not observe"),
            "{}",
            a.explanation
        );
    }

    #[test]
    fn realtime_violation_needs_realtime_edges() {
        // T0 writes, completes; T1 then reads the initial state — stale.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).read_list(1, []).at(2, Some(3)).commit();
        b.txn(2).read_list(1, [1]).at(4, Some(5)).commit();
        let h = b.build();
        let strict = Checker::new(CheckOptions::strict_serializable()).check(&h);
        assert!(!strict.ok(), "{}", strict.summary());
        assert!(strict
            .anomaly_counts
            .contains_key(&AnomalyType::GSingleRealtime));
        // Plain serializability is satisfied: the same history passes.
        let ser = Checker::new(CheckOptions::serializable()).check(&h);
        assert!(ser.ok(), "{}", ser.summary());
    }

    #[test]
    fn process_violation() {
        // One process observes, then un-observes, a write.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(9)).commit();
        b.txn(1).read_list(1, [1]).at(1, Some(2)).commit(); // p1 sees 1
        b.txn(1).read_list(1, []).at(10, Some(11)).commit(); // p1 unsees
        b.txn(2).append(1, 2).at(12, Some(13)).commit();
        b.txn(3).read_list(1, [1, 2]).at(14, Some(15)).commit();
        let h = b.build();
        let opts = CheckOptions::serializable()
            .with_process_edges(true)
            .with_realtime_edges(false);
        let r = Checker::new(opts).check(&h);
        assert!(
            r.anomaly_counts
                .keys()
                .any(|t| matches!(t, AnomalyType::GSingleProcess | AnomalyType::G1cProcess)),
            "{}",
            r.summary()
        );
    }

    #[test]
    fn mixed_datatypes_merge_into_one_graph() {
        let mut b = HistoryBuilder::new();
        // List cycle half…
        b.txn(0).append(1, 1).read_register(2, Some(7)).commit();
        // …register half: t1 writes 7 but reads list [1] from t0? Build a
        // wr cycle: t0 -> t1 via list, t1 -> t0 via register.
        b.txn(1).write(2, 7).read_list(1, [1]).commit();
        let r = Checker::new(CheckOptions::serializable()).check(&b.build());
        assert!(!r.ok(), "{}", r.summary());
        assert!(r.anomaly_counts.contains_key(&AnomalyType::G1c));
    }

    #[test]
    fn report_serializes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        let r = Checker::new(CheckOptions::default()).check(&b.build());
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"expected\""));
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stats.txns, 1);
    }

    #[test]
    fn warnings_on_type_conflicts() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(1, 2).commit();
        let r = Checker::new(CheckOptions::default()).check(&b.build());
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn expected_model_gates_ok() {
        // Write skew: legal under SI, illegal under serializable.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(2, 2).commit();
        b.txn(2)
            .read_list(1, [1])
            .read_list(2, [])
            .append(3, 1)
            .commit();
        b.txn(3)
            .read_list(2, [2])
            .read_list(1, [])
            .append(4, 1)
            .commit();
        b.txn(4).read_list(3, [1]).read_list(4, [1]).commit();
        let h = b.build();
        let si = Checker::new(CheckOptions::snapshot_isolation()).check(&h);
        let ser = Checker::new(CheckOptions::serializable()).check(&h);
        assert!(si.ok(), "{}", si.summary());
        assert!(!ser.ok(), "{}", ser.summary());
        assert!(ser.anomaly_counts.contains_key(&AnomalyType::G2Item));
    }
}
