//! Indexes over an observation: key typing and the element → writer map
//! that recoverability (§4.2.3) depends on.

use elle_history::{Elem, History, Key, Mop, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// The datatype a key is used as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Append-only list (traceable).
    List,
    /// Read-write register.
    Register,
    /// Counter.
    Counter,
    /// Grow-only set.
    Set,
}

/// A single write occurrence: which transaction, where in it, and whether
/// it is that transaction's *final* write to the key (final writes install
/// versions; earlier ones are intermediate — §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRef {
    /// The writing transaction.
    pub txn: TxnId,
    /// Micro-op position within the transaction.
    pub mop: usize,
    /// Is this the transaction's last write to this key?
    pub final_for_key: bool,
    /// The writer's observed status.
    pub status: TxnStatus,
}

/// How each key is used, with conflicts detected.
///
/// Buildable in one shot ([`KeyTypes::infer`]) or incrementally
/// ([`KeyTypes::note_txn`]) — the streaming checker feeds transactions
/// as they arrive. `conflicts` is kept sorted by key, so batch and
/// incremental construction agree byte-for-byte no matter the order
/// evidence arrived in.
#[derive(Debug, Default)]
pub struct KeyTypes {
    /// Bitmask of noted [`DataType`]s per key (bit = discriminant).
    /// A set, not a last-writer slot, so the inferred type of a
    /// conflicted key is a function of *what* touched it, never of the
    /// order evidence arrived in.
    types: FxHashMap<Key, u8>,
    /// Keys used as more than one datatype (malformed workloads),
    /// sorted ascending.
    pub conflicts: Vec<Key>,
}

const DATATYPES: [DataType; 4] = [
    DataType::List,
    DataType::Register,
    DataType::Counter,
    DataType::Set,
];

fn type_bit(ty: DataType) -> u8 {
    1 << DATATYPES.iter().position(|t| *t == ty).expect("listed")
}

impl KeyTypes {
    /// An empty typing (for incremental construction).
    pub fn new() -> KeyTypes {
        KeyTypes::default()
    }

    /// Infer key types from write and observed-read shapes.
    pub fn infer(history: &History) -> KeyTypes {
        let mut kt = KeyTypes::default();
        for t in history.txns() {
            kt.note_txn(t);
        }
        kt
    }

    /// Fold one transaction's operations into the typing. Idempotent:
    /// re-noting a transaction (e.g. at completion, after its invocation
    /// was already noted) changes nothing.
    pub fn note_txn(&mut self, t: &elle_history::Transaction) {
        use elle_history::ReadValue;
        let note = |key: Key, ty: DataType, kt: &mut KeyTypes| {
            let mask = kt.types.entry(key).or_insert(0);
            *mask |= type_bit(ty);
            if mask.count_ones() > 1 {
                if let Err(at) = kt.conflicts.binary_search(&key) {
                    kt.conflicts.insert(at, key);
                }
            }
        };
        for m in &t.mops {
            match m {
                Mop::Append { key, .. } => note(*key, DataType::List, self),
                Mop::Write { key, .. } => note(*key, DataType::Register, self),
                Mop::Increment { key, .. } => note(*key, DataType::Counter, self),
                Mop::AddToSet { key, .. } => note(*key, DataType::Set, self),
                Mop::Read { key, value } => match value {
                    Some(ReadValue::List(_)) => note(*key, DataType::List, self),
                    Some(ReadValue::Register(_)) => note(*key, DataType::Register, self),
                    Some(ReadValue::Counter(_)) => note(*key, DataType::Counter, self),
                    Some(ReadValue::Set(_)) => note(*key, DataType::Set, self),
                    None => {}
                },
            }
        }
    }

    /// The inferred type of `key`, if any operation touched it
    /// decisively. Conflicted keys resolve to the first noted type in
    /// [`DataType`] declaration order (their inferences are unreliable
    /// either way; the checker warns about them).
    pub fn get(&self, key: Key) -> Option<DataType> {
        let mask = *self.types.get(&key)?;
        DATATYPES.iter().copied().find(|t| mask & type_bit(*t) != 0)
    }

    /// The raw type bitmask noted for `key` (0 if nothing touched it).
    pub fn mask_of(&self, key: Key) -> u8 {
        self.types.get(&key).copied().unwrap_or(0)
    }

    /// OR a previously observed bitmask back into the typing. Windowed
    /// checkers restore retired keys' masks this way: the evidence that
    /// established a key's type may be gone from the history, but the
    /// inferred type (and any conflict) must survive so partitions and
    /// warnings stay byte-identical to an uninterrupted run.
    pub fn preload_mask(&mut self, key: Key, mask: u8) {
        if mask == 0 {
            return;
        }
        let slot = self.types.entry(key).or_insert(0);
        *slot |= mask;
        if slot.count_ones() > 1 {
            if let Err(at) = self.conflicts.binary_search(&key) {
                self.conflicts.insert(at, key);
            }
        }
    }

    /// All keys of a given type.
    pub fn keys_of(&self, ty: DataType) -> Vec<Key> {
        let mut ks: Vec<Key> = self
            .types
            .keys()
            .copied()
            .filter(|k| self.get(*k) == Some(ty))
            .collect();
        ks.sort_unstable();
        ks
    }
}

/// The element → writer index for element-carrying writes (appends,
/// register writes, set adds).
///
/// Recoverability (§4.2.3): a version is recoverable when exactly one
/// observed write could have produced it. Duplicate `(key, element)` writes
/// destroy recoverability for that key; they are recorded and the affected
/// keys excluded from dependency inference.
///
/// **Key-partitioned**: instead of one global `(Key, Elem)` hash map
/// (whose probes go cold once the map outgrows L2), writers live in
/// per-key slabs — sorted `(Elem, WriteRef)` arrays reached through a
/// small key → slab map. The per-key spine scans of the datatype
/// drivers then resolve each element inside the key's own contiguous
/// postings, which stay L1/L2-resident for the duration of the scan.
/// Batch builds bulk-load each slab and sort it once; streaming ingest
/// appends to a bounded unsorted tail that is merged into the sorted
/// run when it fills.
#[derive(Debug, Default)]
pub struct ElemIndex {
    /// key → index into `slabs`.
    keys: FxHashMap<Key, u32>,
    slabs: Vec<KeySlab>,
    /// `(key, elem)` pairs written more than once, with all writers.
    pub duplicates: Vec<(Key, Elem, Vec<TxnId>)>,
    /// Distinct `(key, elem)` entries across all slabs.
    len: usize,
}

/// One key's element → writer postings: a sorted run plus a small
/// unsorted tail (streaming inserts land there; lookups scan it
/// linearly, and it merges into the run at [`TAIL_MAX`]).
#[derive(Debug, Default)]
struct KeySlab {
    sorted: Vec<(Elem, WriteRef)>,
    tail: Vec<(Elem, WriteRef)>,
}

/// Tail length at which a slab merges its unsorted tail into the
/// sorted run (amortizes streaming inserts without per-insert shifts).
const TAIL_MAX: usize = 64;

impl KeySlab {
    fn find_mut(&mut self, elem: Elem) -> Option<&mut (Elem, WriteRef)> {
        if let Ok(at) = self.sorted.binary_search_by_key(&elem, |&(e, _)| e) {
            return Some(&mut self.sorted[at]);
        }
        self.tail.iter_mut().find(|(e, _)| *e == elem)
    }

    fn find(&self, elem: Elem) -> Option<&WriteRef> {
        if let Ok(at) = self.sorted.binary_search_by_key(&elem, |&(e, _)| e) {
            return Some(&self.sorted[at].1);
        }
        self.tail.iter().find(|(e, _)| *e == elem).map(|(_, w)| w)
    }

    /// Merge the (duplicate-free, disjoint) tail into the sorted run.
    fn merge_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        self.tail.sort_unstable_by_key(|&(e, _)| e);
        let mut merged = Vec::with_capacity(self.sorted.len() + self.tail.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.sorted.len() && j < self.tail.len() {
            if self.sorted[i].0 < self.tail[j].0 {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(self.tail[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&self.tail[j..]);
        self.sorted = merged;
        self.tail.clear();
    }
}

impl ElemIndex {
    /// An empty index (for incremental construction).
    pub fn new() -> ElemIndex {
        ElemIndex::default()
    }

    fn slab_mut(&mut self, key: Key) -> &mut KeySlab {
        let next = self.slabs.len() as u32;
        let slot = *self.keys.entry(key).or_insert(next);
        if slot == next {
            self.slabs.push(KeySlab::default());
        }
        &mut self.slabs[slot as usize]
    }

    /// Build the index over every element-carrying write in the history:
    /// bulk-load each key's slab in write order, then sort and
    /// duplicate-scan each slab once.
    pub fn build(history: &History) -> ElemIndex {
        let mut idx = ElemIndex::default();
        // One reused last-write map cleared per transaction, so the
        // bulk build does no per-transaction allocation.
        let mut last_write: FxHashMap<Key, usize> = FxHashMap::default();
        for t in history.txns() {
            last_write.clear();
            for (i, m) in t.mops.iter().enumerate() {
                if m.is_write() {
                    last_write.insert(m.key(), i);
                }
            }
            for (i, k, e) in t.elem_writes() {
                let wref = WriteRef {
                    txn: t.id,
                    mop: i,
                    final_for_key: last_write.get(&k) == Some(&i),
                    status: t.status,
                };
                // Raw append; duplicates are resolved in the finish pass.
                idx.slab_mut(k).tail.push((e, wref));
            }
        }
        idx.finish_bulk();
        idx
    }

    /// Sort every bulk-loaded slab and resolve duplicates: within one
    /// element's group (stable sort = write order) the last writer wins
    /// the slot, and groups of two or more record a duplicates entry —
    /// exactly the semantics of inserting one write at a time.
    fn finish_bulk(&mut self) {
        let mut keys: Vec<(Key, u32)> = self.keys.iter().map(|(k, s)| (*k, *s)).collect();
        keys.sort_unstable();
        for (key, slot) in keys {
            let slab = &mut self.slabs[slot as usize];
            let mut raw = std::mem::take(&mut slab.tail);
            raw.sort_by_key(|&(e, _)| e); // stable: preserves write order
            let mut i = 0usize;
            while i < raw.len() {
                let e = raw[i].0;
                let mut j = i + 1;
                while j < raw.len() && raw[j].0 == e {
                    j += 1;
                }
                if j - i > 1 {
                    self.duplicates
                        .push((key, e, raw[i..j].iter().map(|(_, w)| w.txn).collect()));
                }
                slab.sorted.push(raw[j - 1]); // last writer wins the slot
                self.len += 1;
                i = j;
            }
        }
        // Keys were visited in sorted order and elements ascend within
        // a key, so `duplicates` is already sorted by `(key, elem)`.
        debug_assert!(self
            .duplicates
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    /// Drop the slabs of `retired` keys (sorted, deduplicated) — the
    /// windowed stream checker's retirement of keys that have gone
    /// quiescent. Their `(key, elem)` entries leave [`ElemIndex::len`]
    /// and their duplicate records are dropped; the caller must first
    /// fold any anomalies those records witnessed into its own
    /// retired-prefix stash.
    pub fn retire_keys(&mut self, retired: &[Key]) {
        debug_assert!(retired.windows(2).all(|w| w[0] < w[1]));
        if retired.is_empty() {
            return;
        }
        let mut slabs = std::mem::take(&mut self.slabs);
        let mut keys: Vec<(Key, u32)> = self.keys.drain().collect();
        keys.sort_unstable();
        let mut kept = Vec::with_capacity(slabs.len().saturating_sub(retired.len()));
        for (key, slot) in keys {
            let slab = std::mem::take(&mut slabs[slot as usize]);
            if retired.binary_search(&key).is_ok() {
                self.len -= slab.sorted.len() + slab.tail.len();
            } else {
                self.keys.insert(key, kept.len() as u32);
                kept.push(slab);
            }
        }
        self.slabs = kept;
        self.duplicates
            .retain(|(k, _, _)| retired.binary_search(k).is_err());
    }

    /// Bytes resident in the index's postings — deterministic (based on
    /// entry counts, not allocator capacities) so windowed residency
    /// metering reproduces across runs.
    pub fn resident_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(Elem, WriteRef)>();
        let postings: usize = self
            .slabs
            .iter()
            .map(|s| (s.sorted.len() + s.tail.len()) * entry)
            .sum();
        postings + self.keys.len() * (std::mem::size_of::<Key>() + std::mem::size_of::<u32>())
    }

    /// Index one transaction's element-carrying writes. Feed
    /// transactions in id order for duplicate writer lists to match a
    /// batch [`ElemIndex::build`] (the `duplicates` vector is kept
    /// sorted by `(key, elem)` either way).
    pub fn index_txn(&mut self, t: &elle_history::Transaction) {
        let mut last_write: FxHashMap<Key, usize> = FxHashMap::default();
        for (i, m) in t.mops.iter().enumerate() {
            if m.is_write() {
                last_write.insert(m.key(), i);
            }
        }
        for (i, k, e) in t.elem_writes() {
            let wref = WriteRef {
                txn: t.id,
                mop: i,
                final_for_key: last_write.get(&k) == Some(&i),
                status: t.status,
            };
            // Field-level borrows: the slab lives in `self.slabs`, the
            // duplicate bookkeeping in `self.duplicates`.
            let next = self.slabs.len() as u32;
            let slot = *self.keys.entry(k).or_insert(next);
            if slot == next {
                self.slabs.push(KeySlab::default());
            }
            let slab = &mut self.slabs[slot as usize];
            match slab.find_mut(e) {
                Some(slot) => {
                    let prev = slot.1;
                    slot.1 = wref; // last writer wins
                    match self
                        .duplicates
                        .binary_search_by_key(&(k, e), |d| (d.0, d.1))
                    {
                        Ok(at) => self.duplicates[at].2.push(t.id),
                        Err(at) => self.duplicates.insert(at, (k, e, vec![prev.txn, t.id])),
                    }
                }
                None => {
                    slab.tail.push((e, wref));
                    self.len += 1;
                    if slab.tail.len() >= TAIL_MAX {
                        slab.merge_tail();
                    }
                }
            }
        }
    }

    /// Update the recorded status of `t`'s writes after its outcome
    /// became known (streaming: a completion resolving an open
    /// invocation). Only entries still owned by `t` are touched.
    pub fn update_status(&mut self, t: &elle_history::Transaction) {
        for (_, k, e) in t.elem_writes() {
            if let Some(slot) = self.keys.get(&k).copied() {
                if let Some((_, w)) = self.slabs[slot as usize].find_mut(e) {
                    if w.txn == t.id {
                        w.status = t.status;
                    }
                }
            }
        }
    }

    /// The unique writer of `(key, elem)`, if recorded — one small map
    /// probe to the key's slab, then a binary search of its sorted
    /// postings.
    ///
    /// When duplicates exist the last writer won the slot; callers must
    /// consult [`ElemIndex::duplicates`] / [`ElemIndex::key_is_recoverable`]
    /// before trusting this for inference.
    pub fn writer(&self, key: Key, elem: Elem) -> Option<WriteRef> {
        let slot = *self.keys.get(&key)?;
        self.slabs[slot as usize].find(elem).copied()
    }

    /// A borrowed view of one key's postings: hoists the key → slab
    /// probe out of per-element loops, so a spine scan resolves every
    /// element inside the key's own (cache-resident) sorted array.
    pub fn key_writers(&self, key: Key) -> KeyWriters<'_> {
        KeyWriters {
            slab: self.keys.get(&key).map(|slot| &self.slabs[*slot as usize]),
        }
    }

    /// Is inference on `key` safe (no duplicate writes observed)?
    pub fn key_is_recoverable(&self, key: Key) -> bool {
        !self.duplicates.iter().any(|(k, _, _)| *k == key)
    }

    /// Number of indexed writes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A borrowed single-key view of an [`ElemIndex`] — see
/// [`ElemIndex::key_writers`].
#[derive(Debug, Clone, Copy)]
pub struct KeyWriters<'a> {
    slab: Option<&'a KeySlab>,
}

impl KeyWriters<'_> {
    /// The unique writer of `elem` under this view's key, if recorded.
    pub fn writer(&self, elem: Elem) -> Option<WriteRef> {
        self.slab.and_then(|s| s.find(elem).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    #[test]
    fn infers_types_from_writes_and_reads() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .write(2, 1)
            .increment(3, 1)
            .add_to_set(4, 1)
            .commit();
        b.txn(1).read_list(5, [1]).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.get(Key(1)), Some(DataType::List));
        assert_eq!(kt.get(Key(2)), Some(DataType::Register));
        assert_eq!(kt.get(Key(3)), Some(DataType::Counter));
        assert_eq!(kt.get(Key(4)), Some(DataType::Set));
        assert_eq!(kt.get(Key(5)), Some(DataType::List));
        assert_eq!(kt.get(Key(9)), None);
        assert!(kt.conflicts.is_empty());
        assert_eq!(kt.keys_of(DataType::List), vec![Key(1), Key(5)]);
    }

    #[test]
    fn detects_type_conflicts() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(1, 2).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.conflicts, vec![Key(1)]);
    }

    #[test]
    fn unresolved_reads_do_not_type_keys() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read(7).commit();
        let h = b.build();
        assert_eq!(KeyTypes::infer(&h).get(Key(7)), None);
    }

    #[test]
    fn elem_index_marks_final_writes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).append(2, 3).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.writer(Key(1), Elem(1)).unwrap().final_for_key);
        assert!(idx.writer(Key(1), Elem(2)).unwrap().final_for_key);
        assert!(idx.writer(Key(2), Elem(3)).unwrap().final_for_key);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn elem_index_records_status() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).indeterminate();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert_eq!(
            idx.writer(Key(1), Elem(1)).unwrap().status,
            TxnStatus::Aborted
        );
        assert_eq!(
            idx.writer(Key(1), Elem(2)).unwrap().status,
            TxnStatus::Indeterminate
        );
    }

    #[test]
    fn duplicates_break_recoverability() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).commit();
        b.txn(1).append(1, 7).commit();
        b.txn(2).append(2, 9).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.key_is_recoverable(Key(1)));
        assert!(idx.key_is_recoverable(Key(2)));
        assert_eq!(idx.duplicates.len(), 1);
        assert_eq!(idx.duplicates[0].0, Key(1));
        assert_eq!(idx.duplicates[0].2, vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn retire_keys_drops_slabs_duplicates_and_len() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(2, 2).commit();
        b.txn(1).append(1, 1).append(3, 3).commit(); // duplicate (1, 1)
        let h = b.build();
        let mut idx = ElemIndex::build(&h);
        assert_eq!(idx.len(), 3, "duplicate writers share one slot");
        assert_eq!(idx.duplicates.len(), 1);
        let before = idx.resident_bytes();

        idx.retire_keys(&[Key(1)]);
        assert_eq!(idx.len(), 2, "key 1's entry left the count");
        assert!(idx.duplicates.is_empty(), "retired keys drop duplicates");
        assert!(idx.writer(Key(1), Elem(1)).is_none());
        assert!(idx.writer(Key(2), Elem(2)).is_some(), "slab remap intact");
        assert!(idx.writer(Key(3), Elem(3)).is_some());
        assert!(idx.resident_bytes() < before);

        // Retiring nothing is a no-op.
        idx.retire_keys(&[]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn register_and_set_writes_indexed_too() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).add_to_set(2, 6).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(idx.writer(Key(1), Elem(5)).is_some());
        assert!(idx.writer(Key(2), Elem(6)).is_some());
    }
}
