//! Indexes over an observation: key typing and the element → writer map
//! that recoverability (§4.2.3) depends on.

use elle_history::{Elem, History, Key, Mop, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// The datatype a key is used as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Append-only list (traceable).
    List,
    /// Read-write register.
    Register,
    /// Counter.
    Counter,
    /// Grow-only set.
    Set,
}

/// A single write occurrence: which transaction, where in it, and whether
/// it is that transaction's *final* write to the key (final writes install
/// versions; earlier ones are intermediate — §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRef {
    /// The writing transaction.
    pub txn: TxnId,
    /// Micro-op position within the transaction.
    pub mop: usize,
    /// Is this the transaction's last write to this key?
    pub final_for_key: bool,
    /// The writer's observed status.
    pub status: TxnStatus,
}

/// How each key is used, with conflicts detected.
#[derive(Debug, Default)]
pub struct KeyTypes {
    types: FxHashMap<Key, DataType>,
    /// Keys used as more than one datatype (malformed workloads).
    pub conflicts: Vec<Key>,
}

impl KeyTypes {
    /// Infer key types from write and observed-read shapes.
    pub fn infer(history: &History) -> KeyTypes {
        use elle_history::ReadValue;
        let mut kt = KeyTypes::default();
        let note = |key: Key, ty: DataType, kt: &mut KeyTypes| match kt.types.insert(key, ty) {
            Some(prev) if prev != ty && !kt.conflicts.contains(&key) => {
                kt.conflicts.push(key);
            }
            _ => {}
        };
        for t in history.txns() {
            for m in &t.mops {
                match m {
                    Mop::Append { key, .. } => note(*key, DataType::List, &mut kt),
                    Mop::Write { key, .. } => note(*key, DataType::Register, &mut kt),
                    Mop::Increment { key, .. } => note(*key, DataType::Counter, &mut kt),
                    Mop::AddToSet { key, .. } => note(*key, DataType::Set, &mut kt),
                    Mop::Read { key, value } => match value {
                        Some(ReadValue::List(_)) => note(*key, DataType::List, &mut kt),
                        Some(ReadValue::Register(_)) => note(*key, DataType::Register, &mut kt),
                        Some(ReadValue::Counter(_)) => note(*key, DataType::Counter, &mut kt),
                        Some(ReadValue::Set(_)) => note(*key, DataType::Set, &mut kt),
                        None => {}
                    },
                }
            }
        }
        kt
    }

    /// The inferred type of `key`, if any operation touched it decisively.
    pub fn get(&self, key: Key) -> Option<DataType> {
        self.types.get(&key).copied()
    }

    /// All keys of a given type.
    pub fn keys_of(&self, ty: DataType) -> Vec<Key> {
        let mut ks: Vec<Key> = self
            .types
            .iter()
            .filter_map(|(k, t)| (*t == ty).then_some(*k))
            .collect();
        ks.sort_unstable();
        ks
    }
}

/// The element → writer index for element-carrying writes (appends,
/// register writes, set adds).
///
/// Recoverability (§4.2.3): a version is recoverable when exactly one
/// observed write could have produced it. Duplicate `(key, element)` writes
/// destroy recoverability for that key; they are recorded and the affected
/// keys excluded from dependency inference.
#[derive(Debug, Default)]
pub struct ElemIndex {
    writers: FxHashMap<(Key, Elem), WriteRef>,
    /// `(key, elem)` pairs written more than once, with all writers.
    pub duplicates: Vec<(Key, Elem, Vec<TxnId>)>,
}

impl ElemIndex {
    /// Build the index over every element-carrying write in the history.
    pub fn build(history: &History) -> ElemIndex {
        let mut idx = ElemIndex::default();
        idx.writers.reserve(history.mop_count());
        let mut dup_map: FxHashMap<(Key, Elem), Vec<TxnId>> = FxHashMap::default();

        // Last write position per key, to mark final writes — one reused
        // map cleared per transaction, so no per-transaction allocation
        // and O(1) lookups even for arbitrarily wide transactions.
        let mut last_write: FxHashMap<Key, usize> = FxHashMap::default();
        for t in history.txns() {
            last_write.clear();
            for (i, m) in t.mops.iter().enumerate() {
                if m.is_write() {
                    last_write.insert(m.key(), i);
                }
            }
            for (i, k, e) in t.elem_writes() {
                let wref = WriteRef {
                    txn: t.id,
                    mop: i,
                    final_for_key: last_write.get(&k) == Some(&i),
                    status: t.status,
                };
                match idx.writers.insert((k, e), wref) {
                    None => {}
                    Some(prev) => {
                        dup_map
                            .entry((k, e))
                            .or_insert_with(|| vec![prev.txn])
                            .push(t.id);
                    }
                }
            }
        }
        let mut dups: Vec<(Key, Elem, Vec<TxnId>)> = dup_map
            .into_iter()
            .map(|((k, e), txns)| (k, e, txns))
            .collect();
        dups.sort_unstable_by_key(|(k, e, _)| (*k, *e));
        idx.duplicates = dups;
        idx
    }

    /// The unique writer of `(key, elem)`, if recorded.
    ///
    /// When duplicates exist the last writer won the map slot; callers must
    /// consult [`ElemIndex::duplicates`] / [`ElemIndex::key_is_recoverable`]
    /// before trusting this for inference.
    pub fn writer(&self, key: Key, elem: Elem) -> Option<WriteRef> {
        self.writers.get(&(key, elem)).copied()
    }

    /// Is inference on `key` safe (no duplicate writes observed)?
    pub fn key_is_recoverable(&self, key: Key) -> bool {
        !self.duplicates.iter().any(|(k, _, _)| *k == key)
    }

    /// Number of indexed writes.
    pub fn len(&self) -> usize {
        self.writers.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.writers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    #[test]
    fn infers_types_from_writes_and_reads() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .write(2, 1)
            .increment(3, 1)
            .add_to_set(4, 1)
            .commit();
        b.txn(1).read_list(5, [1]).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.get(Key(1)), Some(DataType::List));
        assert_eq!(kt.get(Key(2)), Some(DataType::Register));
        assert_eq!(kt.get(Key(3)), Some(DataType::Counter));
        assert_eq!(kt.get(Key(4)), Some(DataType::Set));
        assert_eq!(kt.get(Key(5)), Some(DataType::List));
        assert_eq!(kt.get(Key(9)), None);
        assert!(kt.conflicts.is_empty());
        assert_eq!(kt.keys_of(DataType::List), vec![Key(1), Key(5)]);
    }

    #[test]
    fn detects_type_conflicts() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(1, 2).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.conflicts, vec![Key(1)]);
    }

    #[test]
    fn unresolved_reads_do_not_type_keys() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read(7).commit();
        let h = b.build();
        assert_eq!(KeyTypes::infer(&h).get(Key(7)), None);
    }

    #[test]
    fn elem_index_marks_final_writes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).append(2, 3).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.writer(Key(1), Elem(1)).unwrap().final_for_key);
        assert!(idx.writer(Key(1), Elem(2)).unwrap().final_for_key);
        assert!(idx.writer(Key(2), Elem(3)).unwrap().final_for_key);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn elem_index_records_status() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).indeterminate();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert_eq!(
            idx.writer(Key(1), Elem(1)).unwrap().status,
            TxnStatus::Aborted
        );
        assert_eq!(
            idx.writer(Key(1), Elem(2)).unwrap().status,
            TxnStatus::Indeterminate
        );
    }

    #[test]
    fn duplicates_break_recoverability() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).commit();
        b.txn(1).append(1, 7).commit();
        b.txn(2).append(2, 9).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.key_is_recoverable(Key(1)));
        assert!(idx.key_is_recoverable(Key(2)));
        assert_eq!(idx.duplicates.len(), 1);
        assert_eq!(idx.duplicates[0].0, Key(1));
        assert_eq!(idx.duplicates[0].2, vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn register_and_set_writes_indexed_too() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).add_to_set(2, 6).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(idx.writer(Key(1), Elem(5)).is_some());
        assert!(idx.writer(Key(2), Elem(6)).is_some());
    }
}
