//! Indexes over an observation: key typing and the element → writer map
//! that recoverability (§4.2.3) depends on.

use elle_history::{Elem, History, Key, Mop, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// The datatype a key is used as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Append-only list (traceable).
    List,
    /// Read-write register.
    Register,
    /// Counter.
    Counter,
    /// Grow-only set.
    Set,
}

/// A single write occurrence: which transaction, where in it, and whether
/// it is that transaction's *final* write to the key (final writes install
/// versions; earlier ones are intermediate — §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRef {
    /// The writing transaction.
    pub txn: TxnId,
    /// Micro-op position within the transaction.
    pub mop: usize,
    /// Is this the transaction's last write to this key?
    pub final_for_key: bool,
    /// The writer's observed status.
    pub status: TxnStatus,
}

/// How each key is used, with conflicts detected.
///
/// Buildable in one shot ([`KeyTypes::infer`]) or incrementally
/// ([`KeyTypes::note_txn`]) — the streaming checker feeds transactions
/// as they arrive. `conflicts` is kept sorted by key, so batch and
/// incremental construction agree byte-for-byte no matter the order
/// evidence arrived in.
#[derive(Debug, Default)]
pub struct KeyTypes {
    /// Bitmask of noted [`DataType`]s per key (bit = discriminant).
    /// A set, not a last-writer slot, so the inferred type of a
    /// conflicted key is a function of *what* touched it, never of the
    /// order evidence arrived in.
    types: FxHashMap<Key, u8>,
    /// Keys used as more than one datatype (malformed workloads),
    /// sorted ascending.
    pub conflicts: Vec<Key>,
}

const DATATYPES: [DataType; 4] = [
    DataType::List,
    DataType::Register,
    DataType::Counter,
    DataType::Set,
];

fn type_bit(ty: DataType) -> u8 {
    1 << DATATYPES.iter().position(|t| *t == ty).expect("listed")
}

impl KeyTypes {
    /// An empty typing (for incremental construction).
    pub fn new() -> KeyTypes {
        KeyTypes::default()
    }

    /// Infer key types from write and observed-read shapes.
    pub fn infer(history: &History) -> KeyTypes {
        let mut kt = KeyTypes::default();
        for t in history.txns() {
            kt.note_txn(t);
        }
        kt
    }

    /// Fold one transaction's operations into the typing. Idempotent:
    /// re-noting a transaction (e.g. at completion, after its invocation
    /// was already noted) changes nothing.
    pub fn note_txn(&mut self, t: &elle_history::Transaction) {
        use elle_history::ReadValue;
        let note = |key: Key, ty: DataType, kt: &mut KeyTypes| {
            let mask = kt.types.entry(key).or_insert(0);
            *mask |= type_bit(ty);
            if mask.count_ones() > 1 {
                if let Err(at) = kt.conflicts.binary_search(&key) {
                    kt.conflicts.insert(at, key);
                }
            }
        };
        for m in &t.mops {
            match m {
                Mop::Append { key, .. } => note(*key, DataType::List, self),
                Mop::Write { key, .. } => note(*key, DataType::Register, self),
                Mop::Increment { key, .. } => note(*key, DataType::Counter, self),
                Mop::AddToSet { key, .. } => note(*key, DataType::Set, self),
                Mop::Read { key, value } => match value {
                    Some(ReadValue::List(_)) => note(*key, DataType::List, self),
                    Some(ReadValue::Register(_)) => note(*key, DataType::Register, self),
                    Some(ReadValue::Counter(_)) => note(*key, DataType::Counter, self),
                    Some(ReadValue::Set(_)) => note(*key, DataType::Set, self),
                    None => {}
                },
            }
        }
    }

    /// The inferred type of `key`, if any operation touched it
    /// decisively. Conflicted keys resolve to the first noted type in
    /// [`DataType`] declaration order (their inferences are unreliable
    /// either way; the checker warns about them).
    pub fn get(&self, key: Key) -> Option<DataType> {
        let mask = *self.types.get(&key)?;
        DATATYPES.iter().copied().find(|t| mask & type_bit(*t) != 0)
    }

    /// All keys of a given type.
    pub fn keys_of(&self, ty: DataType) -> Vec<Key> {
        let mut ks: Vec<Key> = self
            .types
            .keys()
            .copied()
            .filter(|k| self.get(*k) == Some(ty))
            .collect();
        ks.sort_unstable();
        ks
    }
}

/// The element → writer index for element-carrying writes (appends,
/// register writes, set adds).
///
/// Recoverability (§4.2.3): a version is recoverable when exactly one
/// observed write could have produced it. Duplicate `(key, element)` writes
/// destroy recoverability for that key; they are recorded and the affected
/// keys excluded from dependency inference.
#[derive(Debug, Default)]
pub struct ElemIndex {
    writers: FxHashMap<(Key, Elem), WriteRef>,
    /// `(key, elem)` pairs written more than once, with all writers.
    pub duplicates: Vec<(Key, Elem, Vec<TxnId>)>,
}

impl ElemIndex {
    /// An empty index (for incremental construction).
    pub fn new() -> ElemIndex {
        ElemIndex::default()
    }

    /// Build the index over every element-carrying write in the history.
    pub fn build(history: &History) -> ElemIndex {
        let mut idx = ElemIndex::default();
        idx.writers.reserve(history.mop_count());
        // One reused last-write map cleared per transaction, so the
        // bulk build does no per-transaction allocation.
        let mut last_write: FxHashMap<Key, usize> = FxHashMap::default();
        for t in history.txns() {
            idx.index_txn_with(t, &mut last_write);
        }
        idx
    }

    /// Index one transaction's element-carrying writes. Feed
    /// transactions in id order for duplicate writer lists to match a
    /// batch [`ElemIndex::build`] (the `duplicates` vector is kept
    /// sorted by `(key, elem)` either way).
    pub fn index_txn(&mut self, t: &elle_history::Transaction) {
        self.index_txn_with(t, &mut FxHashMap::default());
    }

    fn index_txn_with(
        &mut self,
        t: &elle_history::Transaction,
        last_write: &mut FxHashMap<Key, usize>,
    ) {
        // Last write position per key, to mark final writes.
        last_write.clear();
        for (i, m) in t.mops.iter().enumerate() {
            if m.is_write() {
                last_write.insert(m.key(), i);
            }
        }
        for (i, k, e) in t.elem_writes() {
            let wref = WriteRef {
                txn: t.id,
                mop: i,
                final_for_key: last_write.get(&k) == Some(&i),
                status: t.status,
            };
            match self.writers.insert((k, e), wref) {
                None => {}
                Some(prev) => match self
                    .duplicates
                    .binary_search_by_key(&(k, e), |d| (d.0, d.1))
                {
                    Ok(at) => self.duplicates[at].2.push(t.id),
                    Err(at) => self.duplicates.insert(at, (k, e, vec![prev.txn, t.id])),
                },
            }
        }
    }

    /// Update the recorded status of `t`'s writes after its outcome
    /// became known (streaming: a completion resolving an open
    /// invocation). Only entries still owned by `t` are touched.
    pub fn update_status(&mut self, t: &elle_history::Transaction) {
        for (_, k, e) in t.elem_writes() {
            if let Some(w) = self.writers.get_mut(&(k, e)) {
                if w.txn == t.id {
                    w.status = t.status;
                }
            }
        }
    }

    /// The unique writer of `(key, elem)`, if recorded.
    ///
    /// When duplicates exist the last writer won the map slot; callers must
    /// consult [`ElemIndex::duplicates`] / [`ElemIndex::key_is_recoverable`]
    /// before trusting this for inference.
    pub fn writer(&self, key: Key, elem: Elem) -> Option<WriteRef> {
        self.writers.get(&(key, elem)).copied()
    }

    /// Is inference on `key` safe (no duplicate writes observed)?
    pub fn key_is_recoverable(&self, key: Key) -> bool {
        !self.duplicates.iter().any(|(k, _, _)| *k == key)
    }

    /// Number of indexed writes.
    pub fn len(&self) -> usize {
        self.writers.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.writers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::HistoryBuilder;

    #[test]
    fn infers_types_from_writes_and_reads() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .append(1, 1)
            .write(2, 1)
            .increment(3, 1)
            .add_to_set(4, 1)
            .commit();
        b.txn(1).read_list(5, [1]).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.get(Key(1)), Some(DataType::List));
        assert_eq!(kt.get(Key(2)), Some(DataType::Register));
        assert_eq!(kt.get(Key(3)), Some(DataType::Counter));
        assert_eq!(kt.get(Key(4)), Some(DataType::Set));
        assert_eq!(kt.get(Key(5)), Some(DataType::List));
        assert_eq!(kt.get(Key(9)), None);
        assert!(kt.conflicts.is_empty());
        assert_eq!(kt.keys_of(DataType::List), vec![Key(1), Key(5)]);
    }

    #[test]
    fn detects_type_conflicts() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).write(1, 2).commit();
        let h = b.build();
        let kt = KeyTypes::infer(&h);
        assert_eq!(kt.conflicts, vec![Key(1)]);
    }

    #[test]
    fn unresolved_reads_do_not_type_keys() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read(7).commit();
        let h = b.build();
        assert_eq!(KeyTypes::infer(&h).get(Key(7)), None);
    }

    #[test]
    fn elem_index_marks_final_writes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).append(2, 3).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.writer(Key(1), Elem(1)).unwrap().final_for_key);
        assert!(idx.writer(Key(1), Elem(2)).unwrap().final_for_key);
        assert!(idx.writer(Key(2), Elem(3)).unwrap().final_for_key);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn elem_index_records_status() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).indeterminate();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert_eq!(
            idx.writer(Key(1), Elem(1)).unwrap().status,
            TxnStatus::Aborted
        );
        assert_eq!(
            idx.writer(Key(1), Elem(2)).unwrap().status,
            TxnStatus::Indeterminate
        );
    }

    #[test]
    fn duplicates_break_recoverability() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).commit();
        b.txn(1).append(1, 7).commit();
        b.txn(2).append(2, 9).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(!idx.key_is_recoverable(Key(1)));
        assert!(idx.key_is_recoverable(Key(2)));
        assert_eq!(idx.duplicates.len(), 1);
        assert_eq!(idx.duplicates[0].0, Key(1));
        assert_eq!(idx.duplicates[0].2, vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn register_and_set_writes_indexed_too() {
        let mut b = HistoryBuilder::new();
        b.txn(0).write(1, 5).add_to_set(2, 6).commit();
        let h = b.build();
        let idx = ElemIndex::build(&h);
        assert!(idx.writer(Key(1), Elem(5)).is_some());
        assert!(idx.writer(Key(2), Elem(6)).is_some());
    }
}
