//! Counter analysis (§3 of the paper) — deliberately modest.
//!
//! Counters are traceability's worst case: any non-trivial increment
//! history is non-recoverable, because we cannot tell *which* increment
//! produced a given value. What survives:
//!
//! * **rr ordering**: when every increment is positive, versions are
//!   monotonically increasing, so committed reads order by value;
//! * **bounds checking**: a read below 0 or above the sum of all positive
//!   increments can never have been produced — a garbage read;
//! * **internal consistency**: within one transaction, a read must equal
//!   the previous read plus the transaction's own increments since.
//!
//! Like the recoverable datatypes, the analysis is split into a
//! transaction-major internal pass, a **gather** phase partitioning the
//! (scoped) transactions by key, and a per-key **finalize** — so the
//! streaming checker can re-analyze only the keys an epoch touched and
//! cache everything else.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::datatype::GatherStats;
use crate::deps::DepGraph;
use crate::gather::{GatherBuf, KeySlots};
use elle_history::{History, Key, Mop, ReadValue, TxnId, TxnStatus};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Result of the counter analysis.
#[derive(Debug, Default)]
pub struct CounterAnalysis {
    /// Inferred dependency edges (`rr` only).
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
    /// Gather-phase cost (time + peak flat-buffer bytes).
    pub gather: GatherStats,
}

/// One counter-key event from the flat gather scan.
#[derive(Debug, Clone, Copy)]
pub enum CounterOcc {
    /// An increment (any status); `may_commit` mirrors
    /// `TxnStatus::may_have_committed` for the bound computation.
    Inc {
        /// The increment amount.
        amount: i64,
        /// Whether the incrementing transaction may have committed.
        may_commit: bool,
    },
    /// A committed read `(txn, value)`.
    Read(TxnId, i64),
}

/// Everything the per-key pass needs about one counter key.
#[derive(Debug)]
pub struct CounterKeyData {
    /// Every increment so far was strictly positive.
    all_positive: bool,
    /// Sum of positive increments by may-have-committed transactions.
    max_sum: i64,
    /// Committed reads `(txn, value)`, in invocation order.
    reads: Vec<(TxnId, i64)>,
}

impl Default for CounterKeyData {
    fn default() -> Self {
        CounterKeyData {
            // Vacuously true until a non-positive increment shows up.
            all_positive: true,
            max_sum: 0,
            reads: Vec::new(),
        }
    }
}

impl CounterKeyData {
    /// Fold one key's occurrence run into the per-key aggregate —
    /// byte-identical to what the retained hash-map gather accumulated.
    pub fn from_occs(occs: &[CounterOcc]) -> Self {
        let mut d = CounterKeyData::default();
        for occ in occs {
            match occ {
                CounterOcc::Inc { amount, may_commit } => {
                    d.all_positive = d.all_positive && *amount > 0;
                    if *may_commit && *amount > 0 {
                        d.max_sum += amount;
                    }
                }
                CounterOcc::Read(t, v) => d.reads.push((*t, *v)),
            }
        }
        d
    }
}

/// Scan the given transactions' counter operations into the flat gather
/// buffer, one `(slot, occurrence)` tuple per relevant micro-op.
pub fn gather<'h>(
    txns: impl Iterator<Item = &'h elle_history::Transaction>,
    keys: &KeySlots,
    buf: &mut GatherBuf<CounterOcc>,
) {
    for t in txns {
        for m in &t.mops {
            match m {
                Mop::Increment { key, amount } => {
                    if let Some(slot) = keys.slot_of(*key) {
                        buf.push(
                            slot,
                            CounterOcc::Inc {
                                amount: *amount,
                                may_commit: t.status.may_have_committed(),
                            },
                        );
                    }
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Counter(v)),
                } if t.status == TxnStatus::Committed => {
                    if let Some(slot) = keys.slot_of(*key) {
                        buf.push(slot, CounterOcc::Read(t.id, *v));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Analyze one counter key: bounds-check its reads and derive the `rr`
/// chain. Returns `(anomalies, edges)` in emission order.
pub fn analyze_key(
    history: &History,
    key: Key,
    data: &CounterKeyData,
) -> (Vec<Anomaly>, Vec<(TxnId, TxnId, Witness)>) {
    let mut anomalies = Vec::new();
    let mut edges = Vec::new();
    if data.reads.is_empty() {
        return (anomalies, edges);
    }
    if !data.all_positive {
        // Mixed-sign increments: no ordering or bounds inference.
        return (anomalies, edges);
    }
    let bound = data.max_sum;
    let mut reads = data.reads.clone();
    for (t, v) in &reads {
        if *v < 0 || *v > bound {
            anomalies.push(Anomaly {
                typ: AnomalyType::GarbageRead,
                txns: vec![*t],
                key: Some(key),
                steps: vec![],
                explanation: format!(
                    "{}\n  read {v} of counter {key}, outside the reachable range \
                     [0, {bound}]",
                    history.get(*t).to_notation()
                ),
            });
        }
    }
    // rr chain over distinct observed values.
    reads.sort_by_key(|(_, v)| *v);
    reads.dedup();
    for w in reads.windows(2) {
        let ((ta, va), (tb, vb)) = (w[0], w[1]);
        if va < vb && ta != tb {
            edges.push((ta, tb, Witness::Rr { key }));
        }
    }
    (anomalies, edges)
}

/// Run the analysis over the counter keys.
pub fn analyze(history: &History, counter_keys: &[Key]) -> CounterAnalysis {
    let mut out = CounterAnalysis {
        deps: DepGraph::with_txns(history.len()),
        ..Default::default()
    };
    let keys: KeySlots = counter_keys.iter().copied().collect();

    out.anomalies
        .append(&mut internal_anomalies(history.txns().iter(), &keys));

    let start = Instant::now();
    // `CounterOcc` is `'static` (it carries no history references), so
    // the items side recycles through the typed buffer pool.
    let mut buf = GatherBuf::new_pooled();
    gather(history.txns().iter(), &keys, &mut buf);
    let buf_bytes = buf.footprint_bytes();
    let grouped = buf.group_pooled(keys.len());
    out.gather = GatherStats {
        secs: start.elapsed().as_secs_f64(),
        buf_bytes: buf_bytes.max(grouped.footprint_bytes()),
    };
    for slot in grouped.occupied() {
        let key = keys.key(slot);
        let data = CounterKeyData::from_occs(grouped.run(slot));
        let (mut anomalies, edges) = analyze_key(history, key, &data);
        out.anomalies.append(&mut anomalies);
        for (a, b, w) in edges {
            out.deps.add(a, b, w);
        }
    }
    grouped.recycle();
    out.deps.build();
    out
}

/// Internal consistency: read = previous read + own increments since.
/// Transaction-major over the given scope, so the streaming checker can
/// run it on just an epoch's new transactions.
pub fn internal_anomalies<'h>(
    txns: impl Iterator<Item = &'h elle_history::Transaction>,
    keys: &KeySlots,
) -> Vec<Anomaly> {
    let mut out = Vec::new();
    for t in txns {
        let mut base: FxHashMap<Key, i64> = FxHashMap::default(); // last read
        let mut delta: FxHashMap<Key, i64> = FxHashMap::default(); // own incs since
        for m in &t.mops {
            match m {
                Mop::Increment { key, amount } if keys.contains(*key) => {
                    *delta.entry(*key).or_insert(0) += amount;
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Counter(v)),
                } if keys.contains(*key) => {
                    if let Some(prev) = base.get(key) {
                        let expected = prev + delta.get(key).copied().unwrap_or(0);
                        if *v != expected {
                            out.push(Anomaly {
                                typ: AnomalyType::Internal,
                                txns: vec![t.id],
                                key: Some(*key),
                                steps: vec![],
                                explanation: format!(
                                    "{}\n  read {v} of counter {key}, but prior operations \
                                     imply {expected}",
                                    t.to_notation()
                                ),
                            });
                        }
                    }
                    base.insert(*key, *v);
                    delta.insert(*key, 0);
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeClass;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> CounterAnalysis {
        let kt = KeyTypes::infer(h);
        analyze(h, &kt.keys_of(DataType::Counter))
    }

    fn types(a: &CounterAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn rr_ordering_by_value() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 1).commit();
        b.txn(1).increment(1, 1).commit();
        let t2 = b.txn(2).read_counter(1, 1).commit();
        let t3 = b.txn(3).read_counter(1, 2).commit();
        let a = run(&b.build());
        assert!(a.deps.edge_mask(t2.0, t3.0).contains(EdgeClass::Rr));
        assert!(!a.deps.edge_mask(t3.0, t2.0).contains(EdgeClass::Rr));
    }

    #[test]
    fn out_of_range_read_is_garbage() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 2).commit();
        b.txn(1).read_counter(1, 5).commit();
        b.txn(2).read_counter(1, -1).commit();
        let a = run(&b.build());
        assert_eq!(
            a.anomalies
                .iter()
                .filter(|x| x.typ == AnomalyType::GarbageRead)
                .count(),
            2
        );
    }

    #[test]
    fn aborted_increments_do_not_raise_bound() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 2).commit();
        b.txn(1).increment(1, 10).abort();
        b.txn(2).read_counter(1, 12).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
    }

    #[test]
    fn mixed_sign_disables_inference() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 5).commit();
        b.txn(1).increment(1, -3).commit();
        b.txn(2).read_counter(1, 99).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty());
        assert_eq!(a.deps.edge_count(), 0);
    }

    #[test]
    fn internal_inconsistency() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .read_counter(1, 0)
            .increment(1, 2)
            .read_counter(1, 5)
            .commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn internal_consistency_holds() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .read_counter(1, 0)
            .increment(1, 2)
            .read_counter(1, 2)
            .commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }
}
