//! Counter analysis (§3 of the paper) — deliberately modest.
//!
//! Counters are traceability's worst case: any non-trivial increment
//! history is non-recoverable, because we cannot tell *which* increment
//! produced a given value. What survives:
//!
//! * **rr ordering**: when every increment is positive, versions are
//!   monotonically increasing, so committed reads order by value;
//! * **bounds checking**: a read below 0 or above the sum of all positive
//!   increments can never have been produced — a garbage read;
//! * **internal consistency**: within one transaction, a read must equal
//!   the previous read plus the transaction's own increments since.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::deps::DepGraph;
use elle_history::{History, Key, Mop, ReadValue, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};

/// Result of the counter analysis.
#[derive(Debug, Default)]
pub struct CounterAnalysis {
    /// Inferred dependency edges (`rr` only).
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
}

/// Run the analysis over the counter keys.
pub fn analyze(history: &History, counter_keys: &[Key]) -> CounterAnalysis {
    let mut out = CounterAnalysis {
        deps: DepGraph::with_txns(history.len()),
        ..Default::default()
    };
    let key_set: FxHashSet<Key> = counter_keys.iter().copied().collect();

    check_internal(history, &key_set, &mut out);

    // Sum of positive increments and positivity per key (over txns that may
    // have committed — aborted increments can't contribute to versions).
    let mut all_positive: FxHashMap<Key, bool> = FxHashMap::default();
    let mut max_sum: FxHashMap<Key, i64> = FxHashMap::default();
    let mut reads_by_key: FxHashMap<Key, Vec<(TxnId, i64)>> = FxHashMap::default();
    for t in history.txns() {
        for m in &t.mops {
            match m {
                Mop::Increment { key, amount } if key_set.contains(key) => {
                    let pos = all_positive.entry(*key).or_insert(true);
                    *pos = *pos && *amount > 0;
                    if t.status.may_have_committed() && *amount > 0 {
                        *max_sum.entry(*key).or_insert(0) += amount;
                    }
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Counter(v)),
                } if key_set.contains(key) && t.status == TxnStatus::Committed => {
                    reads_by_key.entry(*key).or_default().push((t.id, *v));
                }
                _ => {}
            }
        }
    }

    let mut keys: Vec<Key> = reads_by_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        if !all_positive.get(&key).copied().unwrap_or(true) {
            // Mixed-sign increments: no ordering or bounds inference.
            continue;
        }
        let bound = max_sum.get(&key).copied().unwrap_or(0);
        let mut reads = reads_by_key[&key].clone();
        for (t, v) in &reads {
            if *v < 0 || *v > bound {
                out.anomalies.push(Anomaly {
                    typ: AnomalyType::GarbageRead,
                    txns: vec![*t],
                    key: Some(key),
                    steps: vec![],
                    explanation: format!(
                        "{}\n  read {v} of counter {key}, outside the reachable range \
                         [0, {bound}]",
                        history.get(*t).to_notation()
                    ),
                });
            }
        }
        // rr chain over distinct observed values.
        reads.sort_by_key(|(_, v)| *v);
        reads.dedup();
        for w in reads.windows(2) {
            let ((ta, va), (tb, vb)) = (w[0], w[1]);
            if va < vb && ta != tb {
                out.deps.add(ta, tb, Witness::Rr { key });
            }
        }
    }
    out
}

/// Internal consistency: read = previous read + own increments since.
fn check_internal(history: &History, key_set: &FxHashSet<Key>, out: &mut CounterAnalysis) {
    for t in history.txns() {
        let mut base: FxHashMap<Key, i64> = FxHashMap::default(); // last read
        let mut delta: FxHashMap<Key, i64> = FxHashMap::default(); // own incs since
        for m in &t.mops {
            match m {
                Mop::Increment { key, amount } if key_set.contains(key) => {
                    *delta.entry(*key).or_insert(0) += amount;
                }
                Mop::Read {
                    key,
                    value: Some(ReadValue::Counter(v)),
                } if key_set.contains(key) => {
                    if let Some(prev) = base.get(key) {
                        let expected = prev + delta.get(key).copied().unwrap_or(0);
                        if *v != expected {
                            out.anomalies.push(Anomaly {
                                typ: AnomalyType::Internal,
                                txns: vec![t.id],
                                key: Some(*key),
                                steps: vec![],
                                explanation: format!(
                                    "{}\n  read {v} of counter {key}, but prior operations \
                                     imply {expected}",
                                    t.to_notation()
                                ),
                            });
                        }
                    }
                    base.insert(*key, *v);
                    delta.insert(*key, 0);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeClass;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> CounterAnalysis {
        let kt = KeyTypes::infer(h);
        analyze(h, &kt.keys_of(DataType::Counter))
    }

    fn types(a: &CounterAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn rr_ordering_by_value() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 1).commit();
        b.txn(1).increment(1, 1).commit();
        let t2 = b.txn(2).read_counter(1, 1).commit();
        let t3 = b.txn(3).read_counter(1, 2).commit();
        let a = run(&b.build());
        assert!(a.deps.graph.edge_mask(t2.0, t3.0).contains(EdgeClass::Rr));
        assert!(!a.deps.graph.edge_mask(t3.0, t2.0).contains(EdgeClass::Rr));
    }

    #[test]
    fn out_of_range_read_is_garbage() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 2).commit();
        b.txn(1).read_counter(1, 5).commit();
        b.txn(2).read_counter(1, -1).commit();
        let a = run(&b.build());
        assert_eq!(
            a.anomalies
                .iter()
                .filter(|x| x.typ == AnomalyType::GarbageRead)
                .count(),
            2
        );
    }

    #[test]
    fn aborted_increments_do_not_raise_bound() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 2).commit();
        b.txn(1).increment(1, 10).abort();
        b.txn(2).read_counter(1, 12).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
    }

    #[test]
    fn mixed_sign_disables_inference() {
        let mut b = HistoryBuilder::new();
        b.txn(0).increment(1, 5).commit();
        b.txn(1).increment(1, -3).commit();
        b.txn(2).read_counter(1, 99).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty());
        assert_eq!(a.deps.graph.edge_count(), 0);
    }

    #[test]
    fn internal_inconsistency() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .read_counter(1, 0)
            .increment(1, 2)
            .read_counter(1, 5)
            .commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn internal_consistency_holds() {
        let mut b = HistoryBuilder::new();
        b.txn(0)
            .read_counter(1, 0)
            .increment(1, 2)
            .read_counter(1, 2)
            .commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }
}
