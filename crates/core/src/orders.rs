//! Transaction dependencies from the concurrency structure of the history
//! (§5.1 of the paper): per-process (session) order and real-time order.

use crate::anomaly::Witness;
use crate::deps::DepGraph;
use elle_graph::{interval_order_reduction, Interval};
use elle_history::{History, ProcessId, TxnStatus};
use rustc_hash::FxHashMap;

/// Add session-order edges: consecutive committed transactions of the same
/// process. "Each process should (independently) observe a logically
/// monotonic view of the database."
pub fn add_process_edges(deps: &mut DepGraph, history: &History) {
    let mut last_of: FxHashMap<ProcessId, elle_history::TxnId> = FxHashMap::default();
    for t in history.txns() {
        if t.status != TxnStatus::Committed {
            continue;
        }
        if let Some(prev) = last_of.insert(t.process, t.id) {
            deps.add(prev, t.id, Witness::Process { process: t.process });
        }
    }
}

/// Add real-time order edges between committed transactions: `T1 < T2` iff
/// T1's completion precedes T2's invocation. Only the transitive reduction
/// is materialized (computable in `O(n · p)`, §5.1), which preserves all
/// cycles: any realtime edge skipped is implied by a kept path.
pub fn add_realtime_edges(deps: &mut DepGraph, history: &History) {
    // Build intervals for committed transactions only; remember the mapping
    // back to transaction ids.
    let committed: Vec<&elle_history::Transaction> = history.committed().collect();
    let intervals: Vec<Interval> = committed
        .iter()
        .map(|t| Interval {
            invoke: t.invoke_index,
            complete: t.complete_index,
        })
        .collect();
    let reduced = interval_order_reduction(&intervals);
    // ~p edges per transaction for p-way concurrency: reserve up front so
    // the bulk load does not rehash the edge indexes repeatedly.
    deps.reserve_edges(reduced.len());
    for (a, b) in reduced {
        let (ta, tb) = (committed[a as usize], committed[b as usize]);
        deps.add(
            ta.id,
            tb.id,
            Witness::Realtime {
                complete: ta.complete_index.expect("reduced edges have completions"),
                invoke: tb.invoke_index,
            },
        );
    }
}

/// Add time-precedes edges (§5.1) between committed transactions carrying
/// database-exposed timestamps: `T1 < T2` iff `commit(T1) < start(T2)`.
/// As with real time, only the transitive reduction is materialized.
pub fn add_timestamp_edges(deps: &mut DepGraph, history: &History) {
    let stamped: Vec<&elle_history::Transaction> = history
        .committed()
        .filter(|t| t.timestamps.is_some())
        .collect();
    let intervals: Vec<Interval> = stamped
        .iter()
        .map(|t| {
            let (start, commit) = t.timestamps.expect("filtered");
            Interval {
                invoke: start as usize,
                complete: Some(commit as usize),
            }
        })
        .collect();
    let reduced = interval_order_reduction(&intervals);
    deps.reserve_edges(reduced.len());
    for (a, b) in reduced {
        let (ta, tb) = (stamped[a as usize], stamped[b as usize]);
        deps.add(
            ta.id,
            tb.id,
            Witness::Timestamp {
                commit: ta.timestamps.expect("filtered").1,
                start: tb.timestamps.expect("filtered").0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_graph::{EdgeClass, EdgeMask};
    use elle_history::{HistoryBuilder, TxnId};

    #[test]
    fn process_edges_chain_same_process() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        b.txn(0).append(1, 3).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_process_edges(&mut d, &h);
        d.build();
        assert_eq!(d.edge_mask(0, 2), EdgeMask::PROCESS);
        assert_eq!(d.edge_mask(0, 1), EdgeMask::NONE);
        assert_eq!(d.edge_mask(1, 2), EdgeMask::NONE);
    }

    #[test]
    fn process_edges_skip_uncommitted() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(0).append(1, 2).abort();
        b.txn(0).append(1, 3).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_process_edges(&mut d, &h);
        d.build();
        // Chain links committed txns 0 and 2, skipping the aborted 1.
        assert_eq!(d.edge_mask(0, 2), EdgeMask::PROCESS);
        assert_eq!(d.edge_mask(0, 1), EdgeMask::NONE);
    }

    #[test]
    fn realtime_edges_reduce() {
        let mut b = HistoryBuilder::new();
        // Three strictly sequential txns on different processes.
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).append(1, 2).at(2, Some(3)).commit();
        b.txn(2).append(1, 3).at(4, Some(5)).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_realtime_edges(&mut d, &h);
        d.build();
        // Reduction keeps 0→1 and 1→2 but not 0→2.
        assert_eq!(d.edge_mask(0, 1), EdgeMask::REALTIME);
        assert_eq!(d.edge_mask(1, 2), EdgeMask::REALTIME);
        assert_eq!(d.edge_mask(0, 2), EdgeMask::NONE);
        // Witness carries the indices.
        match d.witness_of_class(TxnId(0), TxnId(1), EdgeClass::Realtime) {
            Some(Witness::Realtime { complete, invoke }) => {
                assert_eq!((*complete, *invoke), (1, 2));
            }
            other => panic!("unexpected witness {other:?}"),
        }
    }

    #[test]
    fn concurrent_txns_get_no_realtime_edges() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(10)).commit();
        b.txn(1).append(1, 2).at(1, Some(9)).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_realtime_edges(&mut d, &h);
        d.build();
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn timestamp_edges_follow_commit_before_start() {
        let mut b = HistoryBuilder::new();
        // Concurrent in real time, ordered by database timestamps.
        b.txn(0)
            .append(1, 1)
            .at(0, Some(10))
            .timestamps(1, 2)
            .commit();
        b.txn(1)
            .append(1, 2)
            .at(1, Some(9))
            .timestamps(3, 4)
            .commit();
        b.txn(2).append(1, 3).at(2, Some(8)).commit(); // unstamped
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_timestamp_edges(&mut d, &h);
        d.build();
        assert!(d.edge_mask(0, 1).contains(EdgeClass::Timestamp));
        assert_eq!(d.edge_mask(1, 0), EdgeMask::NONE);
        // Unstamped transactions take no part.
        assert_eq!(d.edge_mask(0, 2), EdgeMask::NONE);
        assert_eq!(d.edge_mask(2, 1), EdgeMask::NONE);
    }

    #[test]
    fn overlapping_timestamps_unordered() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).timestamps(1, 5).commit();
        b.txn(1).append(1, 2).timestamps(2, 4).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_timestamp_edges(&mut d, &h);
        d.build();
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn uncommitted_txns_excluded_from_realtime() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).at(0, Some(1)).commit();
        b.txn(1).append(1, 2).at(2, Some(3)).abort();
        b.txn(2).append(1, 3).at(4, Some(5)).commit();
        let h = b.build();
        let mut d = DepGraph::with_txns(h.len());
        add_realtime_edges(&mut d, &h);
        d.build();
        // 0 → 2 directly, since aborted 1 is not part of the order.
        assert_eq!(d.edge_mask(0, 2), EdgeMask::REALTIME);
        assert_eq!(d.edge_mask(0, 1), EdgeMask::NONE);
        assert_eq!(d.edge_mask(1, 2), EdgeMask::NONE);
    }
}
