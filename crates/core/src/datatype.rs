//! The shared per-datatype analysis pipeline.
//!
//! The three recoverable datatypes (append-only lists, read-write
//! registers, grow-only sets) used to carry near-identical copies of
//! the same passes: write-level duplicate detection, per-read
//! provenance checks (garbage reads, G1a aborted reads), internal
//! consistency scaffolding, lost-update grouping, and the assembly of
//! per-key results into a [`DepGraph`]. This module owns those passes
//! once; each datatype implements [`DatatypeAnalysis`] and contributes
//! only its genuinely unique logic (list traceability, register
//! version-order inference, set subset semantics).
//!
//! **Key-partitioned parallelism.** Everything after the cheap serial
//! passes is per-key independent: a key's element index, version
//! order, and `wr`/`ww`/`rw` derivation never looks at another key.
//! The driver therefore fans analysis out over keys on rayon and
//! merges per-key sinks back **in sorted key order**, so the produced
//! [`DepGraph`] and anomaly list are byte-identical to a sequential
//! run — checked by `parallel_matches_sequential` in
//! `crates/core/tests/datatype_props.rs`.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::deps::DepGraph;
use crate::gather::{GatherBuf, KeySlots};
use crate::observation::{DataType, ElemIndex, WriteRef};
use elle_history::{Elem, History, Key, Mop, Transaction, TxnId, TxnStatus};
use rayon::prelude::*;
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Instant;

/// The provenance index the shared passes consult — the element →
/// writer mapping whose injectivity is exactly the paper's
/// recoverability property (§4.2.3).
pub type ProvenanceIndex = ElemIndex;

/// Datatype-specific wording for the shared anomaly messages.
#[derive(Debug, Clone, Copy)]
pub struct Vocab {
    /// The object noun: `"key"`, `"register"`, `"set"`.
    pub object: &'static str,
    /// What a written value is called: `"element"` or `"value"`.
    pub item: &'static str,
    /// The write verb, past tense: `"appended"`, `"wrote"`, `"added"`.
    pub wrote: &'static str,
    /// The write verb, past participle: `"appended"`, `"written"`,
    /// `"added"`.
    pub written: &'static str,
    /// The write verb with preposition: `"appended to"`, `"written
    /// to"`, `"added to"`.
    pub wrote_to: &'static str,
    /// The read-modify-write verb for lost-update messages:
    /// `"appended to"`, `"wrote"`.
    pub rmw: &'static str,
    /// Report garbage once per reader (`true`) or once per element
    /// (`false`, the list convention).
    pub garbage_per_reader: bool,
}

/// Shared read-only context handed to every pass of one datatype run.
pub struct AnalysisCtx<'h, C> {
    /// The observation under analysis.
    pub history: &'h History,
    /// Element → writer provenance.
    pub elems: &'h ProvenanceIndex,
    /// The keys this datatype owns, interned into dense slot ids for
    /// the flat gather pipeline.
    pub keys: KeySlots,
    /// Datatype-specific configuration (e.g. register assumptions).
    pub config: C,
    /// Transaction scope: `None` = the whole history (batch checking);
    /// `Some(ids)` = only the listed transactions, in the given order
    /// (the streaming checker's **gather-delta** phase passes the union
    /// of the dirty keys' posting lists here, so gather pays for the
    /// epoch's delta, not for history length). Every pass that walks
    /// transactions must go through [`AnalysisCtx::scoped_txns`].
    pub scope: Option<&'h [TxnId]>,
}

impl<'h, C> AnalysisCtx<'h, C> {
    /// The transactions this run is allowed to look at, in history order
    /// (or the scope's order, which streaming callers keep sorted).
    pub fn scoped_txns(&self) -> impl Iterator<Item = &'h Transaction> + '_ {
        let hist = self.history;
        let ids = self.scope;
        (0..ids.map_or(hist.len(), <[TxnId]>::len)).map(move |i| match ids {
            None => &hist.txns()[i],
            Some(ids) => hist.get(ids[i]),
        })
    }
}

/// Where one key's analysis deposits its findings. Sinks are merged by
/// the driver in sorted key order, which is what keeps parallel runs
/// deterministic.
#[derive(Debug, Default)]
pub struct KeySink {
    /// Non-cycle anomalies found for this key.
    pub anomalies: Vec<Anomaly>,
    /// Dependency edges, in discovery order.
    pub edges: Vec<(TxnId, TxnId, Witness)>,
    /// The inferred version order, when the datatype recovers one.
    pub version_order: Option<Vec<Elem>>,
    /// Set when the key's inferred version order was cyclic and the
    /// key's dependencies were discarded.
    pub cyclic: bool,
    /// Elements of this key observed by at least one committed read —
    /// the key's contribution to the §3 coverage statistic, computed
    /// during the per-key pass instead of a second `observed_reads`
    /// walk over the whole history. May contain repeats; consumers
    /// union into a set.
    pub observed_elems: Vec<Elem>,
}

impl KeySink {
    /// Record a non-cycle anomaly.
    pub fn anomaly(&mut self, typ: AnomalyType, txns: Vec<TxnId>, key: Key, explanation: String) {
        self.anomalies.push(Anomaly {
            typ,
            txns,
            key: Some(key),
            steps: vec![],
            explanation,
        });
    }

    /// Record a dependency edge.
    pub fn edge(&mut self, from: TxnId, to: TxnId, witness: Witness) {
        self.edges.push((from, to, witness));
    }
}

/// What the flat gather pass cost — surfaced as the `gather` stage and
/// the peak-gather-buffer gauge in `--timing` output.
#[derive(Debug, Default, Clone, Copy)]
pub struct GatherStats {
    /// Wall-clock seconds spent scanning and grouping.
    pub secs: f64,
    /// Peak gather-buffer footprint in bytes (slots + occurrences +
    /// offset table).
    pub buf_bytes: usize,
}

impl GatherStats {
    /// Fold another datatype's gather cost into this one: times add,
    /// peak footprints max (the buffers are sequential, not live
    /// simultaneously).
    pub fn absorb(&mut self, other: GatherStats) {
        self.secs += other.secs;
        self.buf_bytes = self.buf_bytes.max(other.buf_bytes);
    }
}

/// The merged result of one datatype's run, consumed by the checker.
#[derive(Debug, Default)]
pub struct DriverOutput {
    /// All dependency edges, as an IDSG fragment.
    pub deps: DepGraph,
    /// All non-cycle anomalies, in pass order then key order.
    pub anomalies: Vec<Anomaly>,
    /// Version orders recovered per key (lists).
    pub version_orders: FxHashMap<Key, Vec<Elem>>,
    /// Keys discarded for cyclic inferred version orders (registers).
    pub cyclic_keys: Vec<Key>,
    /// `(key, element)` pairs observed by committed reads of this
    /// datatype's keys (coverage statistic contribution; may repeat).
    pub observed: Vec<(Key, Elem)>,
    /// Cost of the flat gather pass.
    pub gather: GatherStats,
}

/// How the driver schedules per-key analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Parallel when there are enough keys to plausibly pay for it.
    Auto,
    /// Always sequential (the reference mode property tests compare
    /// against).
    Sequential,
    /// Always parallel, regardless of key count.
    Parallel,
}

/// Keys below this count are analyzed inline under
/// [`Parallelism::Auto`]; thread fan-out costs more than it saves.
const AUTO_PARALLEL_MIN_KEYS: usize = 8;

/// `ELLE_SEQUENTIAL=1` pins [`Parallelism::Auto`] to sequential — used
/// to record before/after benchmark numbers and to bisect any
/// parallelism-related suspicion without rebuilding. One knob covers
/// every parallel stage: the per-key datatype pipeline here and the
/// (SCC × anomaly class) cycle-search fan-out in
/// [`crate::cycle_search`].
pub(crate) fn auto_forced_sequential() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| std::env::var_os("ELLE_SEQUENTIAL").is_some_and(|v| v == "1"))
}

/// One datatype's contribution to the pipeline: the hooks the shared
/// driver calls, in order.
pub trait DatatypeAnalysis {
    /// Datatype-specific options ([`crate::RegisterOptions`] for
    /// registers, `()` elsewhere).
    type Config: Copy + Sync;
    /// Cross-key immutable auxiliary data built once per run (e.g. the
    /// per-transaction append index lists use for G1b).
    type Aux<'h>: Sync;
    /// One per-key occurrence emitted during the gather scan. A key's
    /// occurrences arrive at [`DatatypeAnalysis::analyze_key`] as a
    /// contiguous slice in scan order — exactly the sequence the old
    /// per-key `Vec` pushes produced, so per-key folds are unchanged.
    /// `Copy` because grouping gathers occurrences out of place.
    type Occ<'h>: Send + Sync + Copy;

    /// Which [`DataType`] this analysis owns.
    const DATATYPE: DataType;
    /// Wording for the shared anomaly messages.
    const VOCAB: Vocab;

    /// Internal-consistency pass (§6.1): transaction-major, cheap, and
    /// serial. Implementations usually delegate to [`internal_pass`].
    fn check_internal(cx: &AnalysisCtx<'_, Self::Config>, sink: &mut KeySink);

    /// Single pass over the scoped transactions appending flat
    /// `(key slot, occurrence)` tuples to `buf` (use
    /// [`AnalysisCtx::scoped_txns`], never `history.txns()` directly —
    /// the streaming driver narrows the scope to the dirty keys'
    /// transactions). Slot ids come from `cx.keys`.
    fn gather<'h>(
        cx: &AnalysisCtx<'h, Self::Config>,
        buf: &mut GatherBuf<Self::Occ<'h>>,
    ) -> Self::Aux<'h>;

    /// The key's observed-element contribution to the coverage
    /// statistic, derived from the gathered occurrences (shared between
    /// the interned and the seed reference pipelines, so reports stay
    /// byte-identical across them).
    fn observed_elems(occs: &[Self::Occ<'_>]) -> Vec<Elem>;

    /// Analyze one key from its gathered occurrence run. Runs on a
    /// rayon worker; must only write into `sink`.
    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, Self::Config>,
        aux: &Self::Aux<'h>,
        key: Key,
        occs: &[Self::Occ<'h>],
        poisoned: bool,
        sink: &mut KeySink,
    );
}

/// Run a datatype's full pipeline with [`Parallelism::Auto`].
pub fn run<D: DatatypeAnalysis>(
    history: &History,
    elems: &ProvenanceIndex,
    keys: &[Key],
    config: D::Config,
) -> DriverOutput {
    run_mode::<D>(history, elems, keys, config, Parallelism::Auto)
}

/// Run a datatype's full pipeline with an explicit scheduling mode.
pub fn run_mode<D: DatatypeAnalysis>(
    history: &History,
    elems: &ProvenanceIndex,
    keys: &[Key],
    config: D::Config,
    mode: Parallelism,
) -> DriverOutput {
    let cx = AnalysisCtx {
        history,
        elems,
        keys: keys.iter().copied().collect(),
        config,
        scope: None,
    };
    let mut out = DriverOutput {
        deps: DepGraph::with_txns(history.len()),
        ..DriverOutput::default()
    };

    // ── Serial prelude: internal consistency, then write-level
    //    duplicates (which poison recoverability per key). ─────────────
    out.anomalies.append(&mut internal_anomalies::<D>(&cx));
    let (mut dup_anomalies, poisoned) = duplicate_anomalies(&cx, &D::VOCAB);
    out.anomalies.append(&mut dup_anomalies);

    // ── Partition by key, analyze, and merge deterministically. ───────
    let (pairs, gather) = analyze_keys::<D>(&cx, &poisoned, mode);
    out.gather = gather;
    for (key, mut sink) in pairs {
        out.anomalies.append(&mut sink.anomalies);
        out.deps.reserve_edges(sink.edges.len());
        for (from, to, witness) in sink.edges {
            out.deps.add(from, to, witness);
        }
        if let Some(order) = sink.version_order {
            out.version_orders.insert(key, order);
        }
        if sink.cyclic {
            out.cyclic_keys.push(key);
        }
        out.observed
            .extend(sink.observed_elems.into_iter().map(|e| (key, e)));
    }
    // One sort-based build seals every per-key buffer into the sorted
    // spine — the datatype's whole edge set pays zero hash probes.
    out.deps.build();
    out
}

/// Phase 1 of a datatype run: the transaction-major internal-consistency
/// pass over the context's scope. Streaming callers pass only the
/// epoch's new/changed transactions and cache results per transaction.
pub fn internal_anomalies<D: DatatypeAnalysis>(cx: &AnalysisCtx<'_, D::Config>) -> Vec<Anomaly> {
    let mut sink = KeySink::default();
    D::check_internal(cx, &mut sink);
    sink.anomalies
}

/// Phase 2: write-level duplicate anomalies for this datatype's keys,
/// plus the poisoned-key set (recoverability broken). Cheap — it walks
/// the element index's (sorted) duplicate list, not the history.
pub fn duplicate_anomalies<C>(
    cx: &AnalysisCtx<'_, C>,
    v: &Vocab,
) -> (Vec<Anomaly>, FxHashSet<Key>) {
    let mut anomalies = Vec::new();
    let mut poisoned: FxHashSet<Key> = FxHashSet::default();
    for (k, e, txns) in &cx.elems.duplicates {
        if !cx.keys.contains(*k) {
            continue;
        }
        poisoned.insert(*k);
        anomalies.push(Anomaly {
            typ: AnomalyType::DuplicateWrite,
            txns: txns.clone(),
            key: Some(*k),
            steps: vec![],
            explanation: format!(
                "{item} {e} was {wrote_to} {object} {k} by more than one transaction ({who}); \
                 versions of {k} are not recoverable",
                item = v.item,
                wrote_to = v.wrote_to,
                object = v.object,
                who = txns
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        });
    }
    (anomalies, poisoned)
}

/// Phase 3: gather the scoped transactions into flat per-key occurrence
/// runs and analyze each occupied key, returning `(key, sink)` pairs in
/// sorted key order (slot order *is* key order, so no separate key sort
/// remains). This is the **finalize** half of the streaming split:
/// batch runs it over every key with an unbounded scope; the streaming
/// checker runs it over the epoch's dirty keys with the scope narrowed
/// to their transactions and caches the sinks.
pub fn analyze_keys<D: DatatypeAnalysis>(
    cx: &AnalysisCtx<'_, D::Config>,
    poisoned: &FxHashSet<Key>,
    mode: Parallelism,
) -> (Vec<(Key, KeySink)>, GatherStats) {
    let start = Instant::now();
    let mut buf = GatherBuf::new();
    let aux = D::gather(cx, &mut buf);
    let buf_bytes = buf.footprint_bytes();
    let grouped = buf.group(cx.keys.len());
    let gather = GatherStats {
        secs: start.elapsed().as_secs_f64(),
        buf_bytes: buf_bytes.max(grouped.footprint_bytes()),
    };
    let slots: Vec<u32> = grouped.occupied().collect();

    let parallel = match mode {
        Parallelism::Sequential => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => slots.len() >= AUTO_PARALLEL_MIN_KEYS && !auto_forced_sequential(),
    };
    let analyze_one = |&slot: &u32| {
        let key = cx.keys.key(slot);
        let occs = grouped.run(slot);
        let mut sink = KeySink {
            observed_elems: D::observed_elems(occs),
            ..KeySink::default()
        };
        D::analyze_key(cx, &aux, key, occs, poisoned.contains(&key), &mut sink);
        sink
    };
    let sinks: Vec<KeySink> = if parallel {
        slots.par_iter().map(analyze_one).collect()
    } else {
        slots.iter().map(analyze_one).collect()
    };
    let pairs = slots
        .into_iter()
        .map(|s| cx.keys.key(s))
        .zip(sinks)
        .collect();
    (pairs, gather)
}

/// The retained hash-map grouping the flat pipeline replaced, kept as a
/// differential reference: identical `Occ` stream, but bucketed through
/// `FxHashMap<Key, Vec<Occ>>` with an explicit key sort — the shape of
/// the pre-flat gather. Property tests assert [`analyze_keys`] is
/// byte-identical to this for every datatype and scheduling mode.
#[doc(hidden)]
pub fn analyze_keys_ref<D: DatatypeAnalysis>(
    cx: &AnalysisCtx<'_, D::Config>,
    poisoned: &FxHashSet<Key>,
    mode: Parallelism,
) -> Vec<(Key, KeySink)> {
    let mut buf = GatherBuf::new();
    let aux = D::gather(cx, &mut buf);
    let (slots, items) = buf.into_parts();
    let mut data: FxHashMap<Key, Vec<D::Occ<'_>>> = FxHashMap::default();
    for (slot, occ) in slots.iter().zip(items) {
        data.entry(cx.keys.key(*slot)).or_default().push(occ);
    }
    let mut keys_sorted: Vec<Key> = data.keys().copied().collect();
    keys_sorted.sort_unstable();

    let parallel = match mode {
        Parallelism::Sequential => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => {
            keys_sorted.len() >= AUTO_PARALLEL_MIN_KEYS && !auto_forced_sequential()
        }
    };
    let analyze_one = |key: &Key| {
        let occs: &[D::Occ<'_>] = &data[key];
        let mut sink = KeySink {
            observed_elems: D::observed_elems(occs),
            ..KeySink::default()
        };
        D::analyze_key(cx, &aux, *key, occs, poisoned.contains(key), &mut sink);
        sink
    };
    let sinks: Vec<KeySink> = if parallel {
        keys_sorted.par_iter().map(analyze_one).collect()
    } else {
        keys_sorted.iter().map(analyze_one).collect()
    };
    keys_sorted.into_iter().zip(sinks).collect()
}

// ── Shared passes ───────────────────────────────────────────────────────

/// A datatype's verdict on one internal-consistency step: the message
/// appended after the transaction's notation when the read disagrees
/// with the transaction's own prior operations.
pub struct InternalMismatch {
    /// Message body, e.g. `"read of key 3 returned [1], but …"`.
    pub message: String,
}

/// The shared transaction-major skeleton of the internal-consistency
/// check: iterate transactions, thread per-key state of type `S`
/// through each one's micro-ops in program order, and report any
/// mismatch the datatype's `step` closure detects.
///
/// The step closure receives history-lifetime borrows so states can
/// reference read values in place instead of cloning them; per-key
/// states live in one reused vector with a reused key → slot index, so
/// no per-transaction allocation and O(1) lookups even for arbitrarily
/// wide transactions.
pub fn internal_pass<'h, C, S: Default>(
    cx: &AnalysisCtx<'h, C>,
    sink: &mut KeySink,
    mut step: impl FnMut(&'h Transaction, &'h Mop, Key, &mut S) -> Option<InternalMismatch>,
) {
    let mut states: Vec<(Key, S)> = Vec::new();
    let mut slot_of: FxHashMap<Key, u32> = FxHashMap::default();
    for t in cx.scoped_txns() {
        states.clear();
        slot_of.clear();
        for m in &t.mops {
            let key = m.key();
            if !cx.keys.contains(key) {
                continue;
            }
            let slot = *slot_of.entry(key).or_insert_with(|| {
                states.push((key, S::default()));
                (states.len() - 1) as u32
            });
            let state = &mut states[slot as usize].1;
            if let Some(mismatch) = step(t, m, key, state) {
                sink.anomaly(
                    AnomalyType::Internal,
                    vec![t.id],
                    key,
                    format!("{}\n  {}", t.to_notation(), mismatch.message),
                );
            }
        }
    }
}

/// What the shared provenance scan concluded about one observed
/// element.
#[derive(Debug, Clone, Copy)]
pub enum Provenance {
    /// No transaction ever wrote it (reported as a garbage read).
    Garbage,
    /// The key is poisoned; the writer map cannot be trusted.
    Unusable,
    /// Written by an aborted transaction (reported as G1a); the write
    /// exists but must not produce dependency edges.
    Aborted(WriteRef),
    /// A trustworthy write.
    Ok(WriteRef),
}

/// The shared per-read provenance scan: garbage reads and G1a aborted
/// reads, with deduplicated reporting and poison gating (§4.2.3: G1a
/// needs the element → writer bijection; garbage does not).
#[derive(Debug, Default)]
pub struct ProvenanceScan {
    garbage_elems: FxHashSet<Elem>,
    garbage_pairs: FxHashSet<(TxnId, Elem)>,
    g1a_seen: FxHashSet<(TxnId, Elem)>,
}

impl ProvenanceScan {
    /// A fresh scan (per key).
    pub fn new() -> Self {
        ProvenanceScan::default()
    }

    /// Check whether `elem` is garbage, reporting it (once, per the
    /// vocab's dedup policy) if so. Usable as a standalone early pass.
    pub fn garbage<C>(
        &mut self,
        cx: &AnalysisCtx<'_, C>,
        vocab: &Vocab,
        key: Key,
        reader: TxnId,
        elem: Elem,
        sink: &mut KeySink,
    ) -> bool {
        if cx.elems.writer(key, elem).is_some() {
            return false;
        }
        let fresh = if vocab.garbage_per_reader {
            self.garbage_pairs.insert((reader, elem))
        } else {
            self.garbage_elems.insert(elem)
        };
        if fresh {
            sink.anomaly(
                AnomalyType::GarbageRead,
                vec![reader],
                key,
                format!(
                    "{}\n  observed {item} {elem} of {object} {key}, which no transaction \
                     ever {wrote}",
                    cx.history.get(reader).to_notation(),
                    item = vocab.item,
                    object = vocab.object,
                    wrote = vocab.wrote,
                ),
            );
        }
        true
    }

    /// Report an element already known to be garbage (no writer exists),
    /// applying the vocab's dedup policy — the fan-out half of
    /// [`ProvenanceScan::garbage`] for version-interned passes that
    /// classified the element once per distinct version.
    pub fn garbage_classified<C>(
        &mut self,
        cx: &AnalysisCtx<'_, C>,
        vocab: &Vocab,
        key: Key,
        reader: TxnId,
        elem: Elem,
        sink: &mut KeySink,
    ) {
        let fresh = if vocab.garbage_per_reader {
            self.garbage_pairs.insert((reader, elem))
        } else {
            self.garbage_elems.insert(elem)
        };
        if fresh {
            sink.anomaly(
                AnomalyType::GarbageRead,
                vec![reader],
                key,
                format!(
                    "{}\n  observed {item} {elem} of {object} {key}, which no transaction \
                     ever {wrote}",
                    cx.history.get(reader).to_notation(),
                    item = vocab.item,
                    object = vocab.object,
                    wrote = vocab.wrote,
                ),
            );
        }
    }

    /// Report an element already known to be an aborted write, with the
    /// once-per-`(reader, element)` dedup — the fan-out half of
    /// [`ProvenanceScan::provenance`]'s G1a arm for version-interned
    /// passes.
    #[allow(clippy::too_many_arguments)]
    pub fn g1a_classified<C>(
        &mut self,
        cx: &AnalysisCtx<'_, C>,
        vocab: &Vocab,
        key: Key,
        reader: TxnId,
        elem: Elem,
        writer: TxnId,
        sink: &mut KeySink,
    ) {
        if self.g1a_seen.insert((reader, elem)) {
            sink.anomaly(
                AnomalyType::G1a,
                vec![reader, writer],
                key,
                format!(
                    "{}\n  observed {item} {elem} of {object} {key}, {written} by aborted \
                     transaction {}",
                    cx.history.get(reader).to_notation(),
                    cx.history.get(writer).to_notation(),
                    item = vocab.item,
                    object = vocab.object,
                    written = vocab.written,
                ),
            );
        }
    }

    /// Fully classify one observed element, reporting garbage and G1a
    /// (deduplicated). `poisoned` keys yield [`Provenance::Unusable`]
    /// for recovered writes — their provenance checks are skipped, but
    /// garbage is still reported.
    #[allow(clippy::too_many_arguments)]
    pub fn provenance<C>(
        &mut self,
        cx: &AnalysisCtx<'_, C>,
        vocab: &Vocab,
        key: Key,
        reader: TxnId,
        elem: Elem,
        poisoned: bool,
        sink: &mut KeySink,
    ) -> Provenance {
        let Some(w) = cx.elems.writer(key, elem) else {
            self.garbage(cx, vocab, key, reader, elem, sink);
            return Provenance::Garbage;
        };
        if poisoned {
            return Provenance::Unusable;
        }
        if w.status == TxnStatus::Aborted {
            if self.g1a_seen.insert((reader, elem)) {
                sink.anomaly(
                    AnomalyType::G1a,
                    vec![reader, w.txn],
                    key,
                    format!(
                        "{}\n  observed {item} {elem} of {object} {key}, {written} by aborted \
                         transaction {}",
                        cx.history.get(reader).to_notation(),
                        cx.history.get(w.txn).to_notation(),
                        item = vocab.item,
                        object = vocab.object,
                        written = vocab.written,
                    ),
                );
            }
            return Provenance::Aborted(w);
        }
        Provenance::Ok(w)
    }
}

/// Shared lost-update reporting: several committed transactions read
/// the *same* version of a key and then each wrote it — at most one of
/// those writes can directly follow that version.
///
/// `groups` must already be deterministic (sorted by the caller) with
/// each group's transactions sorted; only groups of two or more
/// read-modify-writers are reported.
pub fn report_lost_updates<V>(
    vocab: &Vocab,
    key: Key,
    groups: Vec<(V, Vec<TxnId>)>,
    render: impl Fn(&V) -> String,
    sink: &mut KeySink,
) {
    for (version, group) in groups {
        debug_assert!(group.len() >= 2);
        debug_assert!(group.windows(2).all(|w| w[0] <= w[1]));
        sink.anomaly(
            AnomalyType::LostUpdate,
            group.clone(),
            key,
            format!(
                "transactions {who} all read version {v} of {object} {key} and then \
                 {rmw} it; at most one of those writes can directly follow that version",
                who = group
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                v = render(&version),
                object = vocab.object,
                rmw = vocab.rmw,
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::KeyTypes;
    use elle_history::HistoryBuilder;

    #[test]
    fn provenance_scan_dedups_garbage_per_policy() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).read_list(1, [9]).commit();
        let t1 = b.txn(1).read_list(1, [9]).commit();
        let h = b.build();
        let elems = ElemIndex::build(&h);
        let cx = AnalysisCtx {
            history: &h,
            elems: &elems,
            keys: [Key(1)].into_iter().collect(),
            config: (),
            scope: None,
        };
        let per_elem = crate::list_append::ListAppend::VOCAB;
        let mut scan = ProvenanceScan::new();
        let mut sink = KeySink::default();
        assert!(scan.garbage(&cx, &per_elem, Key(1), t0, Elem(9), &mut sink));
        assert!(scan.garbage(&cx, &per_elem, Key(1), t1, Elem(9), &mut sink));
        assert_eq!(sink.anomalies.len(), 1, "per-element dedup");

        let per_reader = Vocab {
            garbage_per_reader: true,
            ..per_elem
        };
        let mut scan = ProvenanceScan::new();
        let mut sink = KeySink::default();
        scan.garbage(&cx, &per_reader, Key(1), t0, Elem(9), &mut sink);
        scan.garbage(&cx, &per_reader, Key(1), t1, Elem(9), &mut sink);
        assert_eq!(sink.anomalies.len(), 2, "per-reader keeps both");
    }

    #[test]
    fn provenance_scan_gates_g1a_on_poison() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).abort();
        let t1 = b.txn(1).read_list(1, [7]).commit();
        let h = b.build();
        let elems = ElemIndex::build(&h);
        let cx = AnalysisCtx {
            history: &h,
            elems: &elems,
            keys: [Key(1)].into_iter().collect(),
            config: (),
            scope: None,
        };
        let vocab = crate::list_append::ListAppend::VOCAB;
        let mut scan = ProvenanceScan::new();
        let mut sink = KeySink::default();
        let p = scan.provenance(&cx, &vocab, Key(1), t1, Elem(7), true, &mut sink);
        assert!(matches!(p, Provenance::Unusable));
        assert!(sink.anomalies.is_empty());
        let p = scan.provenance(&cx, &vocab, Key(1), t1, Elem(7), false, &mut sink);
        assert!(matches!(p, Provenance::Aborted(_)));
        assert_eq!(sink.anomalies.len(), 1);
        // Re-checking the same (reader, elem) does not re-report.
        let _ = scan.provenance(&cx, &vocab, Key(1), t1, Elem(7), false, &mut sink);
        assert_eq!(sink.anomalies.len(), 1);
    }

    #[test]
    fn run_modes_agree_on_a_mixed_history() {
        // Enough keys to clear the Auto threshold.
        let mut b = HistoryBuilder::new();
        for k in 0..16u64 {
            b.txn(0).append(k, 2 * k + 1).commit();
            b.txn(1)
                .append(k, 2 * k + 2)
                .read_list(k, [2 * k + 1, 2 * k + 2])
                .commit();
            b.txn(2).read_list(k, [2 * k + 1]).commit();
        }
        let h = b.build();
        let elems = ElemIndex::build(&h);
        let kt = KeyTypes::infer(&h);
        let keys = kt.keys_of(DataType::List);
        let seq = run_mode::<crate::list_append::ListAppend>(
            &h,
            &elems,
            &keys,
            (),
            Parallelism::Sequential,
        );
        let par = run_mode::<crate::list_append::ListAppend>(
            &h,
            &elems,
            &keys,
            (),
            Parallelism::Parallel,
        );
        assert_eq!(seq.anomalies, par.anomalies);
        assert_eq!(seq.version_orders, par.version_orders);
        assert_eq!(seq.deps.edge_count(), par.deps.edge_count());
        for (a, b, m) in seq.deps.edges() {
            assert_eq!(par.deps.edge_mask(a, b), m);
        }
    }
}
