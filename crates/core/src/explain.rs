//! Figure-2-style human-readable cycle explanations, and Figure-3-style
//! DOT export.

use crate::anomaly::{CycleStep, Witness};
use elle_history::{History, TxnId};

/// One step's justification: "`T1` did not observe `T2`'s append of 8 to
/// key 255", etc.
pub fn witness_text(w: &Witness, from: TxnId, to: TxnId) -> String {
    match w {
        Witness::WwList { key, prev, next } => {
            format!("{to} appended {next} directly after {from} appended {prev} to key {key}")
        }
        Witness::WrList { key, elem } => {
            format!("{to} observed {from}'s append of {elem} to key {key}")
        }
        Witness::RwList {
            key,
            read_last,
            next,
        } => match read_last {
            Some(last) => format!(
                "{from} did not observe {to}'s append of {next} to key {key} \
                 (it read up to {last})"
            ),
            None => format!(
                "{from} read key {key} in its initial (empty) state, missing {to}'s \
                 append of {next}"
            ),
        },
        Witness::WwReg { key, prev, next } => match prev {
            Some(p) => {
                format!("{to} overwrote {from}'s write of {p} to register {key} with {next}")
            }
            None => format!(
                "{to} wrote {next} over the initial state of register {key}, which \
                 {from} established"
            ),
        },
        Witness::WrReg { key, elem } => {
            format!("{to} read {from}'s write of {elem} to register {key}")
        }
        Witness::RwReg { key, read, next } => match read {
            Some(r) => {
                format!("{from} read {r} from register {key}, which {to} overwrote with {next}")
            }
            None => format!("{from} read register {key} as nil, missing {to}'s write of {next}"),
        },
        Witness::WrSet { key, elem } => {
            format!("{to} observed {from}'s add of {elem} to set {key}")
        }
        Witness::RwSet { key, elem } => {
            format!("{from} did not observe {to}'s add of {elem} to set {key}")
        }
        Witness::Rr { key } => {
            format!("{from} observed an earlier state of key {key} than {to}")
        }
        Witness::Process { process } => {
            format!("{from} and {to} both ran on process {process}, and {from} completed first")
        }
        Witness::Realtime { complete, invoke } => {
            format!("{from} completed (event {complete}) before {to} was invoked (event {invoke})")
        }
        Witness::Timestamp { commit, start } => format!(
            "{from} committed at database timestamp {commit}, before {to} started at {start}"
        ),
    }
}

/// Render a full cycle explanation in the paper's Figure-2 format:
///
/// ```text
/// Let:
///   T1 = ...
///   T2 = ...
/// Then:
///   - T1 < T2, because ...
///   - However, T2 < T1, because ...: a contradiction!
/// ```
pub fn explain_cycle(history: &History, steps: &[CycleStep]) -> String {
    let mut s = String::from("Let:\n");
    let mut listed = Vec::new();
    for st in steps {
        if !listed.contains(&st.from) {
            listed.push(st.from);
        }
        if !listed.contains(&st.to) {
            listed.push(st.to);
        }
    }
    for t in &listed {
        s.push_str("  ");
        s.push_str(&history.get(*t).to_notation());
        s.push('\n');
    }
    s.push_str("Then:\n");
    for (i, st) in steps.iter().enumerate() {
        let reason = witness_text(&st.witness, st.from, st.to);
        if i + 1 == steps.len() {
            s.push_str(&format!(
                "  - However, {} < {}, because {reason}: a contradiction!\n",
                st.from, st.to
            ));
        } else {
            s.push_str(&format!("  - {} < {}, because {reason}.\n", st.from, st.to));
        }
    }
    s
}

/// Render the full dependency neighbourhood of a cycle — every IDSG edge
/// among `txns`, not just the presented steps — as Graphviz DOT, from a
/// frozen [`Csr`](elle_graph::Csr) snapshot. CSR rows are sorted, so the
/// output is a deterministic function of the edge set (byte-identical
/// across runs and insertion orders). Restrict with `allowed` to drop
/// derived orders from the plot.
pub fn component_dot(
    csr: &elle_graph::Csr,
    txns: &[TxnId],
    allowed: elle_graph::EdgeMask,
) -> String {
    let vertices: Vec<u32> = txns.iter().map(|t| t.0).collect();
    elle_graph::to_dot(csr, Some(&vertices), allowed, &|v| format!("T{v}"))
}

/// Render a cycle as Graphviz DOT (Figure 3 style), labeling each edge with
/// its presented dependency class.
pub fn cycle_dot(steps: &[CycleStep]) -> String {
    let mut s = String::from("digraph cycle {\n  rankdir=LR;\n  node [shape=box];\n");
    for st in steps {
        s.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            st.from,
            st.to,
            st.class.label()
        ));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_graph::EdgeClass;
    use elle_history::{Elem, HistoryBuilder, Key};

    #[test]
    fn figure2_shape() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(255, 8).commit();
        b.txn(1).read_list(255, [8]).commit();
        let h = b.build();
        let steps = vec![
            CycleStep {
                from: TxnId(0),
                to: TxnId(1),
                class: EdgeClass::Wr,
                witness: Witness::WrList {
                    key: Key(255),
                    elem: Elem(8),
                },
            },
            CycleStep {
                from: TxnId(1),
                to: TxnId(0),
                class: EdgeClass::Rw,
                witness: Witness::RwList {
                    key: Key(255),
                    read_last: Some(Elem(8)),
                    next: Elem(9),
                },
            },
        ];
        let text = explain_cycle(&h, &steps);
        assert!(text.starts_with("Let:\n"));
        assert!(text.contains("Then:"));
        assert!(text.contains("T1 < T0"), "{text}");
        assert!(text.contains("However"));
        assert!(text.trim_end().ends_with("a contradiction!"));
        // Paper-style phrasing:
        assert!(
            text.contains("observed T0's append of 8 to key 255"),
            "{text}"
        );
    }

    #[test]
    fn dot_output() {
        let steps = vec![CycleStep {
            from: TxnId(0),
            to: TxnId(1),
            class: EdgeClass::Rw,
            witness: Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(5),
            },
        }];
        let dot = cycle_dot(&steps);
        assert!(dot.contains("\"T0\" -> \"T1\" [label=\"rw\"]"));
    }

    #[test]
    fn component_dot_renders_all_edges_among_txns() {
        use crate::deps::DepGraph;
        use elle_graph::EdgeMask;
        let mut d = DepGraph::with_txns(3);
        d.add(
            TxnId(0),
            TxnId(1),
            Witness::WwList {
                key: Key(1),
                prev: Elem(1),
                next: Elem(2),
            },
        );
        d.add(
            TxnId(1),
            TxnId(0),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        // An edge leaving the component must not be rendered.
        d.add(
            TxnId(1),
            TxnId(2),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let csr = d.freeze();
        let dot = component_dot(&csr, &[TxnId(0), TxnId(1)], EdgeMask::ALL);
        assert!(dot.contains("\"T0\" -> \"T1\" [label=\"ww\"]"), "{dot}");
        assert!(dot.contains("\"T1\" -> \"T0\" [label=\"wr\"]"), "{dot}");
        assert!(!dot.contains("T2"), "{dot}");
    }

    #[test]
    fn witness_texts_cover_all_variants() {
        use elle_history::ProcessId;
        let cases: Vec<Witness> = vec![
            Witness::WwList {
                key: Key(1),
                prev: Elem(1),
                next: Elem(2),
            },
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
            Witness::RwList {
                key: Key(1),
                read_last: Some(Elem(1)),
                next: Elem(2),
            },
            Witness::WwReg {
                key: Key(1),
                prev: None,
                next: Elem(2),
            },
            Witness::WwReg {
                key: Key(1),
                prev: Some(Elem(1)),
                next: Elem(2),
            },
            Witness::WrReg {
                key: Key(1),
                elem: Elem(2),
            },
            Witness::RwReg {
                key: Key(1),
                read: None,
                next: Elem(2),
            },
            Witness::RwReg {
                key: Key(1),
                read: Some(Elem(1)),
                next: Elem(2),
            },
            Witness::WrSet {
                key: Key(1),
                elem: Elem(2),
            },
            Witness::RwSet {
                key: Key(1),
                elem: Elem(2),
            },
            Witness::Rr { key: Key(1) },
            Witness::Process {
                process: ProcessId(3),
            },
            Witness::Realtime {
                complete: 4,
                invoke: 9,
            },
            Witness::Timestamp {
                commit: 3,
                start: 8,
            },
        ];
        for w in cases {
            let text = witness_text(&w, TxnId(0), TxnId(1));
            assert!(!text.is_empty());
            assert!(text.contains("T0") || text.contains("T1"));
        }
    }
}
