//! Flat sort-based gather: the datatype pipeline's answer to the edge
//! builder's sort-based dedup (`crates/core/src/deps.rs`).
//!
//! Datatype gather used to bucket each key's occurrences into a
//! `FxHashMap<Key, KeyData>` — one hash probe per micro-op, scattered
//! node allocations, and a separate key sort before analysis. Instead,
//! [`KeySlots`] interns the (already sorted) key universe into dense
//! slot ids, each datatype appends flat `(slot, occurrence)` tuples to
//! a [`GatherBuf`] during its single history scan, and one stable
//! counting sort groups them into contiguous per-key runs
//! ([`Grouped`]). `analyze_keys` then hands every driver a `&[Occ]`
//! slice; key-partitioned parallel sharding falls out of the sorted
//! runs for free, and no `FxHashMap<Key, …>` remains on the hot path.
//!
//! The counting-sort scratch comes from the thread-local buffer pool
//! ([`crate::pool`]), so repeated runs — streaming epochs, benchmark
//! sweeps — recycle pre-faulted pages instead of paying first-touch
//! faults on every build. The items side recycles unconditionally
//! through the pool's layout-keyed arena (`pool::take_layout` /
//! `put_layout`): history-borrowing occurrence types can't be
//! type-erased behind a `TypeId`, but their raw backing storage only
//! has a `(size, align)`, so the scan-order buffer and the grouped copy
//! both come back on later runs regardless of lifetimes. The
//! `_pooled`/`recycle` entry points survive as aliases from the era
//! when only `'static` occurrence types could recycle.

use crate::pool;
use elle_history::Key;

/// A sorted, deduplicated key universe with dense slot ids: slot `i`
/// is the `i`-th smallest key. Replaces the per-run `FxHashSet<Key>`
/// — membership is a binary search (hash-free, cache-friendly for the
/// few hundred distinct keys a run typically owns), and the slot ids
/// double as counting-sort buckets for [`GatherBuf::group`].
#[derive(Debug, Clone, Default)]
pub struct KeySlots {
    keys: Vec<Key>,
}

impl KeySlots {
    /// Build from an arbitrary key list (sorted and deduplicated here).
    pub fn new(mut keys: Vec<Key>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        KeySlots { keys }
    }

    /// Build from a slice already in sorted order (`KeyTypes::keys_of`
    /// returns one); debug-asserted, not re-sorted.
    pub fn from_sorted(keys: Vec<Key>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        KeySlots { keys }
    }

    /// The slot of `key`, if it belongs to this universe.
    #[inline]
    pub fn slot_of(&self, key: Key) -> Option<u32> {
        self.keys.binary_search(&key).ok().map(|i| i as u32)
    }

    /// Whether `key` belongs to this universe.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// The key occupying `slot` (slots are dense: `0..len`).
    #[inline]
    pub fn key(&self, slot: u32) -> Key {
        self.keys[slot as usize]
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys, ascending.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }
}

impl FromIterator<Key> for KeySlots {
    fn from_iter<I: IntoIterator<Item = Key>>(iter: I) -> Self {
        KeySlots::new(iter.into_iter().collect())
    }
}

/// A packed append-only buffer of `(key slot, occurrence)` tuples —
/// what one datatype emits during its single scan over the scoped
/// transactions. Occurrences stay in scan order; [`GatherBuf::group`]
/// sorts them by slot *stably*, so each key's run replays the exact
/// sequence a per-key `Vec` push would have produced.
#[derive(Debug)]
pub struct GatherBuf<T> {
    slots: Vec<u32>,
    items: Vec<T>,
}

impl<T> Default for GatherBuf<T> {
    fn default() -> Self {
        GatherBuf::new()
    }
}

impl<T: 'static> GatherBuf<T> {
    /// Alias of [`GatherBuf::new`], kept from when only `'static`
    /// occurrence types could recycle their items side; the layout
    /// arena now pools every element type.
    pub fn new_pooled() -> Self {
        GatherBuf::new()
    }

    /// Alias of [`GatherBuf::group`] (see [`GatherBuf::new_pooled`]).
    pub fn group_pooled(self, n_slots: usize) -> Grouped<T>
    where
        T: Copy,
    {
        self.group(n_slots)
    }
}

impl<T> GatherBuf<T> {
    /// A fresh buffer with both sides recycled from the buffer pool:
    /// slot storage from the `u32` pool, items from the layout-keyed
    /// arena (which serves history-borrowing occurrence types too).
    pub fn new() -> Self {
        GatherBuf {
            slots: pool::take_u32_empty(),
            items: pool::take_layout(),
        }
    }

    /// Reserve room for `n` more occurrences.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
        self.items.reserve(n);
    }

    /// Append one occurrence of the key at `slot`.
    #[inline]
    pub fn push(&mut self, slot: u32, item: T) {
        self.slots.push(slot);
        self.items.push(item);
    }

    /// Occurrences appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Buffer footprint in bytes (the peak-gather gauge).
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * 4 + self.items.len() * std::mem::size_of::<T>()
    }

    /// Disassemble into `(slots, items)` without grouping — the escape
    /// hatch the differential reference pipeline uses to bucket the same
    /// occurrence stream through a hash map instead.
    pub fn into_parts(self) -> (Vec<u32>, Vec<T>) {
        (self.slots, self.items)
    }

    /// Group the occurrences into contiguous per-slot runs with one
    /// stable counting sort: O(len + n_slots), no hashing, no
    /// comparison sort. `n_slots` is the key-universe size
    /// ([`KeySlots::len`]); every pushed slot must be `< n_slots`.
    pub fn group(self, n_slots: usize) -> Grouped<T>
    where
        T: Copy,
    {
        // Both the scan-order items and the grouped copy cycle through
        // the layout arena, which folds them into the pool's peak gauge
        // as they are stashed.
        let (grouped, items) = self.group_core(n_slots, pool::take_layout());
        pool::put_layout(items);
        grouped
    }

    fn group_core(self, n_slots: usize, mut grouped: Vec<T>) -> (Grouped<T>, Vec<T>)
    where
        T: Copy,
    {
        let GatherBuf { slots, mut items } = self;
        let n = items.len();
        debug_assert!(n < u32::MAX as usize);

        // Histogram into offsets[s + 1], then prefix-sum so that
        // offsets[s]..offsets[s + 1] is slot s's run.
        let mut offsets = pool::take_u32(n_slots + 1);
        for &s in &slots {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..=n_slots {
            offsets[i] += offsets[i - 1];
        }

        // idx[p] = scan position of the occurrence that ends up at
        // grouped position p: stable, since positions within a slot are
        // handed out in scan order.
        let mut cursor = pool::take_u32_empty();
        cursor.extend_from_slice(&offsets[..n_slots]);
        let mut idx = pool::take_u32(n);
        for (i, &s) in slots.iter().enumerate() {
            let c = &mut cursor[s as usize];
            idx[*c as usize] = i as u32;
            *c += 1;
        }
        pool::put_u32(slots);
        pool::put_u32(cursor);

        // Out-of-place gather through the permutation index: one random
        // read plus one sequential write per occurrence. Beats an
        // in-place cycle-chasing permutation at 512k+ histories (swap
        // chains serialize on cache misses), at the cost of a second,
        // transient items allocation.
        grouped.reserve(n);
        grouped.extend(idx[..n].iter().map(|&i| items[i as usize]));
        pool::put_u32(idx);
        items.clear();

        (
            Grouped {
                items: grouped,
                offsets,
            },
            items,
        )
    }
}

/// The grouped output of [`GatherBuf::group`]: all occurrences in one
/// contiguous allocation, slot runs addressed through an offset table.
#[derive(Debug)]
pub struct Grouped<T> {
    items: Vec<T>,
    /// `n_slots + 1` entries; run `s` is `items[offsets[s]..offsets[s+1]]`.
    offsets: Vec<u32>,
}

impl<T> Grouped<T> {
    /// The occurrences of the key at `slot`, in original scan order.
    #[inline]
    pub fn run(&self, slot: u32) -> &[T] {
        let s = slot as usize;
        &self.items[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// Slots with at least one occurrence, ascending — exactly the keys
    /// the old hash-map gather would have created entries for.
    pub fn occupied(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.offsets.len() - 1)
            .filter(|&s| self.offsets[s] < self.offsets[s + 1])
            .map(|s| s as u32)
    }

    /// Total occurrences across all slots.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no occurrences at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Footprint in bytes (items + offset table).
    pub fn footprint_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.items.len() * std::mem::size_of::<T>()
    }
}

impl<T: 'static> Grouped<T> {
    /// Alias of dropping: `Drop` now returns the items allocation to
    /// the layout arena for every element type.
    pub fn recycle(self) {}
}

impl<T> Drop for Grouped<T> {
    fn drop(&mut self) {
        pool::put_u32(std::mem::take(&mut self.offsets));
        pool::put_layout(std::mem::take(&mut self.items));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_slots_intern_and_look_up() {
        let ks = KeySlots::new(vec![Key(7), Key(3), Key(7), Key(5)]);
        assert_eq!(ks.keys(), &[Key(3), Key(5), Key(7)]);
        assert_eq!(ks.slot_of(Key(5)), Some(1));
        assert_eq!(ks.slot_of(Key(4)), None);
        assert!(ks.contains(Key(3)));
        assert_eq!(ks.key(2), Key(7));
    }

    #[test]
    fn group_is_a_stable_bucket_sort() {
        let mut buf: GatherBuf<&str> = GatherBuf::new();
        for (slot, item) in [
            (2, "c0"),
            (0, "a0"),
            (2, "c1"),
            (1, "b0"),
            (0, "a1"),
            (2, "c2"),
        ] {
            buf.push(slot, item);
        }
        let g = buf.group(4);
        assert_eq!(g.run(0), &["a0", "a1"]);
        assert_eq!(g.run(1), &["b0"]);
        assert_eq!(g.run(2), &["c0", "c1", "c2"]);
        assert_eq!(g.run(3), &[] as &[&str]);
        assert_eq!(g.occupied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn group_matches_hash_map_reference_on_random_streams() {
        // Deterministic pseudo-random stream; compare against the
        // retained per-key Vec reference.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n_slots in [1usize, 3, 17, 64] {
            let mut buf: GatherBuf<u64> = GatherBuf::new();
            let mut reference: Vec<Vec<u64>> = vec![Vec::new(); n_slots];
            for i in 0..500u64 {
                let slot = (next() % n_slots as u64) as u32;
                buf.push(slot, i);
                reference[slot as usize].push(i);
            }
            let g = buf.group(n_slots);
            for (slot, expect) in reference.iter().enumerate() {
                assert_eq!(g.run(slot as u32), expect.as_slice());
            }
        }
    }

    #[test]
    fn pooled_path_groups_identically_and_recycles() {
        let fill = |buf: &mut GatherBuf<u64>| {
            for (slot, item) in [(2, 20), (0, 1), (2, 21), (1, 10), (0, 2)] {
                buf.push(slot, item);
            }
        };
        let mut plain: GatherBuf<u64> = GatherBuf::new();
        let mut pooled: GatherBuf<u64> = GatherBuf::new_pooled();
        fill(&mut plain);
        fill(&mut pooled);
        let gp = plain.group(3);
        let gq = pooled.group_pooled(3);
        for s in 0..3 {
            assert_eq!(gp.run(s), gq.run(s));
        }
        drop(gp);
        gq.recycle();

        // The recycled items capacity comes back on the next pooled buffer.
        let back: GatherBuf<u64> = GatherBuf::new_pooled();
        assert!(back.items.capacity() >= 5, "items allocation recycled");
    }

    #[test]
    fn empty_buffer_groups_cleanly() {
        let buf: GatherBuf<u8> = GatherBuf::new();
        let g = buf.group(5);
        assert!(g.is_empty());
        assert_eq!(g.occupied().count(), 0);
        assert_eq!(g.run(4), &[] as &[u8]);
    }
}
