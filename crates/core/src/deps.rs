//! The inferred dependency graph (IDSG) with per-edge witnesses.

use crate::anomaly::Witness;
use elle_graph::{Csr, DiGraph, EdgeClass, EdgeMask};
use elle_history::TxnId;
use rustc_hash::FxHashMap;

/// The Inferred Direct Serialization Graph of §4.3.2, over observed
/// transactions, each edge annotated with the evidence that produced it.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// Vertex `i` is transaction `TxnId(i)`.
    pub graph: DiGraph,
    witnesses: FxHashMap<(u32, u32), Vec<Witness>>,
}

impl DepGraph {
    /// A graph able to hold `n` transactions.
    pub fn with_txns(n: usize) -> Self {
        DepGraph {
            graph: DiGraph::with_vertices(n),
            witnesses: FxHashMap::default(),
        }
    }

    /// Add a dependency `from < to` substantiated by `witness`.
    ///
    /// Self-dependencies are dropped: Adya's serialization graphs assume
    /// `Ti ≠ Tj` (§4.1.4, footnote 3 of the paper).
    pub fn add(&mut self, from: TxnId, to: TxnId, witness: Witness) {
        if from == to {
            return;
        }
        let (a, b) = (from.0, to.0);
        self.graph.add_edge(a, b, witness.class());
        self.witnesses.entry((a, b)).or_default().push(witness);
    }

    /// All witnesses on edge `(from, to)`.
    pub fn witnesses(&self, from: TxnId, to: TxnId) -> &[Witness] {
        self.witnesses
            .get(&(from.0, to.0))
            .map_or(&[], |v| v.as_slice())
    }

    /// A witness on `(from, to)` of a specific class, if one exists.
    pub fn witness_of_class(&self, from: TxnId, to: TxnId, class: EdgeClass) -> Option<&Witness> {
        self.witnesses(from, to).iter().find(|w| w.class() == class)
    }

    /// Pick a witness for presenting edge `(from, to)`, preferring classes
    /// earlier in `preference` (restricted to `allowed`).
    pub fn present(
        &self,
        from: TxnId,
        to: TxnId,
        allowed: EdgeMask,
        preference: &[EdgeClass],
    ) -> Option<&Witness> {
        let ws = self.witnesses(from, to);
        for &c in preference {
            if !allowed.contains(c) {
                continue;
            }
            if let Some(w) = ws.iter().find(|w| w.class() == c) {
                return Some(w);
            }
        }
        // Fall back to any allowed witness.
        ws.iter().find(|w| allowed.contains(w.class()))
    }

    /// Count of edges per class (for report statistics).
    pub fn class_counts(&self) -> FxHashMap<EdgeClass, usize> {
        let mut counts: FxHashMap<EdgeClass, usize> = FxHashMap::default();
        for ws in self.witnesses.values() {
            let mut classes: Vec<EdgeClass> = ws.iter().map(|w| w.class()).collect();
            classes.sort_by_key(|c| *c as u8);
            classes.dedup();
            for c in classes {
                *counts.entry(c).or_default() += 1;
            }
        }
        counts
    }

    /// Freeze the adjacency into an immutable [`Csr`] snapshot — sorted
    /// flat rows, forward and reverse — on which all cycle searches run.
    /// Call once after the last edge is added; the builder is untouched.
    pub fn freeze(&self) -> Csr {
        self.graph.freeze()
    }

    /// Merge another dependency graph into this one (used to combine the
    /// per-datatype inferences into a single IDSG).
    pub fn merge(&mut self, other: DepGraph) {
        for ((a, b), ws) in other.witnesses {
            for w in ws {
                self.graph.add_edge(a, b, w.class());
                self.witnesses.entry((a, b)).or_default().push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::{Elem, Key, ProcessId};

    fn ww(k: u64, p: u64, n: u64) -> Witness {
        Witness::WwList {
            key: Key(k),
            prev: Elem(p),
            next: Elem(n),
        }
    }

    #[test]
    fn self_edges_dropped() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(0), ww(1, 1, 2));
        assert_eq!(g.graph.edge_count(), 0);
        assert!(g.witnesses(TxnId(0), TxnId(0)).is_empty());
    }

    #[test]
    fn witnesses_accumulate() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        assert_eq!(g.witnesses(TxnId(0), TxnId(1)).len(), 2);
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Wr)
            .is_some());
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Rw)
            .is_none());
        assert_eq!(g.graph.edge_mask(0, 1), EdgeMask::WW | EdgeMask::WR);
    }

    #[test]
    fn presentation_prefers_order() {
        let mut g = DepGraph::with_txns(2);
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::ALL,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Ww);
        // Restrict to rw only:
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::RW,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Rw);
    }

    #[test]
    fn freeze_snapshots_adjacency() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(1),
            TxnId(2),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let csr = g.freeze();
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.edge_mask(0, 1), EdgeMask::WW);
        assert_eq!(csr.edge_mask(1, 2), EdgeMask::WR);
        assert_eq!(csr.edge_mask(2, 0), EdgeMask::NONE);
    }

    #[test]
    fn merge_combines_edges() {
        let mut a = DepGraph::with_txns(3);
        a.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        let mut b = DepGraph::with_txns(3);
        b.add(
            TxnId(1),
            TxnId(2),
            Witness::Process {
                process: ProcessId(0),
            },
        );
        a.merge(b);
        assert_eq!(a.graph.edge_count(), 2);
        assert_eq!(a.witnesses(TxnId(1), TxnId(2)).len(), 1);
    }

    #[test]
    fn class_counts() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(TxnId(1), TxnId(2), ww(1, 2, 3));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let c = g.class_counts();
        assert_eq!(c.get(&EdgeClass::Ww), Some(&2));
        assert_eq!(c.get(&EdgeClass::Wr), Some(&1));
    }
}
