//! The inferred dependency graph (IDSG) with per-edge witnesses, built
//! **hash-free**: edge producers append `(src, dst, witness)` tuples to
//! a flat pending buffer ([`DepGraph::add`] is a push, not a probe);
//! [`DepGraph::build`] seals the buffer by sorting it — a counting-sort
//! scatter on `src` (the radix of the packed `src << 32 | dst` key)
//! followed by small per-row sorts — deduplicating `(src, dst)` pairs
//! into a **spine**: one globally sorted edge array with a class mask
//! and the [`Ord`]-least witness per class hung off each edge. Repeated
//! builds (the streaming checker's epoch seals, the checker's
//! per-datatype merges) two-way-merge the sorted delta into the carried
//! spine with run-length block copies, so an incrementally grown graph
//! is byte-identical to a batch-built one.
//!
//! [`DepGraph::freeze`] then emits the immutable [`Csr`] directly from
//! the spine — a linear pass, no sorts and no `(src, dst) → position`
//! hash index anywhere on the path.
//!
//! ## Canonical witnesses
//!
//! Every report-visible query ([`DepGraph::present`],
//! [`DepGraph::witness_of_class`]) resolves to the [`Ord`]-least
//! witness of a class, so retaining exactly that witness per
//! `(edge, class)` during dedup preserves reports byte-for-byte while
//! dropping the unbounded per-edge witness lists the hash-indexed
//! design carried.

use crate::anomaly::Witness;
use elle_graph::{Csr, EdgeClass, EdgeMask};
use elle_history::TxnId;
use rustc_hash::FxHashMap;

#[inline]
fn pack(src: u32, dst: u32) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// The sealed, sorted half of a [`DepGraph`]: edges ascending by packed
/// `(src, dst)` key, each carrying its class mask and a witness row
/// sorted by class discriminant (one — the `Ord`-least — per class
/// present in the mask).
///
/// Witness rows live in an **append-only arena** addressed by
/// `(offset, len)` per edge. A sorted two-way merge then moves only
/// 13 bytes per edge (key + mask + row address) for untouched runs —
/// the dominant case at a streaming epoch seal — and appends to the
/// arena only the rows the delta actually introduced or improved.
#[derive(Debug, Clone, Default)]
struct Spine {
    /// `src << 32 | dst`, strictly ascending.
    packed: Vec<u64>,
    /// Class mask per edge, parallel to `packed`.
    masks: Vec<EdgeMask>,
    /// Witness row per edge: `(arena offset, row length)`. A row holds
    /// one witness per class present in the edge's mask, ascending by
    /// class discriminant — at most 8.
    rows: Vec<(u32, u8)>,
    /// The witness arena. Superseded rows (an edge whose canonical
    /// witness improved across merges) leak until the next full
    /// rebuild — bounded by the number of distinct improvements, far
    /// below the duplicate witness lists the hash-indexed design kept.
    arena: Vec<Witness>,
    /// Distinct edges per class (indexed by `EdgeClass` discriminant),
    /// recomputed on every merge.
    counts: [usize; 8],
}

impl Spine {
    fn wit_row(&self, i: usize) -> &[Witness] {
        let (off, len) = self.rows[i];
        &self.arena[off as usize..off as usize + len as usize]
    }

    /// Append one edge whose witness row was just pushed onto the end
    /// of `self.arena` (`row_start` = arena offset of its first entry).
    fn push_tail_row(&mut self, packed: u64, mask: EdgeMask, row_start: usize) {
        self.packed.push(packed);
        self.masks.push(mask);
        self.rows
            .push((row_start as u32, (self.arena.len() - row_start) as u8));
    }

    /// Recompute per-class edge counts via a mask-byte histogram: one
    /// byte read per edge, then a 256 × 8 unpack — no per-edge
    /// class iteration.
    fn recount(&mut self) {
        let mut hist = [0usize; 256];
        for m in &self.masks {
            hist[m.0 as usize] += 1;
        }
        self.counts = [0; 8];
        for (byte, n) in hist.into_iter().enumerate() {
            if n == 0 {
                continue;
            }
            for c in 0..8 {
                if byte & (1 << c) != 0 {
                    self.counts[c] += n;
                }
            }
        }
    }
}

/// Recyclable merge-output buffers: the spine vectors retired by one
/// merge become the output buffers of the next, so steady-state epoch
/// seals allocate nothing.
#[derive(Debug, Default)]
struct SpineBufs {
    packed: Vec<u64>,
    masks: Vec<EdgeMask>,
    rows: Vec<(u32, u8)>,
}

/// Merge two sorted spines, reusing `a`'s witness arena and `spare`'s
/// vector capacities. Runs unique to either side are block-copied (the
/// `refreeze`-style untouched-row fast path — for `a`'s runs the arena
/// rows are carried by address, no witness moves at all); edges present
/// in both union their masks and keep the `Ord`-least witness per
/// class. On return `spare` holds `a`'s retired buffers for the next
/// merge.
fn merge_spines(a: Spine, b: Spine, spare: &mut SpineBufs) -> Spine {
    if a.packed.is_empty() {
        let mut b = b;
        b.recount();
        return b;
    }
    if b.packed.is_empty() {
        let mut a = a;
        a.recount();
        return a;
    }
    let n = a.packed.len() + b.packed.len();
    let mut out = Spine {
        packed: std::mem::take(&mut spare.packed),
        masks: std::mem::take(&mut spare.masks),
        rows: std::mem::take(&mut spare.rows),
        arena: Vec::new(),
        counts: [0; 8],
    };
    out.packed.clear();
    out.masks.clear();
    out.rows.clear();
    out.packed.reserve(n);
    out.masks.reserve(n);
    out.rows.reserve(n);
    // `a` is the carried spine: adopt its arena wholesale so untouched
    // rows keep their addresses; only delta rows append.
    out.arena = a.arena;
    out.arena.reserve(b.arena.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.packed.len() && j < b.packed.len() {
        if a.packed[i] < b.packed[j] {
            let run = i + a.packed[i..].partition_point(|&p| p < b.packed[j]);
            out.packed.extend_from_slice(&a.packed[i..run]);
            out.masks.extend_from_slice(&a.masks[i..run]);
            out.rows.extend_from_slice(&a.rows[i..run]);
            i = run;
        } else if b.packed[j] < a.packed[i] {
            let run = j + b.packed[j..].partition_point(|&p| p < a.packed[i]);
            for k in j..run {
                let start = out.arena.len();
                let (off, len) = b.rows[k];
                out.arena
                    .extend_from_slice(&b.arena[off as usize..off as usize + len as usize]);
                out.push_tail_row(b.packed[k], b.masks[k], start);
            }
            j = run;
        } else {
            // Same (src, dst): union masks, merge witness rows by class
            // keeping the least witness where both sides have one. When
            // the merged row equals `a`'s existing row — the common
            // "evidence re-derived, nothing improved" case — the edge
            // keeps its arena address and nothing is copied.
            let (aoff, alen) = a.rows[i];
            let ra = &out.arena[aoff as usize..aoff as usize + alen as usize];
            let (boff, blen) = b.rows[j];
            let rb = &b.arena[boff as usize..boff as usize + blen as usize];
            let mut changed = false;
            let mut merged: Vec<Witness> = Vec::with_capacity(8);
            let (mut x, mut y) = (0usize, 0usize);
            while x < ra.len() && y < rb.len() {
                let (ca, cb) = (ra[x].class() as u8, rb[y].class() as u8);
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => {
                        merged.push(ra[x].clone());
                        x += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(rb[y].clone());
                        changed = true;
                        y += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        if rb[y] < ra[x] {
                            merged.push(rb[y].clone());
                            changed = true;
                        } else {
                            merged.push(ra[x].clone());
                        }
                        x += 1;
                        y += 1;
                    }
                }
            }
            if x < ra.len() {
                merged.extend_from_slice(&ra[x..]);
            }
            if y < rb.len() {
                merged.extend_from_slice(&rb[y..]);
                changed = true;
            }
            out.packed.push(a.packed[i]);
            out.masks.push(a.masks[i].union(b.masks[j]));
            if changed {
                let start = out.arena.len();
                out.arena.append(&mut merged);
                out.rows
                    .push((start as u32, (out.arena.len() - start) as u8));
            } else {
                out.rows.push(a.rows[i]);
            }
            i += 1;
            j += 1;
        }
    }
    out.packed.extend_from_slice(&a.packed[i..]);
    out.masks.extend_from_slice(&a.masks[i..]);
    out.rows.extend_from_slice(&a.rows[i..]);
    for k in j..b.packed.len() {
        let start = out.arena.len();
        let (off, len) = b.rows[k];
        out.arena
            .extend_from_slice(&b.arena[off as usize..off as usize + len as usize]);
        out.push_tail_row(b.packed[k], b.masks[k], start);
    }
    out.recount();
    // Retire `a`'s (fully consumed) buffers for the next merge.
    spare.packed = a.packed;
    spare.masks = a.masks;
    spare.rows = a.rows;
    out
}

/// The Inferred Direct Serialization Graph of §4.3.2, over observed
/// transactions, each edge annotated with the evidence that produced it.
///
/// Mutation is two-phase: [`DepGraph::add`] appends to a flat pending
/// buffer; [`DepGraph::build`] (or [`DepGraph::freeze`], which calls
/// it) seals pending edges into the sorted spine. Queries read the
/// spine only — call them after a build/freeze.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// Vertex floor: vertex `i` is transaction `TxnId(i)`.
    txns: usize,
    /// Unsealed edges, in emission order.
    pending: Vec<(u64, Witness)>,
    /// The sealed, sorted edge set.
    spine: Spine,
    /// High-water mark of the pending buffer (observability: reported
    /// by `--timing` as the peak EdgeBuf length).
    peak_pending: usize,
    /// Recycled merge-output buffers (see [`SpineBufs`]).
    spare: SpineBufs,
    /// Per-class counts of edges retired from the spine (windowed
    /// streaming), folded into [`DepGraph::class_counts`] so report
    /// statistics keep covering the whole prefix.
    extra: [usize; 8],
}

impl DepGraph {
    /// A graph able to hold `n` transactions.
    pub fn with_txns(n: usize) -> Self {
        DepGraph {
            txns: n,
            ..DepGraph::default()
        }
    }

    /// Grow the vertex set to hold transactions `0..n` (used by the
    /// streaming checker as the history extends; vertices without edges
    /// are harmless but keep frozen snapshots aligned with batch runs).
    pub fn ensure_txns(&mut self, n: usize) {
        self.txns = self.txns.max(n);
    }

    /// The vertex floor: frozen snapshots hold at least this many
    /// vertices, edges or not.
    pub fn txns_floor(&self) -> usize {
        self.txns
    }

    /// Pre-size the pending buffer for `n` additional edges.
    pub fn reserve_edges(&mut self, n: usize) {
        self.pending.reserve(n);
    }

    /// Add a dependency `from < to` substantiated by `witness` — a push
    /// into the flat pending buffer; no hash probe, no dedup until
    /// [`DepGraph::build`].
    ///
    /// Self-dependencies are dropped: Adya's serialization graphs assume
    /// `Ti ≠ Tj` (§4.1.4, footnote 3 of the paper).
    #[inline]
    pub fn add(&mut self, from: TxnId, to: TxnId, witness: Witness) {
        if from == to {
            return;
        }
        self.pending.push((pack(from.0, to.0), witness));
    }

    /// Peak length the pending edge buffer reached since construction
    /// (or the last [`DepGraph::take_edge_buf_peak`]) — the `--timing`
    /// observability hook for the sort-based pipeline.
    pub fn edge_buf_peak(&self) -> usize {
        self.peak_pending.max(self.pending.len())
    }

    /// Read and reset the peak gauge. The streaming checker calls this
    /// at each seal so every epoch reports *its own* buffered-delta
    /// peak, not the lifetime maximum.
    pub fn take_edge_buf_peak(&mut self) -> usize {
        let peak = self.edge_buf_peak();
        self.peak_pending = 0;
        peak
    }

    /// Seal the pending buffer into the sorted spine: counting-sort
    /// scatter on `src`, per-row sort on `(dst, class)`, dedup keeping
    /// the `Ord`-least witness per `(edge, class)`, then a two-way
    /// sorted merge with the carried spine (block-copying untouched
    /// runs). Idempotent when nothing is pending.
    pub fn build(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.peak_pending = self.peak_pending.max(self.pending.len());
        let pending = std::mem::take(&mut self.pending);

        // ── Radix pass: scatter by src (high 32 bits of the packed
        //    key). Each slot packs the remaining sort key and the
        //    pending index into one u64 — `dst (32) | class (3) |
        //    index (29)` — so the random-position scatter writes 8
        //    bytes per edge, not 16. ─────────────────────────────────────
        assert!(pending.len() < (1 << 29), "edge buffer exceeds 2^29 tuples");
        let mut rows = 0usize;
        for &(p, _) in &pending {
            rows = rows.max((p >> 32) as usize + 1);
        }
        let mut counts = crate::pool::take_u32(rows + 1);
        for &(p, _) in &pending {
            counts[(p >> 32) as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut slots: Vec<u64> = crate::pool::take_u64(pending.len());
        {
            let mut cursor = crate::pool::take_u32_empty();
            cursor.extend_from_slice(&counts[..rows]);
            for (idx, (p, w)) in pending.iter().enumerate() {
                let s = (p >> 32) as usize;
                let slot = (p & 0xffff_ffff) << 32 | (w.class() as u64) << 29 | idx as u64;
                slots[cursor[s] as usize] = slot;
                cursor[s] += 1;
            }
            crate::pool::put_u32(cursor);
        }

        // ── Per-row sorts + dedup sweep into a sorted delta spine:
        //    classes ascend within an edge, so each edge's canonical
        //    witness row lands contiguously in the delta arena. ─────────
        let mut delta = Spine {
            packed: Vec::with_capacity(pending.len()),
            masks: Vec::with_capacity(pending.len()),
            rows: Vec::with_capacity(pending.len()),
            arena: Vec::with_capacity(pending.len().min(1 << 20)),
            counts: [0; 8],
        };
        const IDX_MASK: u64 = (1 << 29) - 1;
        let mut mask = EdgeMask::NONE;
        let mut cur: Option<u64> = None;
        let mut row_start = 0usize;
        for src in 0..rows {
            let (lo, hi) = (counts[src] as usize, counts[src + 1] as usize);
            slots[lo..hi].sort_unstable();
            let mut i = lo;
            while i < hi {
                let slot = slots[i];
                let key = slot & !IDX_MASK; // (dst, class)
                let packed = (src as u64) << 32 | (slot >> 32);
                let class_bit = EdgeMask(1 << ((slot >> 29) & 7) as u8);
                // The least witness of this (edge, class) run.
                let mut least = &pending[(slot & IDX_MASK) as usize].1;
                i += 1;
                while i < hi && slots[i] & !IDX_MASK == key {
                    let w = &pending[(slots[i] & IDX_MASK) as usize].1;
                    if w < least {
                        least = w;
                    }
                    i += 1;
                }
                if cur != Some(packed) {
                    if let Some(p) = cur {
                        delta.push_tail_row(p, mask, row_start);
                    }
                    cur = Some(packed);
                    mask = EdgeMask::NONE;
                    row_start = delta.arena.len();
                }
                mask = mask.union(class_bit);
                delta.arena.push(least.clone());
            }
        }
        if let Some(p) = cur {
            delta.push_tail_row(p, mask, row_start);
        }
        crate::pool::put_u32(counts);
        crate::pool::put_u64(slots);

        // ── Two-way merge into the carried spine. ─────────────────────
        let prev = std::mem::take(&mut self.spine);
        self.spine = merge_spines(prev, delta, &mut self.spare);
    }

    /// Number of distinct sealed `(src, dst)` edges (classes merged).
    pub fn edge_count(&self) -> usize {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        self.spine.packed.len()
    }

    /// The mask on sealed edge `(src, dst)` — a binary search of the
    /// spine — or the empty mask if absent.
    pub fn edge_mask(&self, src: u32, dst: u32) -> EdgeMask {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        match self.spine.packed.binary_search(&pack(src, dst)) {
            Ok(i) => self.spine.masks[i],
            Err(_) => EdgeMask::NONE,
        }
    }

    /// Sealed out-edges of `v` as `(dst, mask)` pairs, ascending by dst.
    pub fn out_edges(&self, v: u32) -> impl Iterator<Item = (u32, EdgeMask)> + '_ {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        let lo = self.spine.packed.partition_point(|&p| p < (v as u64) << 32);
        let hi = self
            .spine
            .packed
            .partition_point(|&p| p < (v as u64 + 1) << 32);
        self.spine.packed[lo..hi]
            .iter()
            .zip(&self.spine.masks[lo..hi])
            .map(|(&p, &m)| ((p & 0xffff_ffff) as u32, m))
    }

    /// Sealed out-neighbours of `v` reachable via at least one class in
    /// `allowed`.
    pub fn out_neighbors_masked(
        &self,
        v: u32,
        allowed: EdgeMask,
    ) -> impl Iterator<Item = u32> + '_ {
        self.out_edges(v)
            .filter(move |(_, m)| m.intersects(allowed))
            .map(|(d, _)| d)
    }

    /// All sealed edges as `(src, dst, mask)`, in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, EdgeMask)> + '_ {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        self.spine
            .packed
            .iter()
            .zip(&self.spine.masks)
            .map(|(&p, &m)| ((p >> 32) as u32, (p & 0xffff_ffff) as u32, m))
    }

    /// The canonical witnesses on sealed edge `(from, to)`: the
    /// [`Ord`]-least witness of each class present, ascending by class.
    pub fn witnesses(&self, from: TxnId, to: TxnId) -> &[Witness] {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        match self.spine.packed.binary_search(&pack(from.0, to.0)) {
            Ok(i) => self.spine.wit_row(i),
            Err(_) => &[],
        }
    }

    /// A witness on `(from, to)` of a specific class, if one exists —
    /// the [`Ord`]-least such witness, so the answer is a function of the
    /// edge's witness *set*, not of insertion order.
    pub fn witness_of_class(&self, from: TxnId, to: TxnId, class: EdgeClass) -> Option<&Witness> {
        self.witnesses(from, to).iter().find(|w| w.class() == class)
    }

    /// Pick a witness for presenting edge `(from, to)`, preferring classes
    /// earlier in `preference` (restricted to `allowed`). Within a class
    /// the [`Ord`]-least witness wins, so presentation is canonical: an
    /// incrementally-grown graph presents exactly like a batch-built one
    /// regardless of the order evidence arrived in.
    pub fn present(
        &self,
        from: TxnId,
        to: TxnId,
        allowed: EdgeMask,
        preference: &[EdgeClass],
    ) -> Option<&Witness> {
        let ws = self.witnesses(from, to);
        for &c in preference {
            if !allowed.contains(c) {
                continue;
            }
            if let Some(w) = ws.iter().find(|w| w.class() == c) {
                return Some(w);
            }
        }
        // Fall back to the least allowed witness.
        ws.iter().filter(|w| allowed.contains(w.class())).min()
    }

    /// Count of distinct edges per class (for report statistics), read
    /// from counters maintained by the spine merges.
    pub fn class_counts(&self) -> FxHashMap<EdgeClass, usize> {
        debug_assert!(self.pending.is_empty(), "build() before querying");
        let mut counts: FxHashMap<EdgeClass, usize> = FxHashMap::default();
        for c in EdgeClass::ALL {
            let n = self.spine.counts[c as usize] + self.extra[c as usize];
            if n > 0 {
                counts.insert(c, n);
            }
        }
        counts
    }

    /// Replace the retired-edge counts folded into
    /// [`DepGraph::class_counts`]. The windowed stream checker owns the
    /// authoritative tally (it survives full graph rebuilds) and
    /// re-applies it here before assembling each report.
    pub fn set_extra_counts(&mut self, extra: [usize; 8]) {
        self.extra = extra;
    }

    /// Retire every sealed edge whose *source* is below `r`, compacting
    /// the spine (and its witness arena) in place. Returns the
    /// per-class counts of the dropped edges so the caller can fold
    /// them into [`DepGraph::set_extra_counts`].
    ///
    /// Precondition (maintained by the windowed checker's cycle-safety
    /// proof): no retained edge points backward into the retired range,
    /// so dropping sources below `r` removes the retired vertices'
    /// entire adjacency. Since the spine is sorted by `(src, dst)`, the
    /// retired edges are exactly a prefix.
    pub fn retire_below(&mut self, r: u32) -> [usize; 8] {
        self.build();
        let cut = self.spine.packed.partition_point(|&p| p < (r as u64) << 32);
        if cut == 0 {
            return [0; 8];
        }
        let before = self.spine.counts;
        drop(self.spine.packed.drain(..cut));
        drop(self.spine.masks.drain(..cut));
        drop(self.spine.rows.drain(..cut));
        debug_assert!(
            self.spine
                .packed
                .iter()
                .all(|&p| (p & 0xffff_ffff) >= r as u64),
            "retained edge points into the retired range"
        );
        self.spine.recount();

        // Compact the witness arena: copy the retained rows into a
        // fresh arena in row order, rewriting addresses, so retired
        // witnesses are actually released rather than leaking until the
        // next full rebuild.
        let mut arena: Vec<Witness> =
            Vec::with_capacity(self.spine.rows.iter().map(|&(_, len)| len as usize).sum());
        for row in &mut self.spine.rows {
            let (off, len) = *row;
            let start = arena.len();
            arena.extend_from_slice(&self.spine.arena[off as usize..off as usize + len as usize]);
            *row = (start as u32, len);
        }
        self.spine.arena = arena;

        let mut dropped = [0usize; 8];
        for (c, d) in dropped.iter_mut().enumerate() {
            *d = before[c] - self.spine.counts[c];
        }
        dropped
    }

    /// Bytes resident in the sealed spine (edges, masks, witness rows
    /// and arena) — the dominant carried-graph footprint a windowed
    /// checker meters against its byte budget.
    pub fn resident_bytes(&self) -> usize {
        self.spine.packed.len() * 8
            + self.spine.masks.len()
            + self.spine.rows.len() * std::mem::size_of::<(u32, u8)>()
            + self.spine.arena.len() * std::mem::size_of::<Witness>()
            + self.pending.len() * std::mem::size_of::<(u64, Witness)>()
    }

    /// Seal any pending edges and freeze the spine into an immutable
    /// [`Csr`] snapshot — sorted flat rows, forward and reverse — on
    /// which all cycle searches run. A linear pass: the spine *is* the
    /// sorted edge list, so no per-row sort and no hash index.
    pub fn freeze(&mut self) -> Csr {
        self.build();
        Csr::from_sorted_edges(self.txns, &self.spine.packed, &self.spine.masks)
    }

    /// Merge another dependency graph into this one (used to combine the
    /// per-datatype inferences into a single IDSG): a two-way merge of
    /// the sealed spines plus concatenation of any pending buffers —
    /// cheap, since the datatype analyses partition edges by key.
    pub fn merge(&mut self, other: DepGraph) {
        self.txns = self.txns.max(other.txns);
        self.peak_pending = self.peak_pending.max(other.peak_pending);
        for (c, n) in other.extra.iter().enumerate() {
            self.extra[c] += n;
        }
        self.pending.extend(other.pending);
        if !other.spine.packed.is_empty() {
            let prev = std::mem::take(&mut self.spine);
            self.spine = merge_spines(prev, other.spine, &mut self.spare);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::{Elem, Key, ProcessId};

    fn ww(k: u64, p: u64, n: u64) -> Witness {
        Witness::WwList {
            key: Key(k),
            prev: Elem(p),
            next: Elem(n),
        }
    }

    #[test]
    fn retire_below_drops_a_source_prefix_and_keeps_counts_whole() {
        let mut g = DepGraph::with_txns(5);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(TxnId(1), TxnId(2), ww(1, 2, 3));
        g.add(
            TxnId(1),
            TxnId(3),
            Witness::WrList {
                key: Key(1),
                elem: Elem(3),
            },
        );
        g.add(TxnId(2), TxnId(3), ww(2, 1, 2));
        g.add(TxnId(3), TxnId(4), ww(2, 2, 3));
        g.build();
        let full = g.class_counts();

        let dropped = g.retire_below(2);
        assert_eq!(dropped[EdgeClass::Ww as usize], 2);
        assert_eq!(dropped[EdgeClass::Wr as usize], 1);
        assert_eq!(g.edge_count(), 2, "only retained-source edges remain");
        assert!(g.witnesses(TxnId(0), TxnId(1)).is_empty());
        assert_eq!(g.witnesses(TxnId(2), TxnId(3)), &[ww(2, 1, 2)]);
        assert_eq!(g.witnesses(TxnId(3), TxnId(4)), &[ww(2, 2, 3)]);

        // Folding the dropped counts back via extra keeps class_counts
        // identical to the unretired graph.
        g.set_extra_counts(dropped);
        assert_eq!(g.class_counts(), full);

        // Retiring below an untouched watermark is a no-op.
        assert_eq!(g.retire_below(1), [0; 8]);
    }

    #[test]
    fn self_edges_dropped() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(0), ww(1, 1, 2));
        g.build();
        assert_eq!(g.edge_count(), 0);
        assert!(g.witnesses(TxnId(0), TxnId(0)).is_empty());
    }

    #[test]
    fn witnesses_accumulate() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        g.build();
        assert_eq!(g.witnesses(TxnId(0), TxnId(1)).len(), 2);
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Wr)
            .is_some());
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Rw)
            .is_none());
        assert_eq!(g.edge_mask(0, 1), EdgeMask::WW | EdgeMask::WR);
    }

    #[test]
    fn least_witness_per_class_survives_dedup() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(1), ww(1, 5, 6));
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(TxnId(0), TxnId(1), ww(1, 3, 4));
        g.build();
        assert_eq!(g.witnesses(TxnId(0), TxnId(1)), &[ww(1, 1, 2)]);
        // Evidence arriving across separate builds dedups identically.
        let mut h = DepGraph::with_txns(2);
        h.add(TxnId(0), TxnId(1), ww(1, 3, 4));
        h.build();
        h.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        h.build();
        h.add(TxnId(0), TxnId(1), ww(1, 5, 6));
        h.build();
        assert_eq!(
            h.witnesses(TxnId(0), TxnId(1)),
            g.witnesses(TxnId(0), TxnId(1))
        );
    }

    #[test]
    fn presentation_prefers_order() {
        let mut g = DepGraph::with_txns(2);
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.build();
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::ALL,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Ww);
        // Restrict to rw only:
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::RW,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Rw);
    }

    #[test]
    fn freeze_snapshots_spine() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(1),
            TxnId(2),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let csr = g.freeze();
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.edge_mask(0, 1), EdgeMask::WW);
        assert_eq!(csr.edge_mask(1, 2), EdgeMask::WR);
        assert_eq!(csr.edge_mask(2, 0), EdgeMask::NONE);
    }

    #[test]
    fn merge_combines_edges() {
        let mut a = DepGraph::with_txns(3);
        a.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        a.build();
        let mut b = DepGraph::with_txns(3);
        b.add(
            TxnId(1),
            TxnId(2),
            Witness::Process {
                process: ProcessId(0),
            },
        );
        b.build();
        a.merge(b);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.witnesses(TxnId(1), TxnId(2)).len(), 1);
    }

    #[test]
    fn class_counts() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(TxnId(1), TxnId(2), ww(1, 2, 3));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        g.build();
        let c = g.class_counts();
        assert_eq!(c.get(&EdgeClass::Ww), Some(&2));
        assert_eq!(c.get(&EdgeClass::Wr), Some(&1));
    }

    #[test]
    fn incremental_builds_match_one_shot() {
        // The same edge multiset split across many build() calls must
        // produce an identical spine (edges, masks, witnesses, counts).
        let all: Vec<(u32, u32, Witness)> = vec![
            (0, 1, ww(1, 1, 2)),
            (2, 0, ww(2, 4, 5)),
            (
                0,
                1,
                Witness::WrList {
                    key: Key(1),
                    elem: Elem(2),
                },
            ),
            (1, 2, ww(1, 2, 3)),
            (0, 1, ww(1, 0, 1)),
            (2, 0, Witness::Rr { key: Key(9) }),
        ];
        let mut one = DepGraph::with_txns(3);
        for (a, b, w) in &all {
            one.add(TxnId(*a), TxnId(*b), w.clone());
        }
        one.build();
        for split in 0..=all.len() {
            let mut inc = DepGraph::with_txns(3);
            for (a, b, w) in &all[..split] {
                inc.add(TxnId(*a), TxnId(*b), w.clone());
            }
            inc.build();
            for (a, b, w) in &all[split..] {
                inc.add(TxnId(*a), TxnId(*b), w.clone());
            }
            inc.build();
            let e1: Vec<_> = one.edges().collect();
            let e2: Vec<_> = inc.edges().collect();
            assert_eq!(e1, e2, "split {split}");
            for (a, b, _) in one.edges() {
                assert_eq!(
                    one.witnesses(TxnId(a), TxnId(b)),
                    inc.witnesses(TxnId(a), TxnId(b)),
                    "split {split} witnesses {a}->{b}"
                );
            }
            assert_eq!(one.class_counts(), inc.class_counts(), "split {split}");
        }
    }
}
