//! The inferred dependency graph (IDSG) with per-edge witnesses.

use crate::anomaly::Witness;
use elle_graph::{Csr, DiGraph, EdgeClass, EdgeMask};
use elle_history::TxnId;
use rustc_hash::FxHashMap;

/// Witnesses on one edge. Almost every edge carries exactly one, so the
/// first is stored inline — no per-edge heap allocation on the
/// million-edge derived-order paths.
#[derive(Debug)]
enum WitnessSlot {
    /// The common case: a single witness.
    One(Witness),
    /// Parallel evidence of several classes / keys.
    Many(Vec<Witness>),
}

impl WitnessSlot {
    fn as_slice(&self) -> &[Witness] {
        match self {
            WitnessSlot::One(w) => std::slice::from_ref(w),
            WitnessSlot::Many(v) => v.as_slice(),
        }
    }

    fn push(&mut self, w: Witness) {
        match self {
            WitnessSlot::One(first) => *self = WitnessSlot::Many(vec![first.clone(), w]),
            WitnessSlot::Many(v) => v.push(w),
        }
    }
}

/// The Inferred Direct Serialization Graph of §4.3.2, over observed
/// transactions, each edge annotated with the evidence that produced it.
///
/// Witnesses live in per-vertex rows **parallel to the adjacency**,
/// indexed by the stable edge positions [`DiGraph`] hands out — one
/// hash probe per edge insertion, not two, and no separate
/// `(src, dst)` → witness map to grow.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// Vertex `i` is transaction `TxnId(i)`.
    pub graph: DiGraph,
    /// `witnesses[src][pos]` annotates `graph.out_edges(src)[pos]`.
    witnesses: Vec<Vec<WitnessSlot>>,
    /// Distinct edges per class, maintained on every insertion (indexed
    /// by `EdgeClass` discriminant) — [`DepGraph::class_counts`] reads
    /// these instead of re-walking every witness row, so report assembly
    /// is O(classes), not O(edges). Incremental and batch construction
    /// agree because counters only depend on the per-edge class masks.
    counts: [usize; 8],
}

impl DepGraph {
    /// A graph able to hold `n` transactions.
    pub fn with_txns(n: usize) -> Self {
        DepGraph {
            graph: DiGraph::with_vertices(n),
            witnesses: Vec::new(),
            counts: [0; 8],
        }
    }

    /// Grow the vertex set to hold transactions `0..n` (used by the
    /// streaming checker as the history extends; vertices without edges
    /// are harmless but keep frozen snapshots aligned with batch runs).
    pub fn ensure_txns(&mut self, n: usize) {
        if n > 0 {
            self.graph.ensure_vertex(n as u32 - 1);
        }
    }

    fn count_new_classes(&mut self, prev: EdgeMask, added: EdgeMask) {
        let fresh = EdgeMask(added.0 & !prev.0);
        for c in fresh.iter() {
            self.counts[c as usize] += 1;
        }
    }

    /// Pre-size the edge indexes for `n` additional edges, avoiding
    /// rehash storms on bulk loads (derived orders, driver merges).
    pub fn reserve_edges(&mut self, n: usize) {
        self.graph.reserve_edges(n);
    }

    fn witness_row(&mut self, src: u32) -> &mut Vec<WitnessSlot> {
        if self.witnesses.len() <= src as usize {
            self.witnesses.resize_with(src as usize + 1, Vec::new);
        }
        &mut self.witnesses[src as usize]
    }

    /// Add a dependency `from < to` substantiated by `witness`.
    ///
    /// Self-dependencies are dropped: Adya's serialization graphs assume
    /// `Ti ≠ Tj` (§4.1.4, footnote 3 of the paper).
    pub fn add(&mut self, from: TxnId, to: TxnId, witness: Witness) {
        if from == to {
            return;
        }
        let (a, b) = (from.0, to.0);
        let mask = EdgeMask::of(witness.class());
        let (pos, prev) = self
            .graph
            .add_edge_mask_pos_prev(a, b, mask)
            .expect("nonempty mask");
        self.count_new_classes(prev, mask);
        let row = self.witness_row(a);
        if prev.is_empty() {
            debug_assert_eq!(pos as usize, row.len());
            row.push(WitnessSlot::One(witness));
        } else {
            row[pos as usize].push(witness);
        }
    }

    /// All witnesses on edge `(from, to)`.
    pub fn witnesses(&self, from: TxnId, to: TxnId) -> &[Witness] {
        let (a, b) = (from.0, to.0);
        match self.graph.edge_pos(a, b) {
            Some(pos) => self
                .witnesses
                .get(a as usize)
                .and_then(|row| row.get(pos as usize))
                .map_or(&[], |slot| slot.as_slice()),
            None => &[],
        }
    }

    /// A witness on `(from, to)` of a specific class, if one exists —
    /// the [`Ord`]-least such witness, so the answer is a function of the
    /// edge's witness *set*, not of insertion order.
    pub fn witness_of_class(&self, from: TxnId, to: TxnId, class: EdgeClass) -> Option<&Witness> {
        self.witnesses(from, to)
            .iter()
            .filter(|w| w.class() == class)
            .min()
    }

    /// Pick a witness for presenting edge `(from, to)`, preferring classes
    /// earlier in `preference` (restricted to `allowed`). Within a class
    /// the [`Ord`]-least witness wins, so presentation is canonical: an
    /// incrementally-grown graph presents exactly like a batch-built one
    /// regardless of the order evidence arrived in.
    pub fn present(
        &self,
        from: TxnId,
        to: TxnId,
        allowed: EdgeMask,
        preference: &[EdgeClass],
    ) -> Option<&Witness> {
        let ws = self.witnesses(from, to);
        for &c in preference {
            if !allowed.contains(c) {
                continue;
            }
            if let Some(w) = ws.iter().filter(|w| w.class() == c).min() {
                return Some(w);
            }
        }
        // Fall back to the least allowed witness.
        ws.iter().filter(|w| allowed.contains(w.class())).min()
    }

    /// Count of distinct edges per class (for report statistics), read
    /// from counters maintained at insertion time.
    pub fn class_counts(&self) -> FxHashMap<EdgeClass, usize> {
        let mut counts: FxHashMap<EdgeClass, usize> = FxHashMap::default();
        for c in EdgeClass::ALL {
            let n = self.counts[c as usize];
            if n > 0 {
                counts.insert(c, n);
            }
        }
        counts
    }

    /// Freeze the adjacency into an immutable [`Csr`] snapshot — sorted
    /// flat rows, forward and reverse — on which all cycle searches run.
    /// Call once after the last edge is added; the builder is untouched.
    pub fn freeze(&self) -> Csr {
        self.graph.freeze()
    }

    /// Merge another dependency graph into this one (used to combine the
    /// per-datatype inferences into a single IDSG). Whole witness slots
    /// are moved when the edge is new here — the common case, since the
    /// datatype analyses partition edges by key.
    pub fn merge(&mut self, other: DepGraph) {
        self.reserve_edges(other.graph.edge_count());
        for (src, mut row) in other.witnesses.into_iter().enumerate() {
            let src = src as u32;
            for (pos, ws) in row.drain(..).enumerate() {
                let (dst, mask) = other.graph.out_edges(src)[pos];
                let (self_pos, prev) = self
                    .graph
                    .add_edge_mask_pos_prev(src, dst, mask)
                    .expect("nonempty mask");
                self.count_new_classes(prev, mask);
                let self_row = self.witness_row(src);
                if prev.is_empty() {
                    debug_assert_eq!(self_pos as usize, self_row.len());
                    self_row.push(ws);
                } else {
                    for w in match ws {
                        WitnessSlot::One(w) => vec![w],
                        WitnessSlot::Many(v) => v,
                    } {
                        self_row[self_pos as usize].push(w);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elle_history::{Elem, Key, ProcessId};

    fn ww(k: u64, p: u64, n: u64) -> Witness {
        Witness::WwList {
            key: Key(k),
            prev: Elem(p),
            next: Elem(n),
        }
    }

    #[test]
    fn self_edges_dropped() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(0), ww(1, 1, 2));
        assert_eq!(g.graph.edge_count(), 0);
        assert!(g.witnesses(TxnId(0), TxnId(0)).is_empty());
    }

    #[test]
    fn witnesses_accumulate() {
        let mut g = DepGraph::with_txns(2);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        assert_eq!(g.witnesses(TxnId(0), TxnId(1)).len(), 2);
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Wr)
            .is_some());
        assert!(g
            .witness_of_class(TxnId(0), TxnId(1), EdgeClass::Rw)
            .is_none());
        assert_eq!(g.graph.edge_mask(0, 1), EdgeMask::WW | EdgeMask::WR);
    }

    #[test]
    fn presentation_prefers_order() {
        let mut g = DepGraph::with_txns(2);
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::RwList {
                key: Key(1),
                read_last: None,
                next: Elem(2),
            },
        );
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::ALL,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Ww);
        // Restrict to rw only:
        let w = g
            .present(
                TxnId(0),
                TxnId(1),
                EdgeMask::RW,
                &[EdgeClass::Ww, EdgeClass::Rw],
            )
            .unwrap();
        assert_eq!(w.class(), EdgeClass::Rw);
    }

    #[test]
    fn freeze_snapshots_adjacency() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(
            TxnId(1),
            TxnId(2),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let csr = g.freeze();
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.edge_mask(0, 1), EdgeMask::WW);
        assert_eq!(csr.edge_mask(1, 2), EdgeMask::WR);
        assert_eq!(csr.edge_mask(2, 0), EdgeMask::NONE);
    }

    #[test]
    fn merge_combines_edges() {
        let mut a = DepGraph::with_txns(3);
        a.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        let mut b = DepGraph::with_txns(3);
        b.add(
            TxnId(1),
            TxnId(2),
            Witness::Process {
                process: ProcessId(0),
            },
        );
        a.merge(b);
        assert_eq!(a.graph.edge_count(), 2);
        assert_eq!(a.witnesses(TxnId(1), TxnId(2)).len(), 1);
    }

    #[test]
    fn class_counts() {
        let mut g = DepGraph::with_txns(3);
        g.add(TxnId(0), TxnId(1), ww(1, 1, 2));
        g.add(TxnId(1), TxnId(2), ww(1, 2, 3));
        g.add(
            TxnId(0),
            TxnId(1),
            Witness::WrList {
                key: Key(1),
                elem: Elem(2),
            },
        );
        let c = g.class_counts();
        assert_eq!(c.get(&EdgeClass::Ww), Some(&2));
        assert_eq!(c.get(&EdgeClass::Wr), Some(&1));
    }
}
