//! The anomaly taxonomy: Adya's phenomena plus Elle's additions.

use elle_graph::EdgeClass;
use elle_history::{Elem, Key, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every anomaly class Elle can report (§4.3, §6, §6.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnomalyType {
    // ── Non-cycle anomalies ────────────────────────────────────────────
    /// Aborted read: a committed transaction observed a version written by
    /// an aborted transaction (Adya G1a).
    G1a,
    /// Intermediate read: a committed transaction observed a non-final
    /// write of some other transaction (Adya G1b).
    G1b,
    /// Dirty update (§4.1.5): a committed write incorporates state from an
    /// uncommitted (aborted) write.
    DirtyUpdate,
    /// Lost update: several committed transactions read the *same* version
    /// of a key and each subsequently wrote it — at most one of those
    /// writes can be the version's successor.
    LostUpdate,
    /// Garbage read (§6.1): a read observed a value that was never written.
    GarbageRead,
    /// Duplicate write (§6.1): the trace of a committed read contains the
    /// same argument more than once (e.g. a retried append applied twice).
    DuplicateWrite,
    /// Internal inconsistency (§6.1): a transaction's read disagrees with
    /// its own prior reads and writes.
    Internal,
    /// Inconsistent observation (§4.2.1): two committed reads of one key
    /// are incompatible (neither trace is a prefix of the other) — implying
    /// an aborted read in every interpretation.
    IncompatibleOrder,
    /// The inferred version order for a key contains a cycle (§7.4) — the
    /// per-key ordering assumptions contradict each other. Reported, then
    /// the key is discarded from dependency inference.
    CyclicVersionOrder,

    // ── Cycle anomalies over the inferred DSG ─────────────────────────
    /// Write cycle: a cycle of only `ww` edges (Adya G0).
    G0,
    /// Circular information flow: `ww`/`wr` cycle with ≥ 1 `wr` (Adya G1c).
    G1c,
    /// Read skew: a cycle with exactly one `rw` anti-dependency.
    GSingle,
    /// Write skew &c.: a cycle with two or more `rw` anti-dependencies
    /// (item-level Adya G2).
    G2Item,

    // Session (per-process) augmented cycles.
    /// G0 requiring at least one per-process order edge.
    G0Process,
    /// G1c requiring at least one per-process order edge.
    G1cProcess,
    /// G-single requiring at least one per-process order edge.
    GSingleProcess,
    /// G2-item requiring at least one per-process order edge.
    G2ItemProcess,

    // Real-time augmented cycles.
    /// G0 requiring at least one real-time order edge.
    G0Realtime,
    /// G1c requiring at least one real-time order edge.
    G1cRealtime,
    /// G-single requiring at least one real-time order edge.
    GSingleRealtime,
    /// G2-item requiring at least one real-time order edge.
    G2ItemRealtime,

    /// A cycle in the start-ordered serialization graph requiring at least
    /// one database-exposed timestamp edge (§5.1's time-precedes order,
    /// Adya's G-SI family). Only inferred when the system exposes
    /// transaction timestamps and claims they define its snapshot order.
    GSI,

    /// Windowed streaming only: a key's evidence was retired from the
    /// window and the key was touched again afterwards, so anomalies
    /// whose witness would need a retired transaction can no longer be
    /// confirmed or refuted. This is an explicit *indeterminate* marker
    /// — it violates no isolation model and never appears in batch
    /// (unbounded) checking.
    WindowEvicted,
}

impl AnomalyType {
    /// Is this one of the cycle anomalies?
    pub fn is_cycle(self) -> bool {
        use AnomalyType::*;
        !matches!(
            self,
            G1a | G1b
                | DirtyUpdate
                | LostUpdate
                | GarbageRead
                | DuplicateWrite
                | Internal
                | IncompatibleOrder
                | CyclicVersionOrder
                | WindowEvicted
        )
    }

    /// For cycle anomalies: the base class with session/realtime stripped.
    pub fn base(self) -> AnomalyType {
        use AnomalyType::*;
        match self {
            G0 | G0Process | G0Realtime => G0,
            G1c | G1cProcess | G1cRealtime => G1c,
            GSingle | GSingleProcess | GSingleRealtime => GSingle,
            G2Item | G2ItemProcess | G2ItemRealtime => G2Item,
            other => other,
        }
    }

    /// Short name used in reports (matching the paper's vocabulary).
    pub fn name(self) -> &'static str {
        use AnomalyType::*;
        match self {
            G1a => "G1a (aborted read)",
            G1b => "G1b (intermediate read)",
            DirtyUpdate => "dirty update",
            LostUpdate => "lost update",
            GarbageRead => "garbage read",
            DuplicateWrite => "duplicate write",
            Internal => "internal inconsistency",
            IncompatibleOrder => "incompatible order",
            CyclicVersionOrder => "cyclic version order",
            G0 => "G0 (write cycle)",
            G1c => "G1c (circular information flow)",
            GSingle => "G-single (read skew)",
            G2Item => "G2-item (anti-dependency cycle)",
            G0Process => "G0-process",
            G1cProcess => "G1c-process",
            GSingleProcess => "G-single-process",
            G2ItemProcess => "G2-item-process",
            G0Realtime => "G0-realtime",
            G1cRealtime => "G1c-realtime",
            GSingleRealtime => "G-single-realtime",
            G2ItemRealtime => "G2-item-realtime",
            GSI => "G-SI (start-ordered cycle)",
            WindowEvicted => "indeterminate (window-evicted)",
        }
    }
}

impl fmt::Display for AnomalyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The concrete evidence for one dependency edge inside a reported cycle.
///
/// Witnesses let [`crate::explain`] render Figure-2-style justifications
/// ("T1 < T2, because T1 did not observe T2's append of 8 to 255").
///
/// The derived `Ord` (variant order, then fields) gives witnesses a
/// canonical total order; [`crate::deps::DepGraph::present`] uses it to
/// pick the *same* witness for an edge no matter what order evidence was
/// inserted in — the property that lets an incrementally-maintained graph
/// produce byte-identical reports to a batch-built one.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Witness {
    /// List ww: `from` appended `prev`, `to` appended `next` directly after.
    WwList {
        /// Key involved.
        key: Key,
        /// Element appended by the predecessor.
        prev: Elem,
        /// Element appended by the successor.
        next: Elem,
    },
    /// List wr: `to` observed `from`'s append of `elem` (as the final
    /// element of its read).
    WrList {
        /// Key involved.
        key: Key,
        /// Element whose append produced the version read.
        elem: Elem,
    },
    /// List rw: `from` read a version not containing `to`'s append of
    /// `next` (which is the version's successor).
    RwList {
        /// Key involved.
        key: Key,
        /// Final element of the version `from` read; `None` = initial `[]`.
        read_last: Option<Elem>,
        /// The first element `from` failed to observe.
        next: Elem,
    },
    /// Register ww: version `prev` was overwritten by `next`.
    WwReg {
        /// Key involved.
        key: Key,
        /// Overwritten value; `None` = initial nil.
        prev: Option<Elem>,
        /// Overwriting value.
        next: Elem,
    },
    /// Register wr: `to` read the value `from` wrote.
    WrReg {
        /// Key involved.
        key: Key,
        /// Value written and read.
        elem: Elem,
    },
    /// Register rw: `from` read a version that `to`'s write replaced.
    RwReg {
        /// Key involved.
        key: Key,
        /// Value `from` read; `None` = nil.
        read: Option<Elem>,
        /// Value `to` wrote.
        next: Elem,
    },
    /// Set wr: `to` observed `from`'s add of `elem`.
    WrSet {
        /// Key involved.
        key: Key,
        /// Element added and observed.
        elem: Elem,
    },
    /// Set rw: `from`'s read did not contain `to`'s (committed) add.
    RwSet {
        /// Key involved.
        key: Key,
        /// Element `from` failed to observe.
        elem: Elem,
    },
    /// Read-read: `from` observed a strictly earlier state than `to`.
    Rr {
        /// Key involved.
        key: Key,
    },
    /// Session order: both ran on one process, `from` first.
    Process {
        /// The shared process.
        process: elle_history::ProcessId,
    },
    /// Real-time order: `from` completed before `to` was invoked.
    Realtime {
        /// Completion event index of `from`.
        complete: usize,
        /// Invocation event index of `to`.
        invoke: usize,
    },
    /// Time-precedes order (§5.1): `from`'s database commit timestamp
    /// precedes `to`'s start timestamp.
    Timestamp {
        /// `from`'s commit timestamp.
        commit: u64,
        /// `to`'s start timestamp.
        start: u64,
    },
}

impl Witness {
    /// The edge class this witness substantiates.
    pub fn class(&self) -> EdgeClass {
        match self {
            Witness::WwList { .. } | Witness::WwReg { .. } => EdgeClass::Ww,
            Witness::WrList { .. } | Witness::WrReg { .. } | Witness::WrSet { .. } => EdgeClass::Wr,
            Witness::RwList { .. } | Witness::RwReg { .. } | Witness::RwSet { .. } => EdgeClass::Rw,
            Witness::Rr { .. } => EdgeClass::Rr,
            Witness::Process { .. } => EdgeClass::Process,
            Witness::Realtime { .. } => EdgeClass::Realtime,
            Witness::Timestamp { .. } => EdgeClass::Timestamp,
        }
    }
}

/// One step of a reported cycle: `from < to` because `witness`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStep {
    /// Predecessor transaction.
    pub from: TxnId,
    /// Successor transaction.
    pub to: TxnId,
    /// The class the step is *presented* as (one of the witness classes).
    pub class: EdgeClass,
    /// Evidence for the dependency.
    pub witness: Witness,
}

/// A reported anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// The anomaly's class.
    pub typ: AnomalyType,
    /// Transactions involved (cycle order for cycle anomalies).
    pub txns: Vec<TxnId>,
    /// The key chiefly involved, when the anomaly is key-local.
    pub key: Option<Key>,
    /// Cycle steps with witnesses (cycle anomalies only).
    pub steps: Vec<CycleStep>,
    /// Human-readable justification (Figure 2 style).
    pub explanation: String,
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.typ)?;
        f.write_str(&self.explanation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_predicate() {
        assert!(AnomalyType::G0.is_cycle());
        assert!(AnomalyType::GSingleRealtime.is_cycle());
        assert!(!AnomalyType::G1a.is_cycle());
        assert!(!AnomalyType::Internal.is_cycle());
    }

    #[test]
    fn base_strips_augmentation() {
        assert_eq!(AnomalyType::G0Realtime.base(), AnomalyType::G0);
        assert_eq!(AnomalyType::GSingleProcess.base(), AnomalyType::GSingle);
        assert_eq!(AnomalyType::G2Item.base(), AnomalyType::G2Item);
        assert_eq!(AnomalyType::G1a.base(), AnomalyType::G1a);
    }

    #[test]
    fn witness_classes() {
        use elle_history::ProcessId;
        assert_eq!(
            Witness::WwList {
                key: Key(1),
                prev: Elem(1),
                next: Elem(2)
            }
            .class(),
            EdgeClass::Ww
        );
        assert_eq!(
            Witness::RwReg {
                key: Key(1),
                read: None,
                next: Elem(2)
            }
            .class(),
            EdgeClass::Rw
        );
        assert_eq!(
            Witness::Process {
                process: ProcessId(1)
            }
            .class(),
            EdgeClass::Process
        );
        assert_eq!(
            Witness::Realtime {
                complete: 0,
                invoke: 1
            }
            .class(),
            EdgeClass::Realtime
        );
    }

    #[test]
    fn names_are_paper_vocabulary() {
        assert!(AnomalyType::GSingle.name().contains("read skew"));
        assert!(AnomalyType::G1a.name().contains("aborted read"));
    }
}
