//! The list-append analysis — Elle's most powerful mode (§3, §4 of the
//! paper).
//!
//! Append-only lists are **traceable**: a read of `[1, 2, 3]` proves the
//! object went through versions `[] → [1] → [1, 2] → [1, 2, 3]` in exactly
//! that order. With unique append arguments they are also **recoverable**:
//! each element maps to the one transaction that appended it. Together
//! these let us reconstruct, per key, a prefix of the version order `≪x`,
//! and from it *all three* Adya dependencies:
//!
//! * `wr`: the writer of a read value's final element → the reader,
//! * `ww`: writers of consecutive elements of the version order,
//! * `rw`: a reader of prefix `v` → the writer of the next element.
//!
//! The shared passes (duplicates, garbage, G1a, lost updates, internal
//! consistency scaffolding) live in [`crate::datatype`]; this module
//! contributes only what traceability makes possible: the G1b adjacency
//! test, dirty-update layering, and version-order reconstruction.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::datatype::{
    self, internal_pass, report_lost_updates, AnalysisCtx, DatatypeAnalysis, InternalMismatch,
    KeySink, Provenance, ProvenanceScan, Vocab,
};
use crate::deps::DepGraph;
use crate::observation::{DataType, ElemIndex};
use elle_history::{Elem, History, Key, Mop, ReadValue, Transaction, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};

/// Result of the list-append analysis: dependency edges plus the non-cycle
/// anomalies found along the way.
#[derive(Debug, Default)]
pub struct ListAppendAnalysis {
    /// Inferred dependency edges (merged into the IDSG by the checker).
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
    /// Inferred version order per key: the trace of the longest committed
    /// read (§4.3.2's `x_f`).
    pub version_orders: FxHashMap<Key, Vec<Elem>>,
}

/// One committed read occurrence.
#[derive(Debug, Clone)]
pub struct ReadOcc<'h> {
    /// The reading transaction.
    pub txn: &'h Transaction,
    /// Micro-op position of the read within the transaction.
    pub mop: usize,
    /// The observed list value.
    pub value: &'h [Elem],
}

/// Render a list value compactly for explanations: `[1 2 3 … (29 total)]`.
fn show_list(v: &[Elem]) -> String {
    const HEAD: usize = 10;
    let mut s = String::from("[");
    for (i, e) in v.iter().take(HEAD).enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&e.to_string());
    }
    if v.len() > HEAD {
        s.push_str(&format!(" … ({} total)", v.len()));
    }
    s.push(']');
    s
}

/// Run the analysis over every list key of the history.
pub fn analyze(history: &History, elems: &ElemIndex, list_keys: &[Key]) -> ListAppendAnalysis {
    let out = datatype::run::<ListAppend>(history, elems, list_keys, ());
    ListAppendAnalysis {
        deps: out.deps,
        anomalies: out.anomalies,
        version_orders: out.version_orders,
    }
}

/// The list-append [`DatatypeAnalysis`].
pub struct ListAppend;

impl DatatypeAnalysis for ListAppend {
    type Config = ();
    /// Ordered appends per `(txn, key)` — used for G1b adjacency and for
    /// stripping a reader's own trailing appends.
    type Aux<'h> = FxHashMap<(TxnId, Key), Vec<Elem>>;
    type KeyData<'h> = Vec<ReadOcc<'h>>;

    const DATATYPE: DataType = DataType::List;
    const VOCAB: Vocab = Vocab {
        object: "key",
        item: "element",
        wrote: "appended",
        written: "appended",
        wrote_to: "appended to",
        rmw: "appended to",
        garbage_per_reader: false,
    };

    /// Internal consistency (§6.1): each transaction's reads must agree
    /// with its own prior reads and appends. Model: expected value =
    /// `known prefix (if any) ++ own appends since`.
    fn check_internal(cx: &AnalysisCtx<'_, ()>, sink: &mut KeySink) {
        #[derive(Default)]
        struct St {
            known: Option<Vec<Elem>>,
            appended: Vec<Elem>,
        }
        internal_pass(cx, sink, |_t, m, key, st: &mut St| {
            match m {
                Mop::Append { elem, .. } => {
                    st.appended.push(*elem);
                    None
                }
                Mop::Read {
                    value: Some(ReadValue::List(v)),
                    ..
                } => {
                    let ok = match &st.known {
                        Some(prefix) => {
                            v.len() == prefix.len() + st.appended.len()
                                && v[..prefix.len()] == prefix[..]
                                && v[prefix.len()..] == st.appended[..]
                        }
                        None => {
                            v.len() >= st.appended.len()
                                && v[v.len() - st.appended.len()..] == st.appended[..]
                        }
                    };
                    let mismatch = (!ok).then(|| {
                        let expected = match &st.known {
                            Some(p) => {
                                let mut e = p.clone();
                                e.extend(&st.appended);
                                show_list(&e)
                            }
                            None => format!(
                                "a value ending in [{}]",
                                st.appended
                                    .iter()
                                    .map(|e| e.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" ")
                            ),
                        };
                        InternalMismatch {
                            message: format!(
                                "read of key {key} returned {}, but the transaction's own \
                                 operations imply {expected}",
                                show_list(v),
                            ),
                        }
                    });
                    // Trust the read for subsequent expectations.
                    st.known = Some(v.clone());
                    st.appended.clear();
                    mismatch
                }
                _ => None,
            }
        });
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, ()>) -> (Self::Aux<'h>, FxHashMap<Key, Vec<ReadOcc<'h>>>) {
        let mut appends: Self::Aux<'h> = FxHashMap::default();
        let mut reads_by_key: FxHashMap<Key, Vec<ReadOcc<'h>>> = FxHashMap::default();
        for t in cx.history.txns() {
            for (i, m) in t.mops.iter().enumerate() {
                match m {
                    Mop::Append { key, elem } if cx.key_set.contains(key) => {
                        appends.entry((t.id, *key)).or_default().push(*elem);
                    }
                    Mop::Read {
                        key,
                        value: Some(ReadValue::List(v)),
                    } if cx.key_set.contains(key) && t.status == TxnStatus::Committed => {
                        reads_by_key.entry(*key).or_default().push(ReadOcc {
                            txn: t,
                            mop: i,
                            value: v,
                        });
                    }
                    _ => {}
                }
            }
        }
        (appends, reads_by_key)
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, ()>,
        appends_of: &Self::Aux<'h>,
        key: Key,
        occs: &Vec<ReadOcc<'h>>,
        mut poisoned: bool,
        out: &mut KeySink,
    ) {
        let vocab = &Self::VOCAB;
        let mut scan = ProvenanceScan::new();

        // ── Pass A (always valid): duplicates within reads and garbage
        //    elements. Both poison recoverability for this key. ─────────
        for occ in occs {
            let mut seen: FxHashSet<Elem> = FxHashSet::default();
            for e in occ.value {
                if !seen.insert(*e) {
                    poisoned = true;
                    out.anomaly(
                        AnomalyType::DuplicateWrite,
                        vec![occ.txn.id],
                        key,
                        format!(
                            "{}\n  the read of key {key} contains element {e} more than once",
                            occ.txn.to_notation()
                        ),
                    );
                    break;
                }
            }
            for e in occ.value {
                if scan.garbage(cx, vocab, key, occ.txn.id, *e, out) {
                    poisoned = true;
                }
            }
        }

        // ── Pass B: provenance checks (G1a, G1b, dirty updates). These
        //    rely on recoverability — the element → writer map must be a
        //    bijection — so they are skipped for poisoned keys (§4.2.3). ─
        let mut dirty_reported: FxHashSet<Elem> = FxHashSet::default();
        let mut g1b_reported: FxHashSet<(TxnId, Elem)> = FxHashSet::default();

        for occ in occs.iter().filter(|_| !poisoned) {
            let mut saw_aborted: Option<(usize, Elem, TxnId)> = None;
            for (j, e) in occ.value.iter().enumerate() {
                // G1a (and garbage dedup) via the shared scan.
                let w = match scan.provenance(cx, vocab, key, occ.txn.id, *e, false, out) {
                    Provenance::Ok(w) | Provenance::Aborted(w) => w,
                    Provenance::Garbage | Provenance::Unusable => continue,
                };

                // Dirty update: committed data layered over an aborted write.
                match (w.status, saw_aborted) {
                    (TxnStatus::Aborted, None) => saw_aborted = Some((j, *e, w.txn)),
                    (TxnStatus::Committed | TxnStatus::Indeterminate, Some((_, ae, awriter))) => {
                        if dirty_reported.insert(ae) {
                            out.anomaly(
                                AnomalyType::DirtyUpdate,
                                vec![awriter, w.txn],
                                key,
                                format!(
                                    "the trace of key {key} contains element {ae} from aborted \
                                     transaction {awriter}, later built upon by {}'s append of {e}",
                                    w.txn
                                ),
                            );
                        }
                        saw_aborted = None;
                    }
                    _ => {}
                }

                // G1b: an intermediate write must be immediately followed by
                // the same writer's next append, else the read exposed an
                // intermediate version. Traceability makes this adjacency
                // test possible — it has no register/set counterpart.
                if w.txn != occ.txn.id && !w.final_for_key {
                    let writer_appends = &appends_of[&(w.txn, key)];
                    let pos = writer_appends
                        .iter()
                        .position(|x| x == e)
                        .expect("writer index consistent");
                    let expected_next = writer_appends.get(pos + 1);
                    let actual_next = occ.value.get(j + 1);
                    if expected_next != actual_next && g1b_reported.insert((occ.txn.id, *e)) {
                        out.anomaly(
                            AnomalyType::G1b,
                            vec![occ.txn.id, w.txn],
                            key,
                            format!(
                                "{}\n  observed element {e} of key {key}, an intermediate \
                                 append of {} (its next append {} is not the following element)",
                                occ.txn.to_notation(),
                                cx.history.get(w.txn).to_notation(),
                                expected_next.map_or("<none>".to_string(), |e| e.to_string()),
                            ),
                        );
                    }
                }
            }
        }

        // ── Version order: the longest committed read is x_f. ─────────
        let longest = occs
            .iter()
            .max_by_key(|o| o.value.len())
            .expect("at least one read per key in map");
        let longest_v = longest.value;

        // Prefix compatibility of every other read.
        let mut compatible: Vec<&ReadOcc<'_>> = Vec::with_capacity(occs.len());
        for occ in occs {
            if occ.value.len() <= longest_v.len() && occ.value[..] == longest_v[..occ.value.len()] {
                compatible.push(occ);
            } else {
                out.anomaly(
                    AnomalyType::IncompatibleOrder,
                    vec![occ.txn.id, longest.txn.id],
                    key,
                    format!(
                        "{}\n{}\n  both committed reads of key {key} cannot lie on one \
                         version order: {} is not a prefix of {}",
                        occ.txn.to_notation(),
                        longest.txn.to_notation(),
                        show_list(occ.value),
                        show_list(longest_v)
                    ),
                );
            }
        }

        // ── Lost updates: distinct committed txns that read the same
        //    version of `key` and then append to it. ────────────────────
        let mut rmw_groups: FxHashMap<&[Elem], Vec<TxnId>> = FxHashMap::default();
        for occ in occs {
            // First read of the key in this txn, before any own append.
            let first_touch = occ
                .txn
                .mops
                .iter()
                .position(|m| m.key() == key)
                .expect("occ touches key");
            if first_touch != occ.mop {
                continue;
            }
            let appends_after = occ.txn.mops[occ.mop..]
                .iter()
                .any(|m| matches!(m, Mop::Append { key: k, .. } if *k == key));
            if appends_after {
                let group = rmw_groups.entry(occ.value).or_default();
                if !group.contains(&occ.txn.id) {
                    group.push(occ.txn.id);
                }
            }
        }
        let mut groups: Vec<(&[Elem], Vec<TxnId>)> = rmw_groups
            .into_iter()
            .filter(|(_, g)| g.len() >= 2)
            .collect();
        groups.sort_by_key(|(v, _)| v.len());
        for (_, g) in &mut groups {
            g.sort_unstable();
        }
        report_lost_updates(vocab, key, groups, |v| show_list(v), out);

        if poisoned {
            // Recoverability is broken for this key: skip dependency edges.
            return;
        }
        out.version_order = Some(longest_v.to_vec());

        // ── ww edges: consecutive elements of the version order. ──────
        for pair in longest_v.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (wa, wb) = (
                cx.elems.writer(key, a).expect("no garbage in clean key"),
                cx.elems.writer(key, b).expect("no garbage in clean key"),
            );
            out.edge(
                wa.txn,
                wb.txn,
                Witness::WwList {
                    key,
                    prev: a,
                    next: b,
                },
            );
        }

        // ── wr and rw edges per compatible committed read. ─────────────
        for occ in &compatible {
            let reader = occ.txn.id;
            // Strip trailing own appends: the externally-visible prefix.
            let own: FxHashSet<Elem> = appends_of
                .get(&(reader, key))
                .map(|v| v.iter().copied().collect())
                .unwrap_or_default();
            let mut ext_len = occ.value.len();
            while ext_len > 0 && own.contains(&occ.value[ext_len - 1]) {
                ext_len -= 1;
            }
            let ext = &occ.value[..ext_len];

            // wr: the version `ext` was produced by the append of its last
            // element.
            if let Some(last) = ext.last() {
                let w = cx.elems.writer(key, *last).expect("clean key");
                out.edge(w.txn, reader, Witness::WrList { key, elem: *last });
            }

            // rw: the version directly after the one this read observed.
            if occ.value.len() < longest_v.len() {
                let next = longest_v[occ.value.len()];
                let w = cx.elems.writer(key, next).expect("clean key");
                out.edge(
                    reader,
                    w.txn,
                    Witness::RwList {
                        key,
                        read_last: occ.value.last().copied(),
                        next,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeMask;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> ListAppendAnalysis {
        let elems = ElemIndex::build(h);
        let kt = KeyTypes::infer(h);
        analyze(h, &elems, &kt.keys_of(DataType::List))
    }

    fn types(a: &ListAppendAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn clean_history_has_no_anomalies() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
        assert_eq!(a.version_orders[&Key(1)], vec![Elem(1), Elem(2)]);
    }

    #[test]
    fn infers_ww_wr_rw_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).commit(); // writer of 1
        let t1 = b.txn(1).append(1, 2).commit(); // writer of 2
        let t2 = b.txn(2).read_list(1, [1]).commit(); // reads [1]
        let t3 = b.txn(3).read_list(1, [1, 2]).commit(); // reads [1,2]
        let a = run(&b.build());
        // ww: t0 -> t1 (1 before 2)
        assert!(a
            .deps
            .graph
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Ww));
        // wr: t0 -> t2 (t2 read version [1]); t1 -> t3.
        assert!(a
            .deps
            .graph
            .edge_mask(t0.0, t2.0)
            .contains(elle_graph::EdgeClass::Wr));
        assert!(a
            .deps
            .graph
            .edge_mask(t1.0, t3.0)
            .contains(elle_graph::EdgeClass::Wr));
        // rw: t2 -> t1 (t2 missed 2).
        assert!(a
            .deps
            .graph
            .edge_mask(t2.0, t1.0)
            .contains(elle_graph::EdgeClass::Rw));
        // No rw out of t3 (read the longest version).
        assert_eq!(
            a.deps
                .graph
                .out_neighbors_masked(t3.0, EdgeMask::RW)
                .count(),
            0
        );
    }

    #[test]
    fn empty_read_gets_rw_to_first_writer() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).read_list(1, []).commit();
        let t1 = b.txn(1).append(1, 5).commit();
        b.txn(2).read_list(1, [5]).commit();
        let a = run(&b.build());
        assert!(a
            .deps
            .graph
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Rw));
    }

    #[test]
    fn g1a_aborted_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1a));
    }

    #[test]
    fn g1b_intermediate_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).read_list(1, [1]).commit(); // saw only the intermediate
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1b));
    }

    #[test]
    fn g1b_not_fired_for_contiguous_block() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }

    #[test]
    fn g1b_fired_when_interleaved() {
        // Writer's appends 1,2 separated by a foreign element 9 — the
        // version after "1" was exposed.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).append(1, 9).commit();
        b.txn(2).read_list(1, [1, 9, 2]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1b));
    }

    #[test]
    fn dirty_update_detected() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DirtyUpdate), "{t:?}");
        // The read also observed aborted data directly:
        assert!(t.contains(&AnomalyType::G1a));
    }

    #[test]
    fn incompatible_order() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        b.txn(3).read_list(1, [2, 1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::IncompatibleOrder));
    }

    #[test]
    fn garbage_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read_list(1, [42]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
        // Key is poisoned: no version order.
        assert!(!a.version_orders.contains_key(&Key(1)));
    }

    #[test]
    fn duplicate_in_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1, 1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::DuplicateWrite));
    }

    #[test]
    fn duplicate_across_writes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 1).commit();
        b.txn(2).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::DuplicateWrite));
        assert!(!a.version_orders.contains_key(&Key(1)));
    }

    #[test]
    fn provenance_checks_require_recoverability() {
        // Element 7 is appended by both an aborted and a committed txn; a
        // read observing 7 must NOT be called an aborted read, because the
        // writer mapping is ambiguous (§4.2.3). Only the duplicate is
        // reported.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).abort();
        b.txn(1).append(1, 7).commit();
        b.txn(2).read_list(1, [7]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DuplicateWrite), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1a), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1b), "{t:?}");
        assert!(!t.contains(&AnomalyType::DirtyUpdate), "{t:?}");
    }

    #[test]
    fn internal_inconsistency_fauna_style() {
        // §7.3: T1: append(0, 6), r(0, nil) — fails to observe own write.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(0, 6).read_list(0, []).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn internal_consistency_respects_prior_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        // Reads [1], appends 2, then must read [1, 2].
        b.txn(1)
            .read_list(1, [1])
            .append(1, 2)
            .read_list(1, [1])
            .commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn own_reads_generate_no_self_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert_eq!(a.deps.graph.out_edges(t0.0).len(), 0);
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }

    #[test]
    fn wr_strips_own_suffix() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).commit();
        // t1 appends 2 then reads [1, 2]: externally it depends on t0.
        let t1 = b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a
            .deps
            .graph
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Wr));
    }

    #[test]
    fn lost_update_detected() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).append(1, 2).commit();
        b.txn(2).read_list(1, [1]).append(1, 3).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::LostUpdate));
    }

    #[test]
    fn no_lost_update_when_reads_differ() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).append(1, 3).commit();
        let a = run(&b.build());
        assert!(!types(&a).contains(&AnomalyType::LostUpdate));
    }

    #[test]
    fn indeterminate_writers_participate_in_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).indeterminate();
        let t1 = b.txn(1).read_list(1, [1]).commit();
        let a = run(&b.build());
        // The info txn's append was observed: wr edge exists, no G1a.
        assert!(a
            .deps
            .graph
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Wr));
        assert!(a.anomalies.is_empty());
    }

    #[test]
    fn paper_tidb_example_builds_g_single_edges() {
        // §7.1: T1: r(34,[2,1]), append(36,5), append(34,4)
        //       T2: append(34,5)    T3: r(34,[2,1,5,4])
        let mut b = HistoryBuilder::new();
        let seed0 = b.txn(9).append(34, 2).commit();
        let seed1 = b.txn(9).append(34, 1).commit();
        let t1 = b
            .txn(0)
            .read_list(34, [2, 1])
            .append(36, 5)
            .append(34, 4)
            .commit();
        let t2 = b.txn(1).append(34, 5).commit();
        let t3 = b.txn(2).read_list(34, [2, 1, 5, 4]).commit();
        let a = run(&b.build());
        let g = &a.deps.graph;
        // T2 rw-depends on T1 (T1 did not observe 5).
        assert!(g.edge_mask(t1.0, t2.0).contains(elle_graph::EdgeClass::Rw));
        // T1 ww-depends on T2 (4 follows 5).
        assert!(g.edge_mask(t2.0, t1.0).contains(elle_graph::EdgeClass::Ww));
        // T3 wr-depends on T1 (read version ending in 4).
        assert!(g.edge_mask(t1.0, t3.0).contains(elle_graph::EdgeClass::Wr));
        let _ = (seed0, seed1);
    }
}
