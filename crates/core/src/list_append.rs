//! The list-append analysis — Elle's most powerful mode (§3, §4 of the
//! paper).
//!
//! Append-only lists are **traceable**: a read of `[1, 2, 3]` proves the
//! object went through versions `[] → [1] → [1, 2] → [1, 2, 3]` in exactly
//! that order. With unique append arguments they are also **recoverable**:
//! each element maps to the one transaction that appended it. Together
//! these let us reconstruct, per key, a prefix of the version order `≪x`,
//! and from it *all three* Adya dependencies:
//!
//! * `wr`: the writer of a read value's final element → the reader,
//! * `ww`: writers of consecutive elements of the version order,
//! * `rw`: a reader of prefix `v` → the writer of the next element.
//!
//! The shared passes (duplicates, garbage, G1a, lost updates, internal
//! consistency scaffolding) live in [`crate::datatype`]; this module
//! contributes what traceability makes possible: the G1b adjacency
//! test, dirty-update layering, and version-order reconstruction.
//!
//! **Version-interned analysis.** Traceability also means the distinct
//! version structure of one key is tiny compared to the raw read
//! payload: every compatible read is a prefix of the spine `x_f`. The
//! per-key pass therefore interns each committed read value into a
//! [`VersionId`] (one hash + one equality check per occurrence — the
//! single unavoidable look at the payload), scans the spine **once**
//! to classify every element (writer, status, G1b adjacency,
//! dirty-update layering, garbage, duplicates), derives each prefix
//! version's facts from that scan in O(1), and fans per-read anomalies
//! and `wr`/`ww`/`rw` edges out from version ids. Only values that are
//! *not* prefixes of the spine — already-anomalous reads — pay for
//! their own element scan. The seed per-read pipeline (every pass
//! rescans every read's full value) is preserved verbatim in
//! [`crate::reference`] and the two are byte-equivalence-tested in
//! `crates/core/tests/version_props.rs`.

use crate::anomaly::{Anomaly, AnomalyType, Witness};
use crate::datatype::{
    self, internal_pass, report_lost_updates, AnalysisCtx, DatatypeAnalysis, InternalMismatch,
    KeySink, ProvenanceScan, Vocab,
};
use crate::deps::DepGraph;
use crate::gather::GatherBuf;
use crate::observation::{DataType, ElemIndex, WriteRef};
use crate::versions::{VersionId, VersionTable};
use elle_history::{Elem, History, Key, Mop, ReadValue, Transaction, TxnId, TxnStatus};
use rustc_hash::{FxHashMap, FxHashSet};

/// Result of the list-append analysis: dependency edges plus the non-cycle
/// anomalies found along the way.
#[derive(Debug, Default)]
pub struct ListAppendAnalysis {
    /// Inferred dependency edges (merged into the IDSG by the checker).
    pub deps: DepGraph,
    /// Non-cycle anomalies.
    pub anomalies: Vec<Anomaly>,
    /// Inferred version order per key: the trace of the longest committed
    /// read (§4.3.2's `x_f`).
    pub version_orders: FxHashMap<Key, Vec<Elem>>,
}

/// One committed read occurrence.
#[derive(Debug, Clone, Copy)]
pub struct ReadOcc<'h> {
    /// The reading transaction.
    pub txn: &'h Transaction,
    /// Micro-op position of the read within the transaction.
    pub mop: usize,
    /// The observed list value.
    pub value: &'h [Elem],
}

/// One transaction's ordered appends to one key, with an element →
/// first-occurrence index so the G1b adjacency test and own-append
/// stripping are O(1) lookups instead of `position()` scans.
///
/// The hash index is only materialized once the run grows past a small
/// threshold: typical transactions append a handful of elements per
/// key, where a linear scan is faster than a per-`(txn, key)` hash-map
/// allocation would ever pay back.
#[derive(Debug, Default)]
pub struct AppendSeq {
    /// Appended elements, in program order.
    pub elems: Vec<Elem>,
    index: Option<FxHashMap<Elem, u32>>,
}

/// Append runs longer than this get a hash index.
const APPEND_INDEX_THRESHOLD: usize = 8;

impl AppendSeq {
    fn push(&mut self, e: Elem) {
        if let Some(index) = &mut self.index {
            index.entry(e).or_insert(self.elems.len() as u32);
        }
        self.elems.push(e);
        if self.index.is_none() && self.elems.len() > APPEND_INDEX_THRESHOLD {
            let mut index = FxHashMap::default();
            for (i, e) in self.elems.iter().enumerate() {
                index.entry(*e).or_insert(i as u32);
            }
            self.index = Some(index);
        }
    }

    /// Index of the first occurrence of `e`, if this transaction
    /// appended it to the key.
    pub fn index_of(&self, e: Elem) -> Option<usize> {
        match &self.index {
            Some(index) => index.get(&e).map(|i| *i as usize),
            None => self.elems.iter().position(|x| *x == e),
        }
    }

    /// Did this transaction append `e` to the key?
    pub fn contains(&self, e: Elem) -> bool {
        self.index_of(e).is_some()
    }

    /// The append directly after (the first occurrence of) `e`, if any.
    pub fn next_after(&self, e: Elem) -> Option<Elem> {
        self.elems.get(self.index_of(e)? + 1).copied()
    }
}

/// Render a list value compactly for explanations: `[1 2 3 … (29 total)]`.
pub(crate) fn show_list(v: &[Elem]) -> String {
    const HEAD: usize = 10;
    let mut s = String::from("[");
    for (i, e) in v.iter().take(HEAD).enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&e.to_string());
    }
    if v.len() > HEAD {
        s.push_str(&format!(" … ({} total)", v.len()));
    }
    s.push(']');
    s
}

/// Run the analysis over every list key of the history.
pub fn analyze(history: &History, elems: &ElemIndex, list_keys: &[Key]) -> ListAppendAnalysis {
    let out = datatype::run::<ListAppend>(history, elems, list_keys, ());
    ListAppendAnalysis {
        deps: out.deps,
        anomalies: out.anomalies,
        version_orders: out.version_orders,
    }
}

/// A provenance event one version fans out to each of its readers, in
/// the exact order the seed per-read pass would emit it (per element:
/// G1a, then dirty update, then G1b).
#[derive(Debug, Clone)]
enum FanEvent {
    /// The element was written by an aborted transaction.
    G1a { elem: Elem, writer: TxnId },
    /// Committed data layered over an aborted write.
    Dirty {
        aborted_elem: Elem,
        aborted_writer: TxnId,
        elem: Elem,
        writer: TxnId,
    },
    /// An intermediate append not followed by its writer's next append.
    G1b {
        elem: Elem,
        writer: TxnId,
        expected_next: Option<Elem>,
    },
}

/// Per-distinct-version facts, computed once and fanned out per read.
#[derive(Debug, Default)]
struct ListVersion {
    /// Is this value a prefix of the spine `x_f`?
    is_prefix: bool,
    /// First element observed more than once within the value.
    first_dup: Option<Elem>,
    /// Elements no transaction wrote, in first-occurrence order.
    garbage: Vec<Elem>,
    /// Provenance events (G1a / dirty update / G1b), in emission order.
    events: Vec<FanEvent>,
}

/// Scan an arbitrary (non-prefix) value for pass-A facts: the first
/// duplicated element and the garbage elements in first-occurrence
/// order. Prefix versions derive both from the single spine scan.
fn scan_value_facts(
    kw: &crate::observation::KeyWriters<'_>,
    value: &[Elem],
) -> (Option<Elem>, Vec<Elem>) {
    let mut seen: FxHashSet<Elem> = FxHashSet::default();
    let mut first_dup = None;
    let mut garbage = Vec::new();
    for e in value {
        if !seen.insert(*e) {
            if first_dup.is_none() {
                first_dup = Some(*e);
            }
        } else if kw.writer(*e).is_none() {
            garbage.push(*e);
        }
    }
    (first_dup, garbage)
}

/// Walk one value's elements through the seed pass-B state machine,
/// producing the version's provenance events. Only called for values
/// whose key is clean (no duplicates, no garbage), so every element has
/// a unique writer.
fn scan_value_events(
    kw: &crate::observation::KeyWriters<'_>,
    aux: &FxHashMap<(TxnId, Key), AppendSeq>,
    key: Key,
    value: &[Elem],
) -> Vec<FanEvent> {
    let mut events = Vec::new();
    let mut saw_aborted: Option<(Elem, TxnId)> = None;
    for (j, e) in value.iter().enumerate() {
        let w = kw.writer(*e).expect("no garbage in clean key");
        push_element_events(
            &mut events,
            &mut saw_aborted,
            *e,
            w,
            value.get(j + 1).copied(),
            |wt| aux.get(&(wt, key)).and_then(|seq| seq.next_after(*e)),
        );
    }
    events
}

/// The per-element step shared by the spine scan and the non-prefix
/// value scan: emit G1a, advance the dirty-update layering machine,
/// and run the G1b adjacency test against `actual_next`.
fn push_element_events(
    events: &mut Vec<FanEvent>,
    saw_aborted: &mut Option<(Elem, TxnId)>,
    e: Elem,
    w: WriteRef,
    actual_next: Option<Elem>,
    next_append: impl Fn(TxnId) -> Option<Elem>,
) {
    if w.status == TxnStatus::Aborted {
        events.push(FanEvent::G1a {
            elem: e,
            writer: w.txn,
        });
    }
    match (w.status, *saw_aborted) {
        (TxnStatus::Aborted, None) => *saw_aborted = Some((e, w.txn)),
        (TxnStatus::Committed | TxnStatus::Indeterminate, Some((ae, awriter))) => {
            events.push(FanEvent::Dirty {
                aborted_elem: ae,
                aborted_writer: awriter,
                elem: e,
                writer: w.txn,
            });
            *saw_aborted = None;
        }
        _ => {}
    }
    if !w.final_for_key {
        let expected_next = next_append(w.txn);
        if expected_next != actual_next {
            events.push(FanEvent::G1b {
                elem: e,
                writer: w.txn,
                expected_next,
            });
        }
    }
}

/// The list-append [`DatatypeAnalysis`].
pub struct ListAppend;

impl DatatypeAnalysis for ListAppend {
    type Config = ();
    /// Ordered appends per `(txn, key)` — used for G1b adjacency and for
    /// stripping a reader's own trailing appends. (Keyed by `(txn, key)`
    /// pairs for random access during per-key analysis; the per-key
    /// occurrence stream itself flows through the flat gather buffer.)
    type Aux<'h> = FxHashMap<(TxnId, Key), AppendSeq>;
    /// One committed read of a list key.
    type Occ<'h> = ReadOcc<'h>;

    const DATATYPE: DataType = DataType::List;
    const VOCAB: Vocab = Vocab {
        object: "key",
        item: "element",
        wrote: "appended",
        written: "appended",
        wrote_to: "appended to",
        rmw: "appended to",
        garbage_per_reader: false,
    };

    /// Internal consistency (§6.1): each transaction's reads must agree
    /// with its own prior reads and appends. Model: expected value =
    /// `known prefix (if any) ++ own appends since`. The known prefix is
    /// borrowed from the read in place — no per-read cloning.
    fn check_internal<'h>(cx: &AnalysisCtx<'h, ()>, sink: &mut KeySink) {
        #[derive(Default)]
        struct St<'h> {
            known: Option<&'h [Elem]>,
            appended: Vec<Elem>,
        }
        internal_pass(cx, sink, |_t, m, key, st: &mut St<'h>| {
            match m {
                Mop::Append { elem, .. } => {
                    st.appended.push(*elem);
                    None
                }
                Mop::Read {
                    value: Some(ReadValue::List(v)),
                    ..
                } => {
                    let ok = match st.known {
                        Some(prefix) => {
                            v.len() == prefix.len() + st.appended.len()
                                && v[..prefix.len()] == prefix[..]
                                && v[prefix.len()..] == st.appended[..]
                        }
                        None => {
                            v.len() >= st.appended.len()
                                && v[v.len() - st.appended.len()..] == st.appended[..]
                        }
                    };
                    let mismatch = (!ok).then(|| {
                        let expected = match st.known {
                            Some(p) => {
                                let mut e = p.to_vec();
                                e.extend(&st.appended);
                                show_list(&e)
                            }
                            None => format!(
                                "a value ending in [{}]",
                                st.appended
                                    .iter()
                                    .map(|e| e.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" ")
                            ),
                        };
                        InternalMismatch {
                            message: format!(
                                "read of key {key} returned {}, but the transaction's own \
                                 operations imply {expected}",
                                show_list(v),
                            ),
                        }
                    });
                    // Trust the read for subsequent expectations.
                    st.known = Some(v);
                    st.appended.clear();
                    mismatch
                }
                _ => None,
            }
        });
    }

    fn gather<'h>(cx: &AnalysisCtx<'h, ()>, buf: &mut GatherBuf<ReadOcc<'h>>) -> Self::Aux<'h> {
        // Roughly one append group per (txn, key) append — reserve on the
        // mop count so the bulk load never rehashes.
        let mut appends: Self::Aux<'h> =
            FxHashMap::with_capacity_and_hasher(cx.history.mop_count() / 2, Default::default());
        for t in cx.scoped_txns() {
            for (i, m) in t.mops.iter().enumerate() {
                match m {
                    Mop::Append { key, elem } if cx.keys.contains(*key) => {
                        appends.entry((t.id, *key)).or_default().push(*elem);
                    }
                    Mop::Read {
                        key,
                        value: Some(ReadValue::List(v)),
                    } if t.status == TxnStatus::Committed => {
                        if let Some(slot) = cx.keys.slot_of(*key) {
                            buf.push(
                                slot,
                                ReadOcc {
                                    txn: t,
                                    mop: i,
                                    value: v,
                                },
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        appends
    }

    /// Coverage: a compatible read contributes nothing beyond the spine,
    /// so only the longest value (plus the rare incompatible read) is
    /// walked — not every read's full payload.
    fn observed_elems(occs: &[ReadOcc<'_>]) -> Vec<Elem> {
        let mut longest: &[Elem] = &[];
        for occ in occs {
            if occ.value.len() >= longest.len() {
                longest = occ.value;
            }
        }
        let mut out: Vec<Elem> = Vec::with_capacity(longest.len());
        for occ in occs {
            let l = occ.value.len();
            if !(l <= longest.len() && occ.value[..] == longest[..l]) {
                out.extend_from_slice(occ.value);
            }
        }
        out.extend_from_slice(longest);
        out
    }

    fn analyze_key<'h>(
        cx: &AnalysisCtx<'h, ()>,
        appends_of: &Self::Aux<'h>,
        key: Key,
        occs: &[ReadOcc<'h>],
        mut poisoned: bool,
        out: &mut KeySink,
    ) {
        let vocab = &Self::VOCAB;

        // ── Intern: resolve every occurrence to a version id; the spine
        //    is the longest committed read (ties: last, like the seed's
        //    `max_by_key`). One hash + one equality check per occurrence.
        let mut table: VersionTable<&'h [Elem], ListVersion> = VersionTable::new();
        let mut vids: Vec<VersionId> = Vec::with_capacity(occs.len());
        let mut longest_idx = 0usize;
        for (i, occ) in occs.iter().enumerate() {
            if occ.value.len() >= occs[longest_idx].value.len() {
                longest_idx = i;
            }
            vids.push(table.intern_with(occ.value, |_| ListVersion::default()));
        }
        let longest = &occs[longest_idx];
        let longest_v = longest.value;

        // ── Spine scan: every element of x_f is resolved to its writer
        //    inside the key's own posting slab (one key → slab probe for
        //    the whole scan), checked for duplication, and checked for
        //    garbage exactly once. All prefix versions reuse these
        //    tables.
        let kw = cx.elems.key_writers(key);
        let spine_writers: Vec<Option<WriteRef>> =
            longest_v.iter().map(|e| kw.writer(*e)).collect();
        let mut spine_seen: FxHashSet<Elem> = FxHashSet::default();
        let mut spine_first_dup: Option<(usize, Elem)> = None;
        let mut spine_garbage: Vec<(usize, Elem)> = Vec::new();
        for (j, e) in longest_v.iter().enumerate() {
            if !spine_seen.insert(*e) {
                if spine_first_dup.is_none() {
                    spine_first_dup = Some((j, *e));
                }
            } else if spine_writers[j].is_none() {
                spine_garbage.push((j, *e));
            }
        }

        // ── Per distinct version: prefix verification (one slice
        //    equality against the spine) and pass-A facts, derived from
        //    the spine tables for prefixes and scanned directly only for
        //    incompatible values.
        for idx in 0..table.len() {
            let vid = VersionId(idx as u32);
            let v = table.value(vid);
            let l = v.len();
            let is_prefix = l <= longest_v.len() && v == &longest_v[..l];
            let (first_dup, garbage) = if is_prefix {
                (
                    spine_first_dup.filter(|(j, _)| *j < l).map(|(_, e)| e),
                    spine_garbage
                        .iter()
                        .take_while(|(j, _)| *j < l)
                        .map(|(_, e)| *e)
                        .collect(),
                )
            } else {
                scan_value_facts(&kw, v)
            };
            poisoned |= first_dup.is_some() || !garbage.is_empty();
            let meta = table.meta_mut(vid);
            meta.is_prefix = is_prefix;
            meta.first_dup = first_dup;
            meta.garbage = garbage;
        }

        // ── Pass A fan-out (always valid): duplicates within reads and
        //    garbage elements, per occurrence in seed emission order. ───
        let mut scan = ProvenanceScan::new();
        for (i, occ) in occs.iter().enumerate() {
            let meta = table.meta(vids[i]);
            if let Some(e) = meta.first_dup {
                out.anomaly(
                    AnomalyType::DuplicateWrite,
                    vec![occ.txn.id],
                    key,
                    format!(
                        "{}\n  the read of key {key} contains element {e} more than once",
                        occ.txn.to_notation()
                    ),
                );
            }
            for &e in &meta.garbage {
                scan.garbage_classified(cx, vocab, key, occ.txn.id, e, out);
            }
        }

        // ── Pass B: provenance events (G1a, G1b, dirty updates). These
        //    rely on recoverability — the element → writer map must be a
        //    bijection — so they are skipped for poisoned keys (§4.2.3).
        //    Events are computed once per distinct version: prefixes
        //    reuse a single spine walk (plus an O(1) end-of-version
        //    adjacency check); incompatible values get their own scan. ──
        if !poisoned {
            // Spine walk: per-position events with the in-version
            // successor, plus the G1b verdict if the position were a
            // version's last element (actual_next = None). For the
            // spine's own last position the two coincide.
            let mut spine_events: Vec<(usize, FanEvent)> = Vec::new();
            let mut end_g1b: Vec<Option<(TxnId, Elem)>> = vec![None; longest_v.len()];
            let mut saw_aborted: Option<(Elem, TxnId)> = None;
            let mut evs = Vec::new();
            for (j, e) in longest_v.iter().enumerate() {
                let w = spine_writers[j].expect("no garbage in clean key");
                push_element_events(
                    &mut evs,
                    &mut saw_aborted,
                    *e,
                    w,
                    longest_v.get(j + 1).copied(),
                    |wt| {
                        appends_of
                            .get(&(wt, key))
                            .and_then(|seq| seq.next_after(*e))
                    },
                );
                for ev in evs.drain(..) {
                    spine_events.push((j, ev));
                }
                if !w.final_for_key {
                    if let Some(next) = appends_of
                        .get(&(w.txn, key))
                        .and_then(|seq| seq.next_after(*e))
                    {
                        end_g1b[j] = Some((w.txn, next));
                    }
                }
            }

            // Materialize each version's event list once.
            for idx in 0..table.len() {
                let vid = VersionId(idx as u32);
                let l = table.value(vid).len();
                let events = if table.meta(vid).is_prefix {
                    if l == 0 {
                        Vec::new()
                    } else {
                        let mut evs: Vec<FanEvent> = Vec::new();
                        for (pos, ev) in &spine_events {
                            if *pos + 1 < l {
                                evs.push(ev.clone());
                            } else if *pos + 1 == l && !matches!(ev, FanEvent::G1b { .. }) {
                                // The version's last element: G1a and
                                // dirty layering apply unchanged; the
                                // G1b adjacency verdict is re-derived
                                // below with actual_next = None.
                                evs.push(ev.clone());
                            }
                        }
                        if let Some((writer, expected_next)) = end_g1b[l - 1] {
                            evs.push(FanEvent::G1b {
                                elem: longest_v[l - 1],
                                writer,
                                expected_next: Some(expected_next),
                            });
                        }
                        evs
                    }
                } else {
                    scan_value_events(&kw, appends_of, key, table.value(vid))
                };
                table.meta_mut(vid).events = events;
            }

            // Fan events out per occurrence, with the seed's dedup
            // policies: G1a and G1b once per (reader, element), dirty
            // updates once per aborted element.
            let mut dirty_reported: FxHashSet<Elem> = FxHashSet::default();
            let mut g1b_reported: FxHashSet<(TxnId, Elem)> = FxHashSet::default();
            for (i, occ) in occs.iter().enumerate() {
                let reader = occ.txn.id;
                for ev in &table.meta(vids[i]).events {
                    match ev {
                        FanEvent::G1a { elem, writer } => {
                            scan.g1a_classified(cx, vocab, key, reader, *elem, *writer, out);
                        }
                        FanEvent::Dirty {
                            aborted_elem,
                            aborted_writer,
                            elem,
                            writer,
                        } => {
                            if dirty_reported.insert(*aborted_elem) {
                                out.anomaly(
                                    AnomalyType::DirtyUpdate,
                                    vec![*aborted_writer, *writer],
                                    key,
                                    format!(
                                        "the trace of key {key} contains element {aborted_elem} \
                                         from aborted transaction {aborted_writer}, later built \
                                         upon by {writer}'s append of {elem}",
                                    ),
                                );
                            }
                        }
                        FanEvent::G1b {
                            elem,
                            writer,
                            expected_next,
                        } => {
                            if *writer != reader && g1b_reported.insert((reader, *elem)) {
                                out.anomaly(
                                    AnomalyType::G1b,
                                    vec![reader, *writer],
                                    key,
                                    format!(
                                        "{}\n  observed element {elem} of key {key}, an \
                                         intermediate append of {} (its next append {} is not \
                                         the following element)",
                                        occ.txn.to_notation(),
                                        cx.history.get(*writer).to_notation(),
                                        expected_next
                                            .map_or("<none>".to_string(), |e| e.to_string()),
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }

        // ── Version order: prefix compatibility of every read against
        //    the spine, O(1) per occurrence from the interned verdicts. ─
        let mut compatible: Vec<usize> = Vec::with_capacity(occs.len());
        for (i, occ) in occs.iter().enumerate() {
            if table.meta(vids[i]).is_prefix {
                compatible.push(i);
            } else {
                out.anomaly(
                    AnomalyType::IncompatibleOrder,
                    vec![occ.txn.id, longest.txn.id],
                    key,
                    format!(
                        "{}\n{}\n  both committed reads of key {key} cannot lie on one \
                         version order: {} is not a prefix of {}",
                        occ.txn.to_notation(),
                        longest.txn.to_notation(),
                        show_list(occ.value),
                        show_list(longest_v)
                    ),
                );
            }
        }

        // ── Lost updates: distinct committed txns that read the same
        //    version of `key` and then append to it. Groups key on the
        //    version id — no re-hashing of whole element slices. ────────
        let mut rmw_groups: FxHashMap<VersionId, Vec<TxnId>> = FxHashMap::default();
        for (i, occ) in occs.iter().enumerate() {
            // First read of the key in this txn, before any own append.
            let first_touch = occ
                .txn
                .mops
                .iter()
                .position(|m| m.key() == key)
                .expect("occ touches key");
            if first_touch != occ.mop {
                continue;
            }
            let appends_after = occ.txn.mops[occ.mop..]
                .iter()
                .any(|m| matches!(m, Mop::Append { key: k, .. } if *k == key));
            if appends_after {
                let group = rmw_groups.entry(vids[i]).or_default();
                if !group.contains(&occ.txn.id) {
                    group.push(occ.txn.id);
                }
            }
        }
        let mut groups: Vec<(VersionId, Vec<TxnId>)> = rmw_groups
            .into_iter()
            .filter(|(_, g)| g.len() >= 2)
            .collect();
        groups.sort_by(|(a, _), (b, _)| {
            let (va, vb) = (table.value(*a), table.value(*b));
            va.len().cmp(&vb.len()).then_with(|| va.cmp(vb))
        });
        for (_, g) in &mut groups {
            g.sort_unstable();
        }
        report_lost_updates(vocab, key, groups, |vid| show_list(table.value(*vid)), out);

        if poisoned {
            // Recoverability is broken for this key: skip dependency edges.
            return;
        }
        out.version_order = Some(longest_v.to_vec());

        // ── ww edges: consecutive elements of the version order, writers
        //    straight from the spine tables. ─────────────────────────────
        for j in 1..longest_v.len() {
            let (a, b) = (longest_v[j - 1], longest_v[j]);
            let (wa, wb) = (
                spine_writers[j - 1].expect("no garbage in clean key"),
                spine_writers[j].expect("no garbage in clean key"),
            );
            out.edge(
                wa.txn,
                wb.txn,
                Witness::WwList {
                    key,
                    prev: a,
                    next: b,
                },
            );
        }

        // ── wr and rw edges per compatible committed read: O(1) per
        //    occurrence plus the reader's own stripped suffix. ───────────
        for &i in &compatible {
            let occ = &occs[i];
            let reader = occ.txn.id;
            let l = occ.value.len();
            // Strip trailing own appends: the externally-visible prefix.
            let ext_len = match appends_of.get(&(reader, key)) {
                None => l,
                Some(own) => {
                    let mut e = l;
                    while e > 0 && own.contains(occ.value[e - 1]) {
                        e -= 1;
                    }
                    e
                }
            };

            // wr: the version `ext` was produced by the append of its last
            // element.
            if ext_len > 0 {
                let w = spine_writers[ext_len - 1].expect("no garbage in clean key");
                out.edge(
                    w.txn,
                    reader,
                    Witness::WrList {
                        key,
                        elem: occ.value[ext_len - 1],
                    },
                );
            }

            // rw: the version directly after the one this read observed.
            if l < longest_v.len() {
                let next = longest_v[l];
                let w = spine_writers[l].expect("no garbage in clean key");
                out.edge(
                    reader,
                    w.txn,
                    Witness::RwList {
                        key,
                        read_last: occ.value.last().copied(),
                        next,
                    },
                );
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{DataType, KeyTypes};
    use elle_graph::EdgeMask;
    use elle_history::HistoryBuilder;

    fn run(h: &History) -> ListAppendAnalysis {
        let elems = ElemIndex::build(h);
        let kt = KeyTypes::infer(h);
        analyze(h, &elems, &kt.keys_of(DataType::List))
    }

    fn types(a: &ListAppendAnalysis) -> Vec<AnomalyType> {
        let mut t: Vec<AnomalyType> = a.anomalies.iter().map(|x| x.typ).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    #[test]
    fn clean_history_has_no_anomalies() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
        assert_eq!(a.version_orders[&Key(1)], vec![Elem(1), Elem(2)]);
    }

    #[test]
    fn infers_ww_wr_rw_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).commit(); // writer of 1
        let t1 = b.txn(1).append(1, 2).commit(); // writer of 2
        let t2 = b.txn(2).read_list(1, [1]).commit(); // reads [1]
        let t3 = b.txn(3).read_list(1, [1, 2]).commit(); // reads [1,2]
        let a = run(&b.build());
        // ww: t0 -> t1 (1 before 2)
        assert!(a
            .deps
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Ww));
        // wr: t0 -> t2 (t2 read version [1]); t1 -> t3.
        assert!(a
            .deps
            .edge_mask(t0.0, t2.0)
            .contains(elle_graph::EdgeClass::Wr));
        assert!(a
            .deps
            .edge_mask(t1.0, t3.0)
            .contains(elle_graph::EdgeClass::Wr));
        // rw: t2 -> t1 (t2 missed 2).
        assert!(a
            .deps
            .edge_mask(t2.0, t1.0)
            .contains(elle_graph::EdgeClass::Rw));
        // No rw out of t3 (read the longest version).
        assert_eq!(a.deps.out_neighbors_masked(t3.0, EdgeMask::RW).count(), 0);
    }

    #[test]
    fn empty_read_gets_rw_to_first_writer() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).read_list(1, []).commit();
        let t1 = b.txn(1).append(1, 5).commit();
        b.txn(2).read_list(1, [5]).commit();
        let a = run(&b.build());
        assert!(a
            .deps
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Rw));
    }

    #[test]
    fn g1a_aborted_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1a));
    }

    #[test]
    fn g1b_intermediate_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).read_list(1, [1]).commit(); // saw only the intermediate
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1b));
    }

    #[test]
    fn g1b_not_fired_for_contiguous_block() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }

    #[test]
    fn g1b_fired_when_interleaved() {
        // Writer's appends 1,2 separated by a foreign element 9 — the
        // version after "1" was exposed.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).append(1, 2).commit();
        b.txn(1).append(1, 9).commit();
        b.txn(2).read_list(1, [1, 9, 2]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::G1b));
    }

    #[test]
    fn dirty_update_detected() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).abort();
        b.txn(1).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DirtyUpdate), "{t:?}");
        // The read also observed aborted data directly:
        assert!(t.contains(&AnomalyType::G1a));
    }

    #[test]
    fn incompatible_order() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).commit();
        b.txn(3).read_list(1, [2, 1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::IncompatibleOrder));
    }

    #[test]
    fn garbage_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).read_list(1, [42]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::GarbageRead));
        // Key is poisoned: no version order.
        assert!(!a.version_orders.contains_key(&Key(1)));
    }

    #[test]
    fn duplicate_in_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1, 1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::DuplicateWrite));
    }

    #[test]
    fn duplicate_across_writes() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).append(1, 1).commit();
        b.txn(2).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::DuplicateWrite));
        assert!(!a.version_orders.contains_key(&Key(1)));
    }

    #[test]
    fn provenance_checks_require_recoverability() {
        // Element 7 is appended by both an aborted and a committed txn; a
        // read observing 7 must NOT be called an aborted read, because the
        // writer mapping is ambiguous (§4.2.3). Only the duplicate is
        // reported.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 7).abort();
        b.txn(1).append(1, 7).commit();
        b.txn(2).read_list(1, [7]).commit();
        let a = run(&b.build());
        let t = types(&a);
        assert!(t.contains(&AnomalyType::DuplicateWrite), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1a), "{t:?}");
        assert!(!t.contains(&AnomalyType::G1b), "{t:?}");
        assert!(!t.contains(&AnomalyType::DirtyUpdate), "{t:?}");
    }

    #[test]
    fn internal_inconsistency_fauna_style() {
        // §7.3: T1: append(0, 6), r(0, nil) — fails to observe own write.
        let mut b = HistoryBuilder::new();
        b.txn(0).append(0, 6).read_list(0, []).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn internal_consistency_respects_prior_read() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        // Reads [1], appends 2, then must read [1, 2].
        b.txn(1)
            .read_list(1, [1])
            .append(1, 2)
            .read_list(1, [1])
            .commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::Internal));
    }

    #[test]
    fn own_reads_generate_no_self_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).read_list(1, [1]).commit();
        let a = run(&b.build());
        assert_eq!(a.deps.out_edges(t0.0).count(), 0);
        assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    }

    #[test]
    fn wr_strips_own_suffix() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).commit();
        // t1 appends 2 then reads [1, 2]: externally it depends on t0.
        let t1 = b.txn(1).append(1, 2).read_list(1, [1, 2]).commit();
        let a = run(&b.build());
        assert!(a
            .deps
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Wr));
    }

    #[test]
    fn lost_update_detected() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).append(1, 2).commit();
        b.txn(2).read_list(1, [1]).append(1, 3).commit();
        let a = run(&b.build());
        assert!(types(&a).contains(&AnomalyType::LostUpdate));
    }

    #[test]
    fn no_lost_update_when_reads_differ() {
        let mut b = HistoryBuilder::new();
        b.txn(0).append(1, 1).commit();
        b.txn(1).read_list(1, [1]).append(1, 2).commit();
        b.txn(2).read_list(1, [1, 2]).append(1, 3).commit();
        let a = run(&b.build());
        assert!(!types(&a).contains(&AnomalyType::LostUpdate));
    }

    #[test]
    fn indeterminate_writers_participate_in_edges() {
        let mut b = HistoryBuilder::new();
        let t0 = b.txn(0).append(1, 1).indeterminate();
        let t1 = b.txn(1).read_list(1, [1]).commit();
        let a = run(&b.build());
        // The info txn's append was observed: wr edge exists, no G1a.
        assert!(a
            .deps
            .edge_mask(t0.0, t1.0)
            .contains(elle_graph::EdgeClass::Wr));
        assert!(a.anomalies.is_empty());
    }

    #[test]
    fn paper_tidb_example_builds_g_single_edges() {
        // §7.1: T1: r(34,[2,1]), append(36,5), append(34,4)
        //       T2: append(34,5)    T3: r(34,[2,1,5,4])
        let mut b = HistoryBuilder::new();
        let seed0 = b.txn(9).append(34, 2).commit();
        let seed1 = b.txn(9).append(34, 1).commit();
        let t1 = b
            .txn(0)
            .read_list(34, [2, 1])
            .append(36, 5)
            .append(34, 4)
            .commit();
        let t2 = b.txn(1).append(34, 5).commit();
        let t3 = b.txn(2).read_list(34, [2, 1, 5, 4]).commit();
        let a = run(&b.build());
        let g = &a.deps;
        // T2 rw-depends on T1 (T1 did not observe 5).
        assert!(g.edge_mask(t1.0, t2.0).contains(elle_graph::EdgeClass::Rw));
        // T1 ww-depends on T2 (4 follows 5).
        assert!(g.edge_mask(t2.0, t1.0).contains(elle_graph::EdgeClass::Ww));
        // T3 wr-depends on T1 (read version ending in 4).
        assert!(g.edge_mask(t1.0, t3.0).contains(elle_graph::EdgeClass::Wr));
        let _ = (seed0, seed1);
    }
}
