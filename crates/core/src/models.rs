//! The consistency-model lattice: which isolation levels an anomaly rules
//! out, and which remain tenable.
//!
//! Following Adya's correspondence (§2 of the paper): G0 is proscribed by
//! everything at or above read-uncommitted (PL-1); G1 by read-committed
//! (PL-2); G2-item by repeatable read (PL-2.99); read skew (G-single) and
//! lost update additionally by snapshot isolation; cycles that *need*
//! session or real-time edges only rule out strong-session / strict
//! variants (§5.1).
//!
//! We interpret models purely through the anomalies they proscribe (the
//! "anomaly interpretation"); under that reading serializability implies
//! snapshot isolation's guarantees, since G2 ⊇ G-single.

use crate::AnomalyType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An isolation / consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConsistencyModel {
    /// Adya PL-1: proscribes G0.
    ReadUncommitted,
    /// Adya PL-2: additionally proscribes G1 {a, b, c} and dirty updates.
    ReadCommitted,
    /// Monotonic atomic view: transactions observe each other atomically.
    MonotonicAtomicView,
    /// Adya PL-2.99: additionally proscribes item anti-dependency cycles.
    RepeatableRead,
    /// Berenson et al. snapshot isolation: proscribes G1, G-single, lost
    /// update; permits write skew.
    SnapshotIsolation,
    /// Snapshot isolation plus per-session monotonicity (§5.1; Daudjee &amp; Salem).
    StrongSessionSnapshotIsolation,
    /// Snapshot isolation whose start/commit order respects real time.
    StrongSnapshotIsolation,
    /// Adya PL-3: proscribes G1 and G2.
    Serializable,
    /// Serializable plus per-session order.
    StrongSessionSerializable,
    /// Serializable plus real-time order (strict-1SR / linearizable).
    StrictSerializable,
}

impl ConsistencyModel {
    /// Every model, weakest-ish first.
    pub const ALL: [ConsistencyModel; 10] = [
        ConsistencyModel::ReadUncommitted,
        ConsistencyModel::ReadCommitted,
        ConsistencyModel::MonotonicAtomicView,
        ConsistencyModel::RepeatableRead,
        ConsistencyModel::SnapshotIsolation,
        ConsistencyModel::StrongSessionSnapshotIsolation,
        ConsistencyModel::StrongSnapshotIsolation,
        ConsistencyModel::Serializable,
        ConsistencyModel::StrongSessionSerializable,
        ConsistencyModel::StrictSerializable,
    ];

    /// The models this one *directly* implies (is stronger than).
    /// The full implication relation is the transitive closure.
    pub fn directly_implies(self) -> &'static [ConsistencyModel] {
        use ConsistencyModel::*;
        match self {
            StrictSerializable => &[StrongSessionSerializable, StrongSnapshotIsolation],
            StrongSessionSerializable => &[Serializable, StrongSessionSnapshotIsolation],
            Serializable => &[RepeatableRead, SnapshotIsolation],
            StrongSnapshotIsolation => &[StrongSessionSnapshotIsolation],
            StrongSessionSnapshotIsolation => &[SnapshotIsolation],
            SnapshotIsolation => &[MonotonicAtomicView],
            RepeatableRead => &[ReadCommitted],
            MonotonicAtomicView => &[ReadCommitted],
            ReadCommitted => &[ReadUncommitted],
            ReadUncommitted => &[],
        }
    }

    /// Does `self` imply `other` (transitively)?
    pub fn implies(self, other: ConsistencyModel) -> bool {
        if self == other {
            return true;
        }
        let mut stack = vec![self];
        let mut seen = BTreeSet::new();
        while let Some(m) = stack.pop() {
            for &n in m.directly_implies() {
                if n == other {
                    return true;
                }
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        false
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        use ConsistencyModel::*;
        match self {
            ReadUncommitted => "read-uncommitted",
            ReadCommitted => "read-committed",
            MonotonicAtomicView => "monotonic-atomic-view",
            RepeatableRead => "repeatable-read",
            SnapshotIsolation => "snapshot-isolation",
            StrongSessionSnapshotIsolation => "strong-session-snapshot-isolation",
            StrongSnapshotIsolation => "strong-snapshot-isolation",
            Serializable => "serializable",
            StrongSessionSerializable => "strong-session-serializable",
            StrictSerializable => "strict-serializable",
        }
    }
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The *weakest* models an anomaly directly rules out. Everything implying
/// one of these is ruled out transitively (see [`violated_models`]).
///
/// Informational anomalies that indicate broken domain assumptions rather
/// than a particular isolation violation (cyclic version orders — which the
/// paper reports and then discards) return the empty slice.
pub fn directly_violated(a: AnomalyType) -> &'static [ConsistencyModel] {
    use AnomalyType::*;
    use ConsistencyModel::*;
    match a {
        // Write cycles break even PL-1.
        G0 => &[ReadUncommitted],
        // G1 class: read-committed.
        G1a | G1b | G1c | DirtyUpdate | IncompatibleOrder => &[ReadCommitted],
        // Domain-assumption violations: nothing that claims to be a
        // database should do these; treat as PL-1 violations.
        GarbageRead | DuplicateWrite => &[ReadUncommitted],
        // Internal inconsistency covers both own-write invisibility and
        // fuzzy (non-repeatable) reads within one transaction. The latter
        // is legal under read committed, so internal anomalies rule out
        // the atomic-view models and repeatable read, not PL-1/PL-2.
        Internal => &[MonotonicAtomicView, RepeatableRead],
        // Reported-then-discarded (ordering assumptions contradicted).
        CyclicVersionOrder => &[],
        // Anti-dependency anomalies.
        GSingle => &[SnapshotIsolation, RepeatableRead],
        LostUpdate => &[SnapshotIsolation, RepeatableRead],
        G2Item => &[RepeatableRead, Serializable],
        // Session-augmented cycles only rule out strong-session models.
        G0Process | G1cProcess | G2ItemProcess => &[StrongSessionSerializable],
        GSingleProcess => &[StrongSessionSerializable, StrongSessionSnapshotIsolation],
        // Real-time-augmented cycles only rule out strict/strong models.
        G0Realtime | G1cRealtime | G2ItemRealtime => &[StrictSerializable],
        GSingleRealtime => &[StrictSerializable, StrongSnapshotIsolation],
        // A start-ordered serialization graph cycle contradicts the
        // database's claim that its exposed timestamps define a snapshot
        // order — Adya's G-SI, proscribed by snapshot isolation.
        GSI => &[SnapshotIsolation],
        // An explicit indeterminate marker (windowed streaming evicted
        // the evidence): rules nothing out.
        WindowEvicted => &[],
    }
}

/// All models ruled out by the given anomalies: the upward closure (under
/// implication) of their directly-violated models.
pub fn violated_models<'a, I>(anomalies: I) -> BTreeSet<ConsistencyModel>
where
    I: IntoIterator<Item = &'a AnomalyType>,
{
    let mut direct: BTreeSet<ConsistencyModel> = BTreeSet::new();
    for a in anomalies {
        direct.extend(directly_violated(*a));
    }
    ConsistencyModel::ALL
        .into_iter()
        .filter(|m| direct.iter().any(|v| m.implies(*v)))
        .collect()
}

/// The maximal models *not* ruled out: the frontier of what the database
/// might still satisfy.
pub fn strongest_satisfiable<'a, I>(anomalies: I) -> Vec<ConsistencyModel>
where
    I: IntoIterator<Item = &'a AnomalyType>,
{
    let violated = violated_models(anomalies);
    let ok: Vec<ConsistencyModel> = ConsistencyModel::ALL
        .into_iter()
        .filter(|m| !violated.contains(m))
        .collect();
    ok.iter()
        .copied()
        .filter(|m| !ok.iter().any(|other| *other != *m && other.implies(*m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use AnomalyType::*;
    use ConsistencyModel::*;

    #[test]
    fn implication_basics() {
        assert!(StrictSerializable.implies(Serializable));
        assert!(StrictSerializable.implies(ReadUncommitted));
        assert!(Serializable.implies(SnapshotIsolation));
        assert!(Serializable.implies(ReadCommitted));
        assert!(!SnapshotIsolation.implies(Serializable));
        assert!(!ReadCommitted.implies(RepeatableRead));
        assert!(SnapshotIsolation.implies(SnapshotIsolation));
    }

    #[test]
    fn g0_violates_everything() {
        let v = violated_models([G0].iter());
        assert_eq!(v.len(), ConsistencyModel::ALL.len());
        assert!(strongest_satisfiable([G0].iter()).is_empty());
    }

    #[test]
    fn g1_spares_read_uncommitted() {
        let v = violated_models([G1a].iter());
        assert!(!v.contains(&ReadUncommitted));
        assert!(v.contains(&ReadCommitted));
        assert!(v.contains(&StrictSerializable));
        assert_eq!(strongest_satisfiable([G1a].iter()), vec![ReadUncommitted]);
    }

    #[test]
    fn g2_item_spares_snapshot_isolation() {
        // Write skew is legal under SI.
        let v = violated_models([G2Item].iter());
        assert!(!v.contains(&SnapshotIsolation));
        assert!(v.contains(&RepeatableRead));
        assert!(v.contains(&Serializable));
        assert!(v.contains(&StrictSerializable));
        let strongest = strongest_satisfiable([G2Item].iter());
        assert!(strongest.contains(&StrongSnapshotIsolation));
    }

    #[test]
    fn g_single_rules_out_si_but_not_read_committed() {
        let v = violated_models([GSingle].iter());
        assert!(v.contains(&SnapshotIsolation));
        assert!(v.contains(&Serializable));
        assert!(!v.contains(&ReadCommitted));
        assert!(!v.contains(&MonotonicAtomicView));
    }

    #[test]
    fn realtime_cycle_only_kills_strict_models() {
        let v = violated_models([G2ItemRealtime].iter());
        assert_eq!(v, [StrictSerializable].into_iter().collect());
        let strongest = strongest_satisfiable([G2ItemRealtime].iter());
        assert_eq!(
            strongest,
            vec![StrongSnapshotIsolation, StrongSessionSerializable]
        );
    }

    #[test]
    fn process_cycle_kills_session_models() {
        let v = violated_models([GSingleProcess].iter());
        assert!(v.contains(&StrongSessionSerializable));
        assert!(v.contains(&StrictSerializable));
        assert!(v.contains(&StrongSessionSnapshotIsolation));
        assert!(v.contains(&StrongSnapshotIsolation));
        assert!(!v.contains(&Serializable));
        assert!(!v.contains(&SnapshotIsolation));
    }

    #[test]
    fn internal_spares_read_committed_but_kills_si() {
        let v = violated_models([Internal].iter());
        assert!(!v.contains(&ReadCommitted));
        assert!(!v.contains(&ReadUncommitted));
        assert!(v.contains(&MonotonicAtomicView));
        assert!(v.contains(&SnapshotIsolation));
        assert!(v.contains(&Serializable));
        assert!(v.contains(&StrictSerializable));
    }

    #[test]
    fn cyclic_version_order_is_informational() {
        assert!(violated_models([CyclicVersionOrder].iter()).is_empty());
        let strongest = strongest_satisfiable([CyclicVersionOrder].iter());
        assert_eq!(strongest, vec![StrictSerializable]);
    }

    #[test]
    fn no_anomalies_means_everything_tenable() {
        let strongest = strongest_satisfiable([].iter());
        assert_eq!(strongest, vec![StrictSerializable]);
    }

    #[test]
    fn lost_update_spares_read_committed() {
        let v = violated_models([LostUpdate].iter());
        assert!(!v.contains(&ReadCommitted));
        assert!(v.contains(&SnapshotIsolation));
        assert!(v.contains(&RepeatableRead));
    }

    #[test]
    fn all_models_reachable_from_strict_serializable() {
        for m in ConsistencyModel::ALL {
            assert!(
                StrictSerializable.implies(m),
                "strict-serializable should imply {m}"
            );
        }
    }
}
