//! A thread-local pool of reusable scratch buffers.
//!
//! The checker's big transient allocations — the edge builder's scatter
//! buffers ([`crate::deps`]) and the gather pipeline's counting-sort
//! scratch ([`crate::gather`]) — are sized by history length, so a cold
//! one-shot run pays a first-touch page fault on every 4 KiB of them.
//! Recycling the backing storage through this pool keeps those pages
//! faulted in across [`crate::Checker`] runs, across streaming epochs,
//! and across a benchmark bin's length sweep: after the first run at a
//! given size, rebuilds touch only warm memory.
//!
//! Buffers are plain `Vec<u32>` / `Vec<u64>`; a fresh allocation is
//! pre-faulted by writing every element (`Vec::with_capacity` +
//! `resize`, which memsets, rather than `vec![0; n]`, which gets lazily
//! mapped zero pages from the allocator). Arbitrary element types —
//! including the gather pipeline's history-borrowing occurrence types,
//! which cannot be type-erased behind a `TypeId` — recycle their raw
//! backing storage through the layout-keyed arena
//! ([`take_layout`] / [`put_layout`]), which only cares that
//! `(size_of, align_of)` match. The pool is instrumented with a peak
//! gauge (see [`peak_bytes`]) surfaced in `--timing` output alongside
//! the edge-buffer peak.

// The layout-keyed arena below is the crate's one unsafe island: it
// recycles raw `Vec` backing storage across element types that share a
// `(size, align)`. The invariants are spelled out at each site and the
// module's tests run under Miri and AddressSanitizer in CI.
#![allow(unsafe_code)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::ptr::NonNull;

/// How many buffers of each width the pool retains. The pipeline needs
/// at most a handful live at once (counts + cursor + scatter slots);
/// anything beyond this is released to the allocator on `put`.
const MAX_POOLED: usize = 8;

/// One retained raw allocation in a layout-keyed bucket: the pointer a
/// `Vec` handed over plus its capacity in bytes. The element type is
/// forgotten — the allocator only ever saw `(size, align)`, so any
/// later `Vec<U>` with the same layout may adopt it.
struct RawEntry {
    ptr: NonNull<u8>,
    bytes: usize,
}

#[derive(Default)]
struct Pool {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    /// Raw allocations keyed by element `(size_of, align_of)` — the
    /// arena for element types that borrow from the history and so
    /// cannot carry a `TypeId`. Entries hold no elements (they are
    /// cleared before stashing), only faulted-in capacity.
    raw: HashMap<(usize, usize), Vec<RawEntry>>,
    /// Bytes currently resident in the pool (sum of retained
    /// capacities).
    resident: usize,
    /// High-water mark of `resident`.
    peak: usize,
}

impl Drop for Pool {
    fn drop(&mut self) {
        for (&(_, align), bucket) in &mut self.raw {
            for entry in bucket.drain(..) {
                // SAFETY: `put_layout` stashed exactly this allocation —
                // `entry.bytes` capacity bytes at alignment `align`, as
                // produced by `Vec`'s allocator call with that layout.
                unsafe {
                    let layout = std::alloc::Layout::from_size_align(entry.bytes, align)
                        .expect("raw pool entry has a valid layout");
                    std::alloc::dealloc(entry.ptr.as_ptr(), layout);
                }
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

fn prefault<T: Copy + Default>(v: &mut Vec<T>, len: usize) {
    // `resize` writes every new element, touching each page now instead
    // of on first use mid-build.
    v.clear();
    v.resize(len, T::default());
}

/// Take a zero-filled `Vec<u32>` of exactly `len` elements.
pub(crate) fn take_u32(len: usize) -> Vec<u32> {
    let mut v = take_u32_empty();
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Take an empty `Vec<u32>` with whatever capacity a previous user
/// faulted in.
pub(crate) fn take_u32_empty() -> Vec<u32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u32s.pop() {
            Some(mut v) => {
                p.resident -= v.capacity() * 4;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    })
}

/// Return a `Vec<u32>` to the pool.
pub(crate) fn put_u32(v: Vec<u32>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u32s.len() < MAX_POOLED {
            p.resident += v.capacity() * 4;
            p.peak = p.peak.max(p.resident);
            p.u32s.push(v);
        }
    });
}

/// Take a zero-filled `Vec<u64>` of exactly `len` elements.
pub(crate) fn take_u64(len: usize) -> Vec<u64> {
    let mut v = POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u64s.pop() {
            Some(v) => {
                p.resident -= v.capacity() * 8;
                v
            }
            None => Vec::new(),
        }
    });
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Return a `Vec<u64>` to the pool.
pub(crate) fn put_u64(v: Vec<u64>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u64s.len() < MAX_POOLED {
            p.resident += v.capacity() * 8;
            p.peak = p.peak.max(p.resident);
            p.u64s.push(v);
        }
    });
}

/// Take an empty `Vec<T>` whose backing storage a previous user of any
/// element type with the same `(size_of, align_of)` faulted in. This is
/// the arena for history-borrowing occurrence types: the `TypeId`-keyed
/// pool cannot hold them (no `'static` bound here), but the allocator
/// only ever saw the layout, so recycling across lifetimes — and across
/// distinct types that happen to share a layout — is sound.
pub(crate) fn take_layout<T>() -> Vec<T> {
    let size = std::mem::size_of::<T>();
    let align = std::mem::align_of::<T>();
    if size == 0 {
        return Vec::new();
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.raw.get_mut(&(size, align)).and_then(|b| b.pop()) {
            Some(entry) => {
                p.resident -= entry.bytes;
                let cap = entry.bytes / size;
                // SAFETY: the entry came from `put_layout` on a cleared
                // `Vec` whose element layout was exactly `(size, align)`
                // and whose capacity was `entry.bytes / size`, so
                // `Layout::array::<T>(cap)` reproduces the allocation's
                // layout bit-for-bit; length 0 means no element of the
                // old type is ever reinterpreted as `T`.
                unsafe { Vec::from_raw_parts(entry.ptr.as_ptr().cast::<T>(), 0, cap) }
            }
            None => Vec::new(),
        }
    })
}

/// Return a `Vec<T>` to the layout-keyed arena. Elements are dropped
/// here (so borrowed data is released before the storage outlives it);
/// only the raw faulted-in capacity is retained.
pub(crate) fn put_layout<T>(mut v: Vec<T>) {
    v.clear();
    let size = std::mem::size_of::<T>();
    let align = std::mem::align_of::<T>();
    if size == 0 || v.capacity() == 0 {
        return;
    }
    let bytes = v.capacity() * size;
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let p = &mut *p;
        let bucket = p.raw.entry((size, align)).or_default();
        if bucket.len() < MAX_POOLED {
            let ptr = NonNull::new(v.as_mut_ptr().cast::<u8>())
                .expect("Vec with nonzero capacity has a nonnull pointer");
            std::mem::forget(v);
            bucket.push(RawEntry { ptr, bytes });
            p.resident += bytes;
            p.peak = p.peak.max(p.resident);
        }
    });
}

/// Peak bytes resident in this thread's pool since the last
/// [`take_peak_bytes`] — the size of the scratch working set being
/// recycled instead of re-faulted.
pub fn peak_bytes() -> usize {
    POOL.with(|p| p.borrow().peak)
}

/// Read and reset the peak-resident gauge (mirrors
/// `DepGraph::take_edge_buf_peak`).
pub fn take_peak_bytes() -> usize {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let peak = p.peak;
        p.peak = p.resident;
        peak
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_and_gauge_tracks_peak() {
        // Drain anything earlier tests on this thread left behind.
        while !POOL.with(|p| p.borrow().u32s.is_empty()) {
            let _ = take_u32_empty();
        }
        let _ = take_peak_bytes();

        let v = take_u32(1024);
        assert_eq!(v.len(), 1024);
        assert!(v.iter().all(|&x| x == 0));
        let cap = v.capacity();
        put_u32(v);
        assert!(peak_bytes() >= cap * 4);

        // The recycled buffer comes back zeroed at the new length.
        let mut v = take_u32(10);
        assert_eq!(v.len(), 10);
        assert!(v.capacity() >= cap, "capacity survives recycling");
        v[3] = 7;
        put_u32(v);
        let v = take_u32(10);
        assert_eq!(v[3], 0, "take zero-fills");
        put_u32(v);
    }

    #[test]
    fn layout_buffers_recycle_across_same_layout_types() {
        // Drain anything earlier tests on this thread left behind.
        while {
            let v: Vec<(u32, u32)> = take_layout();
            v.capacity() > 0
        } {}
        let _ = take_peak_bytes();

        let mut v: Vec<(u32, u32)> = take_layout();
        v.extend((0..512u32).map(|i| (i, i)));
        let cap = v.capacity();
        put_layout(v);
        assert!(peak_bytes() >= cap * 8);

        // A *different* type with the same (size 8, align 4) layout
        // adopts the storage — that's the point of keying by layout,
        // not TypeId.
        let v: Vec<[u32; 2]> = take_layout();
        assert!(v.is_empty(), "take_layout hands out empty vecs");
        assert!(v.capacity() >= cap, "capacity survives across types");
        put_layout(v);

        // A layout with a different alignment gets its own bucket, even
        // at the same size: (size 8, align 1) never sees the entry above.
        let other: Vec<[u8; 8]> = take_layout();
        assert_eq!(other.capacity(), 0);
        put_layout(other);
    }

    #[test]
    fn layout_pool_drops_borrowed_elements_on_put() {
        // Borrowed (non-'static) element types are the arena's reason to
        // exist; stashing must drop the borrows, not leak them.
        let data = vec![1u32, 2, 3];
        let mut v: Vec<&u32> = take_layout();
        v.extend(data.iter());
        put_layout(v);
        drop(data); // sound only if put_layout cleared the elements

        let v: Vec<&u32> = take_layout();
        assert!(v.is_empty());
        put_layout(v);
    }

    #[test]
    fn layout_pool_is_bounded_and_ignores_zsts() {
        for _ in 0..4 * MAX_POOLED {
            put_layout::<u16>(Vec::with_capacity(16));
        }
        let held = POOL.with(|p| p.borrow().raw.get(&(2, 2)).map_or(0, |b| b.len()));
        assert!(held <= MAX_POOLED);

        put_layout::<()>(Vec::with_capacity(16));
        let v: Vec<()> = take_layout();
        assert_eq!(v.capacity(), usize::MAX, "ZST vecs never touch the pool");
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..4 * MAX_POOLED {
            put_u64(vec![0; 16]);
        }
        let held = POOL.with(|p| p.borrow().u64s.len());
        assert!(held <= MAX_POOLED);
    }
}
