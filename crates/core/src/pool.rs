//! A thread-local pool of reusable scratch buffers.
//!
//! The checker's big transient allocations — the edge builder's scatter
//! buffers ([`crate::deps`]) and the gather pipeline's counting-sort
//! scratch ([`crate::gather`]) — are sized by history length, so a cold
//! one-shot run pays a first-touch page fault on every 4 KiB of them.
//! Recycling the backing storage through this pool keeps those pages
//! faulted in across [`crate::Checker`] runs, across streaming epochs,
//! and across a benchmark bin's length sweep: after the first run at a
//! given size, rebuilds touch only warm memory.
//!
//! Buffers are plain `Vec<u32>` / `Vec<u64>`; a fresh allocation is
//! pre-faulted by writing every element (`Vec::with_capacity` +
//! `resize`, which memsets, rather than `vec![0; n]`, which gets lazily
//! mapped zero pages from the allocator). Arbitrary `'static` element
//! types recycle through [`take_typed`] / [`put_typed`] (the gather
//! pipeline's items side). The pool is instrumented with a peak gauge
//! (see [`peak_bytes`]) surfaced in `--timing` output alongside the
//! edge-buffer peak; transient allocations that cannot be pooled are
//! folded into the gauge via [`note_transient`].

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// How many buffers of each width the pool retains. The pipeline needs
/// at most a handful live at once (counts + cursor + scatter slots);
/// anything beyond this is released to the allocator on `put`.
const MAX_POOLED: usize = 8;

/// One retained buffer of arbitrary element type: the boxed `Vec<T>`
/// plus its capacity in bytes, so the resident gauge never needs to
/// downcast.
struct TypedEntry {
    vec: Box<dyn Any>,
    bytes: usize,
}

#[derive(Default)]
struct Pool {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    /// Arbitrary `'static` element types, keyed by `TypeId` of the
    /// `Vec<T>`.
    typed: HashMap<TypeId, Vec<TypedEntry>>,
    /// Bytes currently resident in the pool (sum of retained
    /// capacities).
    resident: usize,
    /// High-water mark of `resident` (plus any transient scratch folded
    /// in via [`note_transient`]).
    peak: usize,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

fn prefault<T: Copy + Default>(v: &mut Vec<T>, len: usize) {
    // `resize` writes every new element, touching each page now instead
    // of on first use mid-build.
    v.clear();
    v.resize(len, T::default());
}

/// Take a zero-filled `Vec<u32>` of exactly `len` elements.
pub(crate) fn take_u32(len: usize) -> Vec<u32> {
    let mut v = take_u32_empty();
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Take an empty `Vec<u32>` with whatever capacity a previous user
/// faulted in.
pub(crate) fn take_u32_empty() -> Vec<u32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u32s.pop() {
            Some(mut v) => {
                p.resident -= v.capacity() * 4;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    })
}

/// Return a `Vec<u32>` to the pool.
pub(crate) fn put_u32(v: Vec<u32>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u32s.len() < MAX_POOLED {
            p.resident += v.capacity() * 4;
            p.peak = p.peak.max(p.resident);
            p.u32s.push(v);
        }
    });
}

/// Take a zero-filled `Vec<u64>` of exactly `len` elements.
pub(crate) fn take_u64(len: usize) -> Vec<u64> {
    let mut v = POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u64s.pop() {
            Some(v) => {
                p.resident -= v.capacity() * 8;
                v
            }
            None => Vec::new(),
        }
    });
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Return a `Vec<u64>` to the pool.
pub(crate) fn put_u64(v: Vec<u64>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u64s.len() < MAX_POOLED {
            p.resident += v.capacity() * 8;
            p.peak = p.peak.max(p.resident);
            p.u64s.push(v);
        }
    });
}

/// Take an empty `Vec<T>` with whatever capacity a previous user of the
/// same element type faulted in. Only `'static` element types can live
/// in the pool — the `TypeId` erasure requires it — which is why the
/// gather pipeline's lifetime-carrying occurrence types report through
/// [`note_transient`] instead of recycling.
pub(crate) fn take_typed<T: 'static>() -> Vec<T> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p
            .typed
            .get_mut(&TypeId::of::<Vec<T>>())
            .and_then(|b| b.pop())
        {
            Some(entry) => {
                p.resident -= entry.bytes;
                let mut v = *entry
                    .vec
                    .downcast::<Vec<T>>()
                    .expect("typed pool bucket holds Vec<T>");
                v.clear();
                v
            }
            None => Vec::new(),
        }
    })
}

/// Return a `Vec<T>` to the pool (contents are discarded; only the
/// faulted-in capacity is worth keeping).
pub(crate) fn put_typed<T: 'static>(mut v: Vec<T>) {
    v.clear();
    if v.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let p = &mut *p;
        let bucket = p.typed.entry(TypeId::of::<Vec<T>>()).or_default();
        if bucket.len() < MAX_POOLED {
            let bytes = v.capacity() * std::mem::size_of::<T>();
            bucket.push(TypedEntry {
                vec: Box::new(v),
                bytes,
            });
            p.resident += bytes;
            p.peak = p.peak.max(p.resident);
        }
    });
}

/// Fold a transient allocation that cannot be pooled (a non-`'static`
/// element type) into the peak gauge, so the scratch high-water mark
/// still covers it.
pub(crate) fn note_transient(bytes: usize) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.peak = p.peak.max(p.resident + bytes);
    });
}

/// Peak bytes resident in this thread's pool since the last
/// [`take_peak_bytes`] — the size of the scratch working set being
/// recycled instead of re-faulted.
pub fn peak_bytes() -> usize {
    POOL.with(|p| p.borrow().peak)
}

/// Read and reset the peak-resident gauge (mirrors
/// `DepGraph::take_edge_buf_peak`).
pub fn take_peak_bytes() -> usize {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let peak = p.peak;
        p.peak = p.resident;
        peak
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_and_gauge_tracks_peak() {
        // Drain anything earlier tests on this thread left behind.
        while !POOL.with(|p| p.borrow().u32s.is_empty()) {
            let _ = take_u32_empty();
        }
        let _ = take_peak_bytes();

        let v = take_u32(1024);
        assert_eq!(v.len(), 1024);
        assert!(v.iter().all(|&x| x == 0));
        let cap = v.capacity();
        put_u32(v);
        assert!(peak_bytes() >= cap * 4);

        // The recycled buffer comes back zeroed at the new length.
        let mut v = take_u32(10);
        assert_eq!(v.len(), 10);
        assert!(v.capacity() >= cap, "capacity survives recycling");
        v[3] = 7;
        put_u32(v);
        let v = take_u32(10);
        assert_eq!(v[3], 0, "take zero-fills");
        put_u32(v);
    }

    #[test]
    fn typed_buffers_recycle_by_element_type() {
        // Drain anything earlier tests on this thread left behind.
        while {
            let v: Vec<(u64, u64)> = take_typed();
            v.capacity() > 0
        } {}
        let _ = take_peak_bytes();

        let mut v: Vec<(u64, u64)> = take_typed();
        v.extend((0..512).map(|i| (i, i)));
        let cap = v.capacity();
        put_typed(v);
        assert!(peak_bytes() >= cap * 16);

        let v: Vec<(u64, u64)> = take_typed();
        assert!(v.is_empty(), "take_typed clears contents");
        assert!(v.capacity() >= cap, "capacity survives recycling");

        // A different element type gets its own bucket, not this one.
        let other: Vec<u128> = take_typed();
        assert_eq!(other.capacity(), 0);
        put_typed(v);
        put_typed(other);
    }

    #[test]
    fn typed_pool_is_bounded() {
        for _ in 0..4 * MAX_POOLED {
            put_typed::<i64>(Vec::with_capacity(16));
        }
        let held = POOL.with(|p| {
            p.borrow()
                .typed
                .get(&TypeId::of::<Vec<i64>>())
                .map_or(0, |b| b.len())
        });
        assert!(held <= MAX_POOLED);
    }

    #[test]
    fn note_transient_raises_the_peak() {
        let _ = take_peak_bytes();
        note_transient(1 << 20);
        assert!(peak_bytes() >= 1 << 20);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..4 * MAX_POOLED {
            put_u64(vec![0; 16]);
        }
        let held = POOL.with(|p| p.borrow().u64s.len());
        assert!(held <= MAX_POOLED);
    }
}
