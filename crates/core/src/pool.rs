//! A thread-local pool of reusable scratch buffers.
//!
//! The checker's big transient allocations — the edge builder's scatter
//! buffers ([`crate::deps`]) and the gather pipeline's counting-sort
//! scratch ([`crate::gather`]) — are sized by history length, so a cold
//! one-shot run pays a first-touch page fault on every 4 KiB of them.
//! Recycling the backing storage through this pool keeps those pages
//! faulted in across [`crate::Checker`] runs, across streaming epochs,
//! and across a benchmark bin's length sweep: after the first run at a
//! given size, rebuilds touch only warm memory.
//!
//! Buffers are plain `Vec<u32>` / `Vec<u64>`; a fresh allocation is
//! pre-faulted by writing every element (`Vec::with_capacity` +
//! `resize`, which memsets, rather than `vec![0; n]`, which gets lazily
//! mapped zero pages from the allocator). The pool is instrumented with
//! a peak-resident gauge (see [`peak_bytes`]) surfaced in `--timing`
//! output alongside the edge-buffer peak.

use std::cell::RefCell;

/// How many buffers of each width the pool retains. The pipeline needs
/// at most a handful live at once (counts + cursor + scatter slots);
/// anything beyond this is released to the allocator on `put`.
const MAX_POOLED: usize = 8;

#[derive(Default)]
struct Pool {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    /// Bytes currently resident in the pool (sum of retained
    /// capacities).
    resident: usize,
    /// High-water mark of `resident`.
    peak: usize,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

fn prefault<T: Copy + Default>(v: &mut Vec<T>, len: usize) {
    // `resize` writes every new element, touching each page now instead
    // of on first use mid-build.
    v.clear();
    v.resize(len, T::default());
}

/// Take a zero-filled `Vec<u32>` of exactly `len` elements.
pub(crate) fn take_u32(len: usize) -> Vec<u32> {
    let mut v = take_u32_empty();
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Take an empty `Vec<u32>` with whatever capacity a previous user
/// faulted in.
pub(crate) fn take_u32_empty() -> Vec<u32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u32s.pop() {
            Some(mut v) => {
                p.resident -= v.capacity() * 4;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    })
}

/// Return a `Vec<u32>` to the pool.
pub(crate) fn put_u32(v: Vec<u32>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u32s.len() < MAX_POOLED {
            p.resident += v.capacity() * 4;
            p.peak = p.peak.max(p.resident);
            p.u32s.push(v);
        }
    });
}

/// Take a zero-filled `Vec<u64>` of exactly `len` elements.
pub(crate) fn take_u64(len: usize) -> Vec<u64> {
    let mut v = POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.u64s.pop() {
            Some(v) => {
                p.resident -= v.capacity() * 8;
                v
            }
            None => Vec::new(),
        }
    });
    if v.capacity() < len {
        v.reserve_exact(len - v.len());
    }
    prefault(&mut v, len);
    v
}

/// Return a `Vec<u64>` to the pool.
pub(crate) fn put_u64(v: Vec<u64>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.u64s.len() < MAX_POOLED {
            p.resident += v.capacity() * 8;
            p.peak = p.peak.max(p.resident);
            p.u64s.push(v);
        }
    });
}

/// Peak bytes resident in this thread's pool since the last
/// [`take_peak_bytes`] — the size of the scratch working set being
/// recycled instead of re-faulted.
pub fn peak_bytes() -> usize {
    POOL.with(|p| p.borrow().peak)
}

/// Read and reset the peak-resident gauge (mirrors
/// `DepGraph::take_edge_buf_peak`).
pub fn take_peak_bytes() -> usize {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let peak = p.peak;
        p.peak = p.resident;
        peak
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_and_gauge_tracks_peak() {
        // Drain anything earlier tests on this thread left behind.
        while !POOL.with(|p| p.borrow().u32s.is_empty()) {
            let _ = take_u32_empty();
        }
        let _ = take_peak_bytes();

        let v = take_u32(1024);
        assert_eq!(v.len(), 1024);
        assert!(v.iter().all(|&x| x == 0));
        let cap = v.capacity();
        put_u32(v);
        assert!(peak_bytes() >= cap * 4);

        // The recycled buffer comes back zeroed at the new length.
        let mut v = take_u32(10);
        assert_eq!(v.len(), 10);
        assert!(v.capacity() >= cap, "capacity survives recycling");
        v[3] = 7;
        put_u32(v);
        let v = take_u32(10);
        assert_eq!(v[3], 0, "take zero-fills");
        put_u32(v);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..4 * MAX_POOLED {
            put_u64(vec![0; 16]);
        }
        let held = POOL.with(|p| p.borrow().u64s.len());
        assert!(held <= MAX_POOLED);
    }
}
