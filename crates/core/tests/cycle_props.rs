//! Property tests for the (SCC × anomaly class) cycle-search fan-out:
//! the parallel run must produce **byte-identical** anomaly reports to
//! the sequential reference pass, on randomly generated histories with
//! real anomalies (weak isolation levels, faults, contention).

use elle_core::datatype::{run_mode, Parallelism};
use elle_core::list_append::ListAppend;
use elle_core::{
    add_process_edges, add_realtime_edges, find_cycle_anomalies, find_cycle_anomalies_mode,
    CycleSearchOptions, DataType, KeyTypes, ProvenanceIndex,
};
use elle_dbsim::{DbConfig, FaultPlan, IsolationLevel, ObjectKind};
use elle_gen::{run_workload, GenParams};
use elle_history::History;
use proptest::prelude::*;

fn arb_history() -> impl Strategy<Value = History> {
    (
        any::<u64>(),  // seed
        1usize..=6,    // processes
        40usize..=120, // txns
        1usize..=4,    // active keys — few keys, high contention
        prop_oneof![
            Just(IsolationLevel::ReadUncommitted),
            Just(IsolationLevel::ReadCommitted),
            Just(IsolationLevel::SnapshotIsolation),
            Just(IsolationLevel::Serializable),
        ],
        prop::bool::ANY, // faults
    )
        .prop_map(|(seed, procs, n, keys, iso, faults)| {
            let params = GenParams {
                n_txns: n,
                min_txn_len: 1,
                max_txn_len: 5,
                active_keys: keys,
                writes_per_key: 16,
                read_prob: 0.5,
                kind: ObjectKind::ListAppend,
                seed,
                final_reads: true,
            };
            let db = DbConfig::new(iso, ObjectKind::ListAppend)
                .with_processes(procs)
                .with_seed(seed ^ 0x5eed)
                .with_faults(if faults {
                    FaultPlan::typical()
                } else {
                    FaultPlan::none()
                });
            run_workload(params, db).expect("history pairs")
        })
}

/// Assemble the IDSG the same way the checker does: datatype inference
/// (sequential, so the graph itself is fixed) plus derived orders.
fn idsg(h: &History) -> elle_core::DepGraph {
    let elems = ProvenanceIndex::build(h);
    let keys = KeyTypes::infer(h).keys_of(DataType::List);
    let out = run_mode::<ListAppend>(h, &elems, &keys, (), Parallelism::Sequential);
    let mut deps = out.deps;
    add_process_edges(&mut deps, h);
    add_realtime_edges(&mut deps, h);
    deps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fan-out is observationally pure: sequential and parallel modes
    /// serialize to the same JSON bytes.
    #[test]
    fn parallel_cycle_search_matches_sequential(h in arb_history()) {
        let mut deps = idsg(&h);
        let csr = deps.freeze();
        let opts = CycleSearchOptions::default();
        let seq = find_cycle_anomalies_mode(&deps, &csr, &h, opts, Parallelism::Sequential);
        let par = find_cycle_anomalies_mode(&deps, &csr, &h, opts, Parallelism::Parallel);
        prop_assert_eq!(&seq, &par);
        let seq_bytes = serde_json::to_string(&seq).expect("serialize").into_bytes();
        let par_bytes = serde_json::to_string(&par).expect("serialize").into_bytes();
        prop_assert_eq!(seq_bytes, par_bytes, "reports differ at the byte level");
    }

    /// The convenience entry point (freeze + Auto mode) agrees with the
    /// explicit sequential reference as well.
    #[test]
    fn auto_mode_matches_sequential(h in arb_history()) {
        let mut deps = idsg(&h);
        let csr = deps.freeze();
        let opts = CycleSearchOptions::default();
        let auto = find_cycle_anomalies(&mut deps, &h, opts);
        let seq = find_cycle_anomalies_mode(&deps, &csr, &h, opts, Parallelism::Sequential);
        prop_assert_eq!(auto, seq);
    }

    /// Searching a timestamp-augmented plan stays deterministic too.
    #[test]
    fn timestamp_level_parallel_matches_sequential(h in arb_history()) {
        let mut deps = idsg(&h);
        elle_core::add_timestamp_edges(&mut deps, &h);
        let csr = deps.freeze();
        let opts = CycleSearchOptions {
            timestamp_edges: true,
            ..CycleSearchOptions::default()
        };
        let seq = find_cycle_anomalies_mode(&deps, &csr, &h, opts, Parallelism::Sequential);
        let par = find_cycle_anomalies_mode(&deps, &csr, &h, opts, Parallelism::Parallel);
        prop_assert_eq!(seq, par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The early-acyclic certificate (and the region-restricted
    /// per-class passes it enables) must not change what is found:
    /// reports with and without it are byte-identical.
    #[test]
    fn certificate_is_invisible_in_reports(h in arb_history()) {
        let mut deps = idsg(&h);
        let csr = deps.freeze();
        let base = CycleSearchOptions::default();
        let with = find_cycle_anomalies_mode(
            &deps, &csr, &h,
            CycleSearchOptions { certificate: true, ..base },
            Parallelism::Sequential,
        );
        let without = find_cycle_anomalies_mode(
            &deps, &csr, &h,
            CycleSearchOptions { certificate: false, ..base },
            Parallelism::Sequential,
        );
        prop_assert_eq!(
            serde_json::to_string(&with).unwrap(),
            serde_json::to_string(&without).unwrap()
        );
    }
}
